"""Randomized round-trip suite for the declarative job specs.

Seeded generators produce ~200 random job specs — every kind, every
``UseCaseSource`` variant, randomised params/config and knobs — and pin the
serialisation contracts the service layer leans on:

* ``job_from_dict(job_to_dict(job)) == job`` through a real JSON transport;
* serialising the rebuilt job reproduces the document exactly (the
  dictionary form is canonical);
* ``job_hash`` is stable across calls and across the round trip, two specs
  share a hash only when their *resolved* content is identical, and the
  hashing scheme itself is pinned against drift (golden hash);
* malformed documents — unknown kind, missing fields, wrong types — raise
  clear :class:`SerializationError`/:class:`SpecificationError` messages,
  never raw ``KeyError``/``TypeError`` tracebacks.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.compound import CompoundModeSpec
from repro.exceptions import ReproError, SerializationError, SpecificationError
from repro.gen import generate_benchmark
from repro.io.serialization import save_use_case_set, use_case_set_to_dict
from repro.jobs import (
    DesignFlowJob,
    FrequencyJob,
    GapJob,
    RefineJob,
    SweepJob,
    UseCaseSource,
    WorstCaseJob,
    job_from_dict,
    job_hash,
    job_to_dict,
)
from repro.jobs.spec import resolve_job
from repro.params import MapperConfig, NoCParameters

SEED = 20260728
PER_KIND = 40  # x 6 kinds = 240 random specs

#: golden content hash of one canonical job — fails if the hashing scheme
#: (canonical JSON over the resolved document) ever drifts, which would
#: silently invalidate every persisted cache entry
SPREAD10_WORST_CASE_JOB_HASH = (
    "8c09d7e86974896b311be378babe3e4ae0e57dad47e755a7e127198ca7cafc22"
)

#: a small use-case-set document for inline sources (JSON-canonical)
INLINE_DESIGN = json.loads(
    json.dumps(use_case_set_to_dict(generate_benchmark("spread", 3, core_count=12, seed=1)))
)

_STUDIES_WITHOUT_DESIGN = (
    "normalized_switch_count", "use_case_count", "headline", "parallel_use_cases",
)
_STUDIES_WITH_DESIGN = (
    "ablation_flow_ordering", "ablation_routing_policy",
    "ablation_slot_table_size", "ablation_grouping",
)


@pytest.fixture(scope="module")
def design_file(tmp_path_factory):
    """A real design file so ``path`` sources resolve and hash."""
    directory = tmp_path_factory.mktemp("designs")
    return save_use_case_set(
        generate_benchmark("spread", 3, core_count=12, seed=1),
        directory / "design.json",
    )


# --------------------------------------------------------------------------- #
# random builders
# --------------------------------------------------------------------------- #
def random_source(rng: random.Random, design_file) -> UseCaseSource:
    roll = rng.random()
    if roll < 0.5:
        return UseCaseSource(generator={
            "kind": rng.choice(["spread", "bottleneck"]),
            "use_case_count": rng.randint(2, 8),
            "seed": rng.randint(0, 99),
        })
    if roll < 0.75:
        return UseCaseSource(path=str(design_file))
    return UseCaseSource(inline=INLINE_DESIGN)


def random_params(rng: random.Random) -> NoCParameters:
    return NoCParameters(
        frequency_hz=rng.choice([1e8, 2.5e8, 5e8, 7.77e8, 1e9]),
        link_width_bits=rng.choice([16, 32, 64]),
        slot_table_size=rng.choice([8, 16, 32, 64]),
        max_cores_per_switch=rng.choice([None, 4, 6, 8]),
        topology_kind=rng.choice(["mesh", "torus", "ring"]),
    )


def random_config(rng: random.Random) -> MapperConfig:
    return MapperConfig(
        max_switches=rng.choice([16, 64, 100, 400]),
        routing_policy=rng.choice(["xy", "minimal", "west_first", "k_shortest"]),
        max_detour_hops=rng.randint(0, 2),
        max_paths_per_pair=rng.randint(1, 8),
        placement_candidates=rng.randint(4, 16),
        prefer_mapped_endpoints=rng.choice([True, False]),
        bandwidth_weight=rng.choice([0.5, 1.0, 2.0]),
        hop_weight=rng.choice([0.5, 1.0]),
        slot_weight=rng.choice([0.0, 0.5, 1.0]),
        check_latency=rng.choice([True, False]),
        refinement=rng.choice([None, "annealing", "tabu"]),
        refinement_iterations=rng.randint(1, 500),
        seed=rng.randint(0, 99),
    )


def _names(rng: random.Random, count: int):
    picked = rng.sample(range(1, 21), count)
    return tuple(f"spread-{index}" for index in picked)


def random_groups(rng: random.Random):
    if rng.random() < 0.5:
        return None
    return tuple(_names(rng, rng.randint(2, 3)) for _ in range(rng.randint(1, 2)))


def random_design_flow(rng, design_file):
    modes = tuple(
        CompoundModeSpec(_names(rng, rng.randint(2, 3)))
        for _ in range(rng.randint(0, 2))
    )
    switching = tuple(
        (pair[0], pair[1]) for pair in (_names(rng, 2) for _ in range(rng.randint(0, 2)))
    )
    return DesignFlowJob(
        use_cases=random_source(rng, design_file),
        params=random_params(rng),
        config=random_config(rng),
        parallel_modes=modes,
        smooth_switching=switching,
        verify=rng.choice([True, False]),
    )


def random_worst_case(rng, design_file):
    return WorstCaseJob(
        use_cases=random_source(rng, design_file),
        params=random_params(rng),
        config=random_config(rng),
    )


def random_refine(rng, design_file):
    return RefineJob(
        use_cases=random_source(rng, design_file),
        params=random_params(rng),
        config=random_config(rng),
        method=rng.choice(["annealing", "tabu"]),
        iterations=rng.randint(1, 1000),
        seed=rng.randint(0, 999),
        groups=random_groups(rng),
    )


def random_frequency(rng, design_file):
    grid = None
    if rng.random() < 0.7:
        grid = tuple(sorted(rng.sample([100.0, 250.0, 333.25, 500.0, 750.0, 1000.0],
                                       rng.randint(1, 4))))
    return FrequencyJob(
        use_cases=random_source(rng, design_file),
        params=random_params(rng),
        config=random_config(rng),
        max_switches=rng.choice([None, 4, 9, 16]),
        frequencies_mhz=grid,
        groups=random_groups(rng),
    )


def random_sweep(rng, design_file):
    if rng.random() < 0.5:
        study = rng.choice(_STUDIES_WITH_DESIGN)
        source = random_source(rng, design_file)
    else:
        study = rng.choice(_STUDIES_WITHOUT_DESIGN)
        source = random_source(rng, design_file) if rng.random() < 0.3 else None
    return SweepJob(
        study=study,
        use_cases=source,
        params=random_params(rng),
        config=random_config(rng),
        benchmark=rng.choice(["spread", "bottleneck"]),
        use_case_counts=tuple(sorted(rng.sample(range(2, 30), rng.randint(1, 5)))),
        use_case_count=rng.randint(2, 20),
        core_count=rng.choice([12, 16, 20, 24]),
        seed=rng.randint(0, 99),
        parallelism_levels=tuple(range(1, rng.randint(2, 5))),
        slot_table_sizes=tuple(sorted(rng.sample([8, 16, 32, 64, 128], rng.randint(1, 3)))),
        max_switches=rng.choice([None, 9, 25]),
    )


def random_gap(rng, design_file):
    return GapJob(
        use_cases=random_source(rng, design_file),
        params=random_params(rng),
        config=random_config(rng),
        solver=rng.choice(["auto", "pulp", "native"]),
        groups=random_groups(rng),
        refine_iterations=rng.choice([0, 0, 50, 200]),
        seed=rng.randint(0, 999),
        node_limit=rng.choice([None, 1000, 100000]),
    )


BUILDERS = (random_design_flow, random_worst_case, random_refine,
            random_frequency, random_sweep, random_gap)


# --------------------------------------------------------------------------- #
# the randomized round-trip sweep
# --------------------------------------------------------------------------- #
def test_random_specs_round_trip_and_hash_stably(design_file):
    rng = random.Random(SEED)
    #: hash -> canonical resolved document; equal hashes must mean equal
    #: resolved content (a path source legitimately collides with the
    #: inline source of the same design — that is the cache-key design)
    seen = {}
    total = 0
    for builder in BUILDERS:
        for _ in range(PER_KIND):
            job = builder(rng, design_file)
            total += 1

            document = job_to_dict(job)
            assert document["kind"] == job.KIND
            transported = json.loads(json.dumps(document))
            rebuilt = job_from_dict(transported)
            assert rebuilt == job
            assert job_to_dict(rebuilt) == document

            first = job_hash(job)
            assert job_hash(job) == first, "job_hash must be deterministic"
            assert job_hash(rebuilt) == first, "hash must survive the round trip"
            resolved = json.dumps(
                job_to_dict(resolve_job(job)), sort_keys=True
            )
            if first in seen:
                assert seen[first] == resolved, (
                    "two specs with different resolved content share a hash"
                )
            seen[first] = resolved
    assert total == 6 * PER_KIND
    # the sweep actually exercised distinct content, not 200 copies
    assert len(seen) > total // 2


def test_job_hash_scheme_is_pinned():
    job = WorstCaseJob(
        use_cases=UseCaseSource(
            generator={"kind": "spread", "use_case_count": 10, "seed": 3}
        )
    )
    assert job_hash(job) == SPREAD10_WORST_CASE_JOB_HASH


def test_path_and_inline_sources_of_same_design_hash_identically(design_file):
    by_path = WorstCaseJob(use_cases=UseCaseSource(path=str(design_file)))
    by_inline = WorstCaseJob(use_cases=UseCaseSource(inline=INLINE_DESIGN))
    assert job_hash(by_path) == job_hash(by_inline)


# --------------------------------------------------------------------------- #
# malformed documents
# --------------------------------------------------------------------------- #
GENERATOR_SOURCE = {"generator": {"kind": "spread", "use_case_count": 3}}

MALFORMED = [
    pytest.param(42, "must be a mapping", id="not-a-dict"),
    pytest.param({}, "unknown job kind None", id="missing-kind"),
    pytest.param({"kind": "no_such_kind"}, "unknown job kind", id="unknown-kind"),
    pytest.param({"kind": "worst_case"}, "missing its 'use_cases'", id="missing-source"),
    pytest.param({"kind": "design_flow"}, "missing its 'use_cases'",
                 id="design-flow-missing-source"),
    pytest.param({"kind": "refine", "use_cases": GENERATOR_SOURCE,
                  "iterations": "many"}, "malformed 'refine'", id="wrong-type-int"),
    pytest.param({"kind": "refine", "use_cases": GENERATOR_SOURCE,
                  "method": "gradient_descent"}, "unknown refinement method",
                 id="bad-refine-method"),
    pytest.param({"kind": "frequency", "use_cases": GENERATOR_SOURCE,
                  "frequencies_mhz": ["fast"]}, "malformed 'frequency'",
                 id="wrong-type-float"),
    pytest.param({"kind": "design_flow", "use_cases": GENERATOR_SOURCE,
                  "parallel_modes": [{"name": "broken"}]}, "malformed 'design_flow'",
                 id="mode-missing-members"),
    pytest.param({"kind": "refine", "use_cases": GENERATOR_SOURCE, "groups": 5},
                 "malformed 'refine'", id="groups-not-a-list"),
    pytest.param({"kind": "sweep"}, "missing its 'study'", id="sweep-missing-study"),
    pytest.param({"kind": "sweep", "study": "no_such_study"}, "unknown sweep study",
                 id="sweep-unknown-study"),
    pytest.param({"kind": "sweep", "study": "ablation_grouping"},
                 "needs a 'use_cases' source", id="ablation-missing-design"),
    pytest.param({"kind": "worst_case", "use_cases": {}},
                 "cannot interpret use-case source", id="empty-source"),
    pytest.param({"kind": "worst_case", "use_cases": {"path": None}},
                 "exactly one of", id="all-fields-null-source"),
    pytest.param({"kind": "worst_case",
                  "use_cases": {"path": "x.json", "generator": {"kind": "spread"}}},
                 "exactly one of", id="over-populated-source"),
    pytest.param({"kind": "worst_case", "use_cases": {"bogus": 1}},
                 "cannot interpret use-case source", id="unrecognised-source"),
    pytest.param({"kind": "gap"}, "missing its 'use_cases'",
                 id="gap-missing-source"),
    pytest.param({"kind": "gap", "use_cases": GENERATOR_SOURCE,
                  "solver": "simplex"}, "unknown exact solver",
                 id="gap-unknown-solver"),
    pytest.param({"kind": "gap", "use_cases": GENERATOR_SOURCE,
                  "refine_iterations": "lots"}, "malformed 'gap'",
                 id="gap-wrong-type-int"),
    pytest.param({"kind": "gap", "use_cases": GENERATOR_SOURCE,
                  "node_limit": -5}, "node_limit", id="gap-negative-node-limit"),
]


@pytest.mark.parametrize("document,match", MALFORMED)
def test_malformed_documents_raise_clear_errors(document, match):
    with pytest.raises((SerializationError, SpecificationError), match=match):
        job_from_dict(document)


def test_malformed_documents_never_leak_builtin_exceptions():
    """Fuzz job_from_dict with randomly corrupted documents.

    Whatever the corruption — dropped fields, wrong types, mangled nested
    blocks — the outcome must be a library error (the CLI's one-line
    diagnostic contract), never a raw KeyError/TypeError/ValueError.
    """
    rng = random.Random(SEED + 1)
    base_documents = [
        job_to_dict(WorstCaseJob(use_cases=UseCaseSource(generator=dict(
            kind="spread", use_case_count=3)))),
        job_to_dict(RefineJob(use_cases=UseCaseSource(inline=INLINE_DESIGN))),
        job_to_dict(SweepJob(study="headline")),
        job_to_dict(FrequencyJob(use_cases=UseCaseSource(generator=dict(
            kind="bottleneck", use_case_count=2)), frequencies_mhz=(100.0,))),
        job_to_dict(GapJob(use_cases=UseCaseSource(generator=dict(
            kind="spread", use_case_count=3)), solver="native")),
    ]
    junk = [None, 5, "x", [], [1], {"oops": 1}, True, 3.5]
    for _ in range(120):
        document = json.loads(json.dumps(rng.choice(base_documents)))
        for _ in range(rng.randint(1, 3)):
            key = rng.choice(sorted(document))
            if rng.random() < 0.4:
                document.pop(key)
            else:
                document[key] = rng.choice(junk)
        try:
            job_from_dict(document)
        except ReproError:
            pass  # the contract: library errors only


def test_generator_build_rejects_bad_recipes():
    source = UseCaseSource(generator={"kind": "spread", "use_case_count": 2,
                                      "bogus_knob": 1})
    with pytest.raises(SerializationError, match="invalid generator recipe"):
        source.build()
    with pytest.raises(SerializationError, match="needs a 'kind'"):
        UseCaseSource(generator={"use_case_count": 2}).build()
