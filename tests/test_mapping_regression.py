"""Regression tests pinning the mapper's results to the seed implementation.

The bitmask slot tables, incremental resource accounting and worklist/heap
scheduling are pure performance work: they must not change *any* observable
mapping decision.  These tests fingerprint the full mapping result (topology,
core mapping, per-flow switch paths and slot assignments) of the seed
benchmark designs and compare against hashes recorded from the seed
implementation, so any semantic drift in the hot path fails loudly.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import UnifiedMapper
from repro.gen import generate_benchmark, set_top_box_design


def mapping_fingerprint(result) -> str:
    """Stable SHA-256 over every observable decision of a mapping result."""
    slots = {}
    for name, configuration in sorted(result.configurations.items()):
        for allocation in configuration:
            key = f"{name}:{allocation.flow.source}->{allocation.flow.destination}"
            slots[key] = [
                list(allocation.switch_path),
                sorted((str(link), list(indices)) for link, indices in allocation.link_slots.items()),
            ]
    blob = json.dumps(
        [result.topology.name, sorted(result.core_mapping.items()), slots],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


#: (design builder, expected topology, expected switch count, seed fingerprint)
SEED_EXPECTATIONS = {
    "set_top_box_4uc": (
        lambda: set_top_box_design(use_case_count=4).use_cases,
        "mesh-2x2",
        4,
        "51558260176cd00824e83600f3c23c0c54bc17eceece42685930fc4f5034f2af",
    ),
    "spread_10uc": (
        lambda: generate_benchmark("spread", 10, seed=3),
        "mesh-2x2",
        4,
        "fe6d93388377d6e6d578733f2efe5de71e885b8b2f4280ddd634f13a74994a29",
    ),
    "spread_40uc": (
        lambda: generate_benchmark("spread", 40, seed=3),
        "mesh-2x2",
        4,
        "ce32a52f2cc8b7bd778e48de74aae4259eeeb3446d27bf3af69fba18a01ba6c4",
    ),
}


@pytest.mark.parametrize("name", sorted(SEED_EXPECTATIONS))
def test_mapping_results_identical_to_seed(name):
    build, topology_name, switch_count, fingerprint = SEED_EXPECTATIONS[name]
    result = UnifiedMapper().map(build())
    assert result.topology.name == topology_name
    assert result.switch_count == switch_count
    assert mapping_fingerprint(result) == fingerprint


def test_mapping_fingerprint_stable_across_mapper_reuse():
    use_cases = generate_benchmark("spread", 10, seed=3)
    mapper = UnifiedMapper()
    first = mapping_fingerprint(mapper.map(use_cases))
    second = mapping_fingerprint(mapper.map(use_cases))
    assert first == second


def test_map_with_placement_round_trips_the_mapping():
    use_cases = generate_benchmark("spread", 10, seed=3)
    mapper = UnifiedMapper()
    result = mapper.map(use_cases)
    groups = [list(group) for group in result.groups]
    use_cases.validate()
    replayed = mapper.map_with_placement(
        use_cases, result.topology, result.core_mapping, groups=groups,
        validate=False,
    )
    assert replayed.core_mapping == result.core_mapping
    assert mapping_fingerprint(replayed) == mapping_fingerprint(result)
