"""Failure-aware mapping: fault model, degraded routing, RepairJob, sweeps.

Pins the contracts the ISSUE demands:

* :class:`FailureSet` round-trips through JSON, content-hashes stably, and
  rejects unknown / overlapping failure ids against a topology;
* a degraded topology keeps its identity-changing fingerprint and routing
  finds (non-minimal) detours around failures;
* a single-link :class:`RepairJob` remaps **only** the affected
  smooth-switching groups (pinned count on the sparse demo design) and
  warm-started repair performs **zero** group evaluations while staying
  bit-identical to the cold run;
* unrepairable use cases degrade gracefully (``mapped: False`` plus the
  list of broken use cases — never an exception);
* the ``python -m repro failures`` CLI sweeps failures and reports every
  authoring mistake as a one-line diagnostic with a nonzero exit.
"""

from __future__ import annotations

import json

import pytest

from repro import MappingEngine
from repro.analysis import failure_sweep, single_link_failures, single_switch_failures
from repro.core.repair import repair_mapping
from repro.exceptions import RoutingError, TopologyError
from repro.gen import generate_benchmark
from repro.io.serialization import save_use_case_set, topology_to_dict
from repro.jobs import RepairJob, UseCaseSource, execute_job, job_hash
from repro.jobs.cli import main as cli_main
from repro.noc import FailureSet, PathSelector, Topology

# The sparse demo design: 8 light use cases on 16 cores map onto mesh-3x3
# with plenty of slack, so single-link failures split the groups into
# affected / untouched — the partial-splice scenario repair exists for.
SPARSE8 = dict(kind="spread", use_case_count=8, core_count=16, seed=5,
               flows_per_use_case=[6, 10])


def _sparse_use_cases():
    return generate_benchmark(**SPARSE8)


def _provisioned_baseline(engine, use_cases):
    return engine.mapper.map_with_placement(
        use_cases, Topology.mesh(3, 3), {}, validate=False
    )


# --------------------------------------------------------------------- #
# FailureSet model
# --------------------------------------------------------------------- #
def test_failure_set_roundtrip_and_content_hash():
    failures = FailureSet().mark_link_down(1, 4).mark_switch_down(8)
    assert failures.links == ((1, 4), (4, 1))  # bidirectional by default
    assert failures.switches == (8,)
    assert not failures.is_empty

    document = failures.to_dict()
    assert FailureSet.from_dict(json.loads(json.dumps(document))) == failures
    assert FailureSet.from_dict(document).content_hash == failures.content_hash

    # mutation events change the hash; repairing restores it
    pristine_hash = FailureSet().content_hash
    assert failures.content_hash != pristine_hash
    failures.mark_link_up(1, 4).mark_switch_up(8)
    assert failures.is_empty
    assert failures.content_hash == pristine_hash


def test_failure_set_queries():
    failures = FailureSet().mark_link_down(0, 1, bidirectional=False)
    failures.mark_switch_down(5)
    assert failures.affects_link(0, 1)
    assert not failures.affects_link(1, 0)  # single-direction fault
    assert failures.affects_link(5, 2) and failures.affects_link(2, 5)
    assert failures.affects_path((3, 0, 1))
    assert not failures.affects_path((1, 0, 3))
    assert failures.describe() == "link 0->1, switch 5"


def test_failure_set_validation_rejects_bad_ids():
    mesh = Topology.mesh(2, 2)
    with pytest.raises(TopologyError):
        FailureSet().mark_switch_down(9).validate_for(mesh)
    with pytest.raises(TopologyError, match="does not exist"):
        FailureSet().mark_link_down(0, 3).validate_for(mesh)  # diagonal
    with pytest.raises(TopologyError, match="overlapping"):
        FailureSet().mark_link_down(0, 1).mark_switch_down(0).validate_for(mesh)
    with pytest.raises(TopologyError, match="malformed"):
        FailureSet.from_dict({"links": [[0]]})


# --------------------------------------------------------------------- #
# degraded topologies and routing
# --------------------------------------------------------------------- #
def test_with_failures_filters_links_and_changes_identity():
    mesh = Topology.mesh(3, 3)
    degraded = mesh.with_failures(FailureSet().mark_link_down(1, 4))
    assert mesh.has_link(1, 4) and mesh.has_link(4, 1)
    assert not degraded.has_link(1, 4) and not degraded.has_link(4, 1)
    assert degraded.has_failures and not mesh.has_failures
    assert degraded.name.startswith("mesh-3x3+f")
    # the pristine serialised document stays byte-stable: no failures key
    assert "failures" not in topology_to_dict(mesh)
    assert topology_to_dict(degraded)["failures"]["links"]


def test_degraded_switch_failure_removes_all_its_links():
    degraded = Topology.mesh(2, 2).with_failures(FailureSet().mark_switch_down(0))
    assert degraded.is_switch_down(0)
    assert [sw.index for sw in degraded.alive_switches] == [1, 2, 3]
    assert not degraded.has_link(0, 1) and not degraded.has_link(2, 0)


def test_degraded_mesh_routing_finds_detour():
    config = MappingEngine().config
    degraded = Topology.mesh(2, 2).with_failures(FailureSet().mark_link_down(0, 1))
    paths = PathSelector(degraded, config).candidate_paths(0, 1)
    # every minimal path is broken; the generic fall-through finds the
    # two-hop detour around the failed channel
    assert paths == ((0, 2, 3, 1),)
    # a switch failure that disconnects the pair reports no path
    islanded = Topology.mesh(2, 2).with_failures(
        FailureSet().mark_switch_down(1).mark_switch_down(2)
    )
    with pytest.raises(RoutingError, match="no path"):
        PathSelector(islanded, config).candidate_paths(0, 3)


# --------------------------------------------------------------------- #
# repair_mapping: splice semantics
# --------------------------------------------------------------------- #
def test_repair_remaps_only_affected_groups():
    engine = MappingEngine()
    use_cases = _sparse_use_cases()
    baseline = _provisioned_baseline(engine, use_cases)

    outcome = repair_mapping(
        engine, use_cases, baseline, FailureSet().mark_link_down(1, 4)
    )
    assert outcome.repaired is not None and not outcome.unrepairable
    assert outcome.groups_total == 8
    # pinned: exactly the 4 groups routing over link 1<->4 are re-evaluated
    assert len(outcome.affected_group_ids) == 4
    assert outcome.evaluations["evaluation_misses"] == 4
    # untouched groups keep their baseline configurations verbatim
    repaired = outcome.repaired
    assert repaired.topology.has_failures
    assert repaired.method == "unified-repair"
    affected = set(outcome.affected_group_ids)
    for gid, group in enumerate(baseline.groups):
        if gid in affected:
            continue
        for name in group:
            assert repaired.configurations[name] is baseline.configurations[name]


def test_repair_zero_affected_is_pure_splice():
    engine = MappingEngine()
    use_cases = _sparse_use_cases()
    baseline = _provisioned_baseline(engine, use_cases)

    outcome = repair_mapping(
        engine, use_cases, baseline, FailureSet().mark_link_down(7, 8)
    )
    assert outcome.repaired is not None
    assert outcome.affected_group_ids == ()
    assert outcome.evaluations["evaluation_misses"] == 0
    assert outcome.repaired_cost == pytest.approx(outcome.baseline_cost)
    assert outcome.metrics()["cost_delta"] == pytest.approx(0.0)


def test_repair_reports_unrepairable_gracefully():
    engine = MappingEngine()
    use_cases = generate_benchmark("spread", 3, core_count=12, seed=1)
    baseline = engine.map(use_cases)
    assert baseline.topology.name == "mesh-2x2"  # minimal mesh: zero slack

    outcome = repair_mapping(
        engine, use_cases, baseline, FailureSet().mark_link_down(0, 1),
        compare_full_remap=True,
    )
    assert outcome.repaired is None
    assert outcome.unrepairable == ("uc01",)
    assert outcome.full_remap is None  # even a full remap cannot absorb it


# --------------------------------------------------------------------- #
# RepairJob: warm/cold equivalence (satellite c)
# --------------------------------------------------------------------- #
def test_repair_job_warm_cold_equivalence(tmp_path):
    job = RepairJob(
        use_cases=UseCaseSource(generator=dict(SPARSE8)),
        failures=FailureSet().mark_link_down(1, 4).to_dict(),
        provision=(3, 3),
    )
    store = tmp_path / "store"
    cold = execute_job(job, store_path=store)
    warm = execute_job(job, store_path=store)

    assert cold.payload["mapped"] is True
    assert cold.payload["repair"]["groups_remapped"] == 4
    assert cold.stats["engine"]["evaluation_misses"] > 0
    # warm repair answers every affected-group evaluation from the store
    assert warm.stats["engine"]["evaluation_misses"] == 0
    # and stays bit-identical to the cold run
    assert warm.payload == cold.payload
    assert warm.payload["fingerprint"] == cold.payload["fingerprint"]


def test_repair_job_hash_depends_on_failures():
    base = RepairJob(
        use_cases=UseCaseSource(generator=dict(SPARSE8)), provision=(3, 3),
        failures=FailureSet().mark_link_down(1, 4).to_dict(),
    )
    other = RepairJob(
        use_cases=UseCaseSource(generator=dict(SPARSE8)), provision=(3, 3),
        failures=FailureSet().mark_link_down(3, 4).to_dict(),
    )
    assert job_hash(base) != job_hash(other)
    assert job_hash(base) == job_hash(RepairJob.from_dict(base.to_dict()))


# --------------------------------------------------------------------- #
# failure sweeps
# --------------------------------------------------------------------- #
def test_failure_sweep_sparse_design_all_links_repairable():
    engine = MappingEngine()
    use_cases = _sparse_use_cases()
    rows = failure_sweep(
        use_cases, engine=engine, provision=(3, 3), include_switches=False
    )
    assert len(rows) == len(single_link_failures(Topology.mesh(3, 3))) == 12
    assert all(row.kind == "link" for row in rows)
    assert all(row.schedulable and row.repaired for row in rows)
    by_failure = {row.failure: row for row in rows}
    assert by_failure["link 1<->4"].affected_groups == 4
    assert by_failure["link 7<->8"].affected_groups == 0
    document = rows[0].as_dict()
    assert set(document) >= {"failure", "kind", "schedulable", "repaired",
                             "affected_groups", "groups_total"}


def test_failure_sweep_minimal_mesh_finds_the_breaking_failures():
    engine = MappingEngine()
    use_cases = generate_benchmark("spread", 3, core_count=12, seed=1)
    baseline = engine.map(use_cases)
    rows = failure_sweep(use_cases, baseline=baseline, engine=engine)
    expected = len(single_link_failures(baseline.topology)) + len(
        single_switch_failures(baseline.topology)
    )
    assert len(rows) == expected == 8
    # the minimal mesh has little slack: the sweep pins exactly which
    # failures break schedulability (even under a full remap) and which
    # the spare capacity absorbs
    broken = {row.failure for row in rows if not row.schedulable}
    assert broken == {"link 0<->1", "link 0<->2",
                      "switch 0", "switch 1", "switch 2"}
    assert all(row.unrepairable for row in rows if not row.schedulable)
    assert all(row.repaired for row in rows if row.schedulable)


# --------------------------------------------------------------------- #
# CLI: python -m repro failures (satellite a)
# --------------------------------------------------------------------- #
@pytest.fixture()
def sparse_design_file(tmp_path):
    path = tmp_path / "design.json"
    save_use_case_set(_sparse_use_cases(), path)
    return path


def test_cli_failures_sweep(sparse_design_file, tmp_path, capsys):
    out = tmp_path / "rows.json"
    code = cli_main([
        "failures", str(sparse_design_file), "--provision", "3x3",
        "--links-only", "--out", str(out),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "12 failure(s) swept, 0 break schedulability" in captured.out
    rows = json.loads(out.read_text())
    assert len(rows) == 12 and all(row["repaired"] for row in rows)


def test_cli_failures_repair_job(sparse_design_file, capsys):
    code = cli_main([
        "failures", str(sparse_design_file), "--provision", "3x3",
        "--fail-link", "1,4",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "remapped 4/8 group(s)" in captured.out


def test_cli_failures_unknown_link_is_one_line_error(sparse_design_file, capsys):
    code = cli_main([
        "failures", str(sparse_design_file), "--provision", "3x3",
        "--fail-link", "0,99",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("error:")
    assert len(captured.err.strip().splitlines()) == 1


def test_cli_failures_overlapping_failure_is_rejected(sparse_design_file, capsys):
    code = cli_main([
        "failures", str(sparse_design_file), "--provision", "3x3",
        "--fail-link", "0,1", "--fail-switch", "0",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "overlapping failure" in captured.err


def test_cli_failures_missing_baseline_is_one_line_error(
        sparse_design_file, capsys, tmp_path):
    code = cli_main([
        "failures", str(sparse_design_file),
        "--baseline", str(tmp_path / "nope.json"), "--fail-link", "0,1",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "cannot read repair baseline" in captured.err


def test_cli_failures_corrupt_baseline_is_one_line_error(
        sparse_design_file, capsys, tmp_path):
    corrupt = tmp_path / "baseline.json"
    corrupt.write_text("{not json")
    code = cli_main([
        "failures", str(sparse_design_file),
        "--baseline", str(corrupt), "--fail-link", "0,1",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert captured.err.startswith("error:")


def test_cli_failures_bad_provision_is_rejected(sparse_design_file, capsys):
    code = cli_main([
        "failures", str(sparse_design_file), "--provision", "banana",
    ])
    captured = capsys.readouterr()
    assert code == 1
    assert "--provision expects" in captured.err
