"""Tests for the unit conversion helpers."""

import pytest

from repro import units


def test_mbps_roundtrip():
    assert units.to_mbps(units.mbps(200)) == pytest.approx(200.0)


def test_mbps_uses_decimal_megabytes():
    assert units.mbps(1) == pytest.approx(1_000_000.0)


def test_mhz_and_ghz_are_consistent():
    assert units.ghz(1) == pytest.approx(units.mhz(1000))


def test_to_mhz_roundtrip():
    assert units.to_mhz(units.mhz(500)) == pytest.approx(500.0)


def test_time_helpers_scale_correctly():
    assert units.ms(1) == pytest.approx(1000 * units.us(1))
    assert units.us(1) == pytest.approx(1000 * units.ns(1))
    assert units.to_ns(units.ns(7)) == pytest.approx(7.0)


def test_link_capacity_reference_point():
    # 500 MHz x 32-bit links = 2 GB/s, the paper's reference configuration.
    assert units.link_capacity(units.mhz(500), 32) == pytest.approx(2e9)


def test_link_capacity_scales_linearly_with_frequency():
    slow = units.link_capacity(units.mhz(250), 32)
    fast = units.link_capacity(units.mhz(500), 32)
    assert fast == pytest.approx(2 * slow)


def test_link_capacity_scales_linearly_with_width():
    narrow = units.link_capacity(units.mhz(500), 16)
    wide = units.link_capacity(units.mhz(500), 64)
    assert wide == pytest.approx(4 * narrow)


@pytest.mark.parametrize("frequency,width", [(0, 32), (-1, 32), (units.mhz(500), 0), (units.mhz(500), -8)])
def test_link_capacity_rejects_non_positive_inputs(frequency, width):
    with pytest.raises(ValueError):
        units.link_capacity(frequency, width)
