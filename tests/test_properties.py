"""Property-based tests of the end-to-end mapping invariants.

These use hypothesis to generate random (small) multi-use-case designs and
check the invariants the methodology promises regardless of input:

* every flow of every use-case receives a path between the switches its
  cores are mapped to;
* the shared core mapping respects the per-switch NI limit;
* within one configuration group no TDMA slot is double-booked;
* the analytical verification passes for every produced mapping; and
* the proposed method never needs more switches than the worst-case
  baseline (when both succeed).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    Flow,
    MappingError,
    NoCParameters,
    UnifiedMapper,
    UseCase,
    UseCaseSet,
    WorstCaseMapper,
    verify_mapping,
)
from repro.units import mbps, us


@st.composite
def small_designs(draw):
    """Random small multi-use-case designs that are individually feasible."""
    core_count = draw(st.integers(min_value=3, max_value=8))
    cores = [f"c{i}" for i in range(core_count)]
    use_case_count = draw(st.integers(min_value=1, max_value=4))
    use_cases = []
    for index in range(use_case_count):
        pair_count = draw(st.integers(min_value=1, max_value=min(10, core_count * 2)))
        pairs = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=core_count - 1),
                    st.integers(min_value=0, max_value=core_count - 1),
                ).filter(lambda pair: pair[0] != pair[1]),
                min_size=pair_count,
                max_size=pair_count,
                unique=True,
            )
        )
        flows = []
        for src, dst in pairs:
            bandwidth = draw(st.floats(min_value=1.0, max_value=300.0))
            latency = draw(st.sampled_from([us(10), us(100), us(1000)]))
            flows.append(Flow(cores[src], cores[dst], mbps(bandwidth), latency=latency))
        if not flows:
            flows = [Flow(cores[0], cores[1], mbps(10))]
        use_cases.append(UseCase(f"u{index}", flows=flows))
    return UseCaseSet(use_cases, name="hypothesis")


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(design=small_designs())
@_SETTINGS
def test_mapping_invariants_hold_for_random_designs(design):
    params = NoCParameters(max_cores_per_switch=3)
    try:
        result = UnifiedMapper(params=params).map(design)
    except MappingError:
        # Random designs may genuinely be infeasible (e.g. an oversubscribed
        # core); that is a legitimate outcome, not an invariant violation.
        return

    # Every core of the design is mapped, respecting the per-switch limit.
    assert set(result.core_mapping) == set(design.all_core_names())
    occupancy = {}
    for switch in result.core_mapping.values():
        occupancy[switch] = occupancy.get(switch, 0) + 1
    assert max(occupancy.values()) <= 3

    # Every flow has an allocation consistent with the shared mapping, and
    # the slot reservations provide enough bandwidth.
    report = verify_mapping(result, design)
    assert report.passed, [str(v) for v in report.violations]


@given(design=small_designs())
@_SETTINGS
def test_unified_never_needs_more_switches_than_worst_case(design):
    params = NoCParameters(max_cores_per_switch=3)
    try:
        worst = WorstCaseMapper(params=params).map(design)
    except MappingError:
        return
    unified = UnifiedMapper(params=params).map(design)
    assert unified.switch_count <= worst.switch_count


@given(design=small_designs())
@_SETTINGS
def test_mapping_is_deterministic_for_random_designs(design):
    params = NoCParameters(max_cores_per_switch=3)
    try:
        first = UnifiedMapper(params=params).map(design)
        second = UnifiedMapper(params=params).map(design)
    except MappingError:
        return
    assert first.core_mapping == second.core_mapping
    assert first.switch_count == second.switch_count


@given(design=small_designs())
@_SETTINGS
def test_mapper_reuse_matches_fresh_mapper(design):
    """A reused mapper (warm selector/relative-path caches) must produce the
    same mapping as a fresh one — the caches are pure."""
    params = NoCParameters(max_cores_per_switch=3)
    mapper = UnifiedMapper(params=params)
    try:
        first = mapper.map(design)
    except MappingError:
        return
    second = mapper.map(design)  # warm caches
    fresh = UnifiedMapper(params=params).map(design)
    for other in (second, fresh):
        assert first.core_mapping == other.core_mapping
        assert first.topology.name == other.topology.name
        for name, configuration in first.configurations.items():
            for allocation in configuration:
                twin = other.configurations[name].allocation_for(
                    allocation.flow.source, allocation.flow.destination
                )
                assert twin is not None
                assert twin.switch_path == allocation.switch_path
                assert dict(twin.link_slots) == dict(allocation.link_slots)


@given(
    design=small_designs(),
    slot_table_size=st.sampled_from([8, 16, 32]),
)
@_SETTINGS
def test_no_slot_double_booking_within_groups(design, slot_table_size):
    params = NoCParameters(max_cores_per_switch=3, slot_table_size=slot_table_size)
    groups = [list(design.names)]  # force everything into one shared configuration
    try:
        result = UnifiedMapper(params=params).map(design, groups=groups)
    except MappingError:
        return
    owners = {}
    for name, configuration in result.configurations.items():
        for allocation in configuration:
            for link, slots in allocation.link_slots.items():
                for slot in slots:
                    key = (link, slot)
                    owner = allocation.flow.pair
                    existing = owners.setdefault(key, owner)
                    assert existing == owner, (
                        f"slot {slot} on link {link} owned by both {existing} and {owner}"
                    )
