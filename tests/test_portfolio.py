"""Tests for portfolio refinement (repro.optimize.portfolio + the job kind).

Pins the portfolio contracts the ISSUE demands:

* the chain derivation is deterministic (seeds increment, chain 0 keeps
  the refiner defaults, tabu chains carry no temperature);
* ``reduce_best`` picks the lowest refined cost with index tie-breaks;
* a portfolio run is deterministic — same spec, same payload — and a
  1-chain portfolio is bit-identical to the plain ``RefineJob``;
* chain traffic is aggregated into the outer engine's counters
  (screening included) and the pool path matches the serial path.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import SpecificationError
from repro.jobs import (
    PortfolioRefineJob,
    RefineJob,
    UseCaseSource,
    job_from_dict,
    job_hash,
    job_to_dict,
)
from repro.jobs.cli import main as cli_main
from repro.jobs.runner import execute_job
from repro.optimize.annealing import DEFAULT_INITIAL_TEMPERATURE
from repro.optimize.portfolio import (
    CHAIN_TEMPERATURE_FACTOR,
    chain_initial_temperature,
    chain_refine_jobs,
    reduce_best,
)

SPREAD10 = UseCaseSource(generator={"kind": "spread", "use_case_count": 10, "seed": 3})


def run_job(job):
    return execute_job(job, job_hash(job))


# --------------------------------------------------------------------------- #
# chain derivation
# --------------------------------------------------------------------------- #
def test_chain_refine_jobs_diversify_seeds_and_temperatures():
    job = PortfolioRefineJob(use_cases=SPREAD10, iterations=12, seed=5, chains=3)
    chains = chain_refine_jobs(job)
    assert [chain.seed for chain in chains] == [5, 6, 7]
    assert chains[0].initial_temperature is None  # the bit-identity anchor
    assert chains[1].initial_temperature == pytest.approx(
        DEFAULT_INITIAL_TEMPERATURE * CHAIN_TEMPERATURE_FACTOR
    )
    assert chains[2].initial_temperature == pytest.approx(
        DEFAULT_INITIAL_TEMPERATURE * CHAIN_TEMPERATURE_FACTOR**2
    )
    assert all(chain.iterations == 12 for chain in chains)
    assert all(chain.use_cases == SPREAD10 for chain in chains)


def test_tabu_chains_have_no_temperature():
    job = PortfolioRefineJob(
        use_cases=SPREAD10, method="tabu", iterations=4, chains=3
    )
    assert [c.initial_temperature for c in chain_refine_jobs(job)] == [None] * 3
    assert chain_initial_temperature("tabu", 2) is None


def test_reduce_best_breaks_ties_by_chain_index():
    payloads = [
        {"mapped": True, "refined_cost": 5.0},
        {"mapped": True, "refined_cost": 3.0},
        {"mapped": True, "refined_cost": 3.0},  # tie goes to the earlier chain
        {"mapped": False},
    ]
    assert reduce_best(payloads) == 1
    assert reduce_best([{"mapped": False}, {"mapped": False}]) == 0
    assert reduce_best([{"mapped": False}, {"mapped": True, "refined_cost": 1.0}]) == 1


# --------------------------------------------------------------------------- #
# spec validation and serialisation
# --------------------------------------------------------------------------- #
def test_portfolio_job_round_trips():
    job = PortfolioRefineJob(
        use_cases=SPREAD10, method="tabu", iterations=7, seed=4,
        chains=3, temperature_factor=2.0, workers=2,
    )
    document = job_to_dict(job)
    assert document["kind"] == "portfolio_refine"
    assert job_from_dict(json.loads(json.dumps(document))) == job


def test_refine_job_temperature_round_trips_and_defaults_stay_hash_stable():
    warmed = RefineJob(use_cases=SPREAD10, iterations=9, initial_temperature=0.25)
    assert job_from_dict(job_to_dict(warmed)) == warmed
    plain = RefineJob(use_cases=SPREAD10, iterations=9)
    # the default must be *omitted*: historical refine documents (and the
    # persistent cache keys hashed from them) must not change
    assert "initial_temperature" not in job_to_dict(plain)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"chains": 0},
        {"workers": -1},
        {"temperature_factor": 0.0},
        {"method": "gradient-descent"},
    ],
)
def test_portfolio_job_validation(kwargs):
    with pytest.raises(SpecificationError):
        PortfolioRefineJob(use_cases=SPREAD10, **kwargs)


def test_refine_job_rejects_bad_temperatures():
    with pytest.raises(SpecificationError):
        RefineJob(use_cases=SPREAD10, initial_temperature=0.0)
    with pytest.raises(SpecificationError):
        RefineJob(use_cases=SPREAD10, method="tabu", initial_temperature=0.1)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def test_portfolio_execution_is_deterministic():
    job = PortfolioRefineJob(use_cases=SPREAD10, iterations=18, chains=3, seed=0)
    first = run_job(job)
    second = run_job(job)
    assert first.payload == second.payload
    portfolio = first.payload["portfolio"]
    assert portfolio["chains"] == 3
    assert len(portfolio["chain_results"]) == 3
    best = portfolio["best_chain"]
    mapped = [c for c in portfolio["chain_results"] if c["mapped"]]
    assert mapped
    assert portfolio["chain_results"][best]["refined_cost"] == min(
        c["refined_cost"] for c in mapped
    )
    assert first.payload["refined_cost"] == (
        portfolio["chain_results"][best]["refined_cost"]
    )
    # chain traffic (screening included) is folded into the outer engine
    engine_stats = first.stats["engine"]
    assert engine_stats["screen_misses"] > 0
    assert engine_stats["evaluation_misses"] > 0


def test_single_chain_portfolio_matches_plain_refine_job():
    portfolio = PortfolioRefineJob(use_cases=SPREAD10, iterations=18, chains=1, seed=0)
    plain = RefineJob(use_cases=SPREAD10, iterations=18, seed=0)
    portfolio_payload = run_job(portfolio).payload
    plain_payload = run_job(plain).payload
    stripped = {k: v for k, v in portfolio_payload.items() if k != "portfolio"}
    assert stripped == plain_payload


def test_pool_portfolio_matches_serial_payload():
    serial = PortfolioRefineJob(use_cases=SPREAD10, iterations=12, chains=2, seed=0)
    pooled = PortfolioRefineJob(
        use_cases=SPREAD10, iterations=12, chains=2, seed=0, workers=2
    )
    assert run_job(serial).payload == run_job(pooled).payload


def test_cli_refine_portfolio(capsys):
    assert cli_main([
        "refine", "--spread", "6", "--iterations", "6", "--chains", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "portfolio: best of 2 chain(s)" in out


def test_cli_refine_requires_exactly_one_design_source(capsys):
    assert cli_main(["refine"]) == 1
    assert cli_main(["refine", "design.json", "--spread", "4"]) == 1
