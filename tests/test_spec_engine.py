"""Tests for the compiled-spec layer and the MappingEngine session caches."""

import pytest

from repro import (
    Core,
    Flow,
    MappingEngine,
    MappingError,
    SpecificationError,
    UnifiedMapper,
    UseCase,
    UseCaseSet,
    compile_spec,
)
from repro.core.spec import CompiledSpec
from repro.gen import generate_benchmark
from repro.units import mbps, us

from test_mapping_regression import mapping_fingerprint


def _flows():
    return [
        Flow("a", "b", mbps(10), latency=us(100)),
        Flow("b", "c", mbps(75)),
        Flow("c", "d", mbps(100), traffic_class="BE"),
    ]


# --------------------------------------------------------------------------- #
# content hashes
# --------------------------------------------------------------------------- #
def test_use_case_hash_stable_across_flow_order():
    flows = _flows()
    forward = UseCase("u", flows=flows)
    backward = UseCase("u", flows=list(reversed(flows)))
    assert forward.content_hash() == backward.content_hash()


def test_use_case_hash_stable_across_core_order():
    cores = [Core("x", "memory"), Core("y", "processor")]
    one = UseCase("u", flows=_flows(), cores=cores)
    other = UseCase("u", flows=_flows(), cores=list(reversed(cores)))
    assert one.content_hash() == other.content_hash()


def test_use_case_hash_changes_with_content():
    base = UseCase("u", flows=_flows())
    renamed = UseCase("v", flows=_flows())
    heavier = UseCase("u", flows=[Flow("a", "b", mbps(11))])
    assert base.content_hash() != renamed.content_hash()
    assert base.content_hash() != heavier.content_hash()


def test_use_case_hash_tracks_mutation_until_frozen():
    uc = UseCase("u", flows=[Flow("a", "b", mbps(10))])
    before = uc.content_hash()
    uc.add_flow(Flow("b", "c", mbps(5)))
    assert uc.content_hash() != before


def test_use_case_set_hash_stable_across_insertion_order():
    def build(order):
        u1 = UseCase("u1", flows=[Flow("a", "b", mbps(10))])
        u2 = UseCase("u2", flows=[Flow("b", "c", mbps(20))])
        members = [u1, u2] if order else [u2, u1]
        return UseCaseSet(members, name="design")

    assert build(True).content_hash() == build(False).content_hash()


# --------------------------------------------------------------------------- #
# immutability enforcement
# --------------------------------------------------------------------------- #
def test_frozen_use_case_rejects_mutation():
    uc = UseCase("u", flows=[Flow("a", "b", mbps(10))])
    uc.freeze()
    assert uc.frozen
    with pytest.raises(SpecificationError):
        uc.add_flow(Flow("b", "c", mbps(5)))
    with pytest.raises(SpecificationError):
        uc.add_core(Core("z"))
    uc.freeze()  # idempotent


def test_frozen_set_rejects_add_and_freezes_members():
    uc = UseCase("u", flows=[Flow("a", "b", mbps(10))])
    design = UseCaseSet([uc], name="d")
    design.freeze()
    assert design.frozen and uc.frozen
    with pytest.raises(SpecificationError):
        design.add(UseCase("v", flows=[Flow("a", "c", mbps(1))]))
    with pytest.raises(SpecificationError):
        uc.add_flow(Flow("x", "y", mbps(1)))


def test_compile_freezes_and_interns_cores():
    design = UseCaseSet([UseCase("u", flows=_flows())], name="d")
    spec = compile_spec(design)
    assert design.frozen
    assert isinstance(spec, CompiledSpec)
    assert spec.core_names == ("a", "b", "c", "d")
    compiled_uc = spec["u"]
    flow = compiled_uc.flows[0]
    assert spec.core_names[flow.source_index] == flow.source
    assert spec.core_names[flow.destination_index] == flow.destination
    # BE flows compile with guaranteed=False.
    assert [f.guaranteed for f in compiled_uc.flows] == [True, True, False]
    # Original Flow objects are preserved for result records.
    assert compiled_uc.flow_between("a", "b").bandwidth == pytest.approx(mbps(10))


def test_new_sets_may_be_built_from_frozen_use_cases():
    uc = UseCase("u", flows=[Flow("a", "b", mbps(10))]).freeze()
    rebuilt = UseCaseSet([uc], name="again")  # must not raise
    assert "u" in rebuilt


# --------------------------------------------------------------------------- #
# engine caches
# --------------------------------------------------------------------------- #
def test_engine_compile_caches_by_identity_and_content():
    engine = MappingEngine()
    design = UseCaseSet([UseCase("u", flows=_flows())], name="d")
    twin = UseCaseSet([UseCase("u", flows=_flows())], name="d")
    spec = engine.compile(design)
    assert engine.compile(design) is spec  # identity fast path
    assert engine.compile(twin) is spec  # same ordered content -> shared spec
    assert engine.compile(spec) is spec  # specs pass through
    # The hash-deduped set is pinned by its id-map entry, so repeated calls
    # take the identity fast path instead of recompiling.
    entry = engine._specs_by_id[id(twin)]
    assert entry[0] is twin and entry[1] is spec
    import repro.core.engine as engine_module

    calls = []
    original = engine_module.compile_spec
    engine_module.compile_spec = lambda s: calls.append(s) or original(s)
    try:
        assert engine.compile(twin) is spec
    finally:
        engine_module.compile_spec = original
    assert calls == []  # no recompilation


def test_engine_compile_distinguishes_changed_specs():
    engine = MappingEngine()
    design = UseCaseSet([UseCase("u", flows=_flows())], name="d")
    changed = UseCaseSet(
        [UseCase("u", flows=_flows() + [Flow("d", "a", mbps(1))])], name="d"
    )
    assert engine.compile(design) is not engine.compile(changed)
    assert engine.compile(design).spec_hash != engine.compile(changed).spec_hash


def test_engine_requirement_bundle_cached_per_grouping(figure5_use_cases):
    engine = MappingEngine()
    spec = engine.compile(figure5_use_cases)
    singleton = engine.resolve_groups(spec)
    shared = engine.resolve_groups(spec, groups=[["uc1", "uc2"]])
    bundle = engine.requirements_for(spec, singleton)
    assert engine.requirements_for(spec, singleton) is bundle  # hit
    assert engine.requirements_for(spec, shared) is not bundle  # other grouping
    assert len(bundle.requirements) == 2
    assert len(engine.requirements_for(spec, shared).requirements) == 1


def test_engine_map_matches_direct_mapper_and_caches(figure5_use_cases):
    direct = UnifiedMapper().map(figure5_use_cases)
    engine = MappingEngine()
    first = engine.map(figure5_use_cases)
    assert mapping_fingerprint(first) == mapping_fingerprint(direct)
    assert engine.map(figure5_use_cases) is first  # result cache


def test_engine_with_params_shares_spec_cache(figure5_use_cases):
    engine = MappingEngine()
    spec = engine.compile(figure5_use_cases)
    from repro import NoCParameters
    from repro.units import mhz

    sibling = engine.with_params(params=NoCParameters(frequency_hz=mhz(1000)))
    assert sibling.compile(figure5_use_cases) is spec
    # Different operating point, independent results.
    assert sibling.map(figure5_use_cases).params.frequency_hz == mhz(1000)


def test_engine_worst_case_matches_legacy_construction(figure5_use_cases):
    from repro import build_worst_case_use_case

    engine = MappingEngine()
    via_engine = engine.worst_case(figure5_use_cases)
    worst = build_worst_case_use_case(figure5_use_cases)
    legacy = UnifiedMapper().map(
        UseCaseSet([worst], name="legacy-wc"), method_name="worst_case"
    )
    assert via_engine.method == "worst_case"
    assert mapping_fingerprint(via_engine) == mapping_fingerprint(legacy)
    assert engine.worst_case(figure5_use_cases) is via_engine  # cached


# --------------------------------------------------------------------------- #
# fixed-placement evaluation
# --------------------------------------------------------------------------- #
def test_evaluate_placement_bit_identical_to_general_path():
    import random

    use_cases = generate_benchmark("spread", 5, seed=3)
    mapper = UnifiedMapper()
    result = mapper.map(use_cases)
    engine = MappingEngine(params=result.params, config=result.config)
    spec = engine.compile(use_cases)
    groups = [list(g) for g in result.groups]
    rng = random.Random(5)
    cores = sorted(result.core_mapping)
    placement = dict(result.core_mapping)
    for _ in range(8):
        first, second = rng.sample(cores, 2)
        placement[first], placement[second] = placement[second], placement[first]
        reference = mapper.map_with_placement(
            use_cases, result.topology, placement, groups=groups, validate=False
        )
        fast = engine.evaluate_placement(
            spec, result.topology, placement, groups=groups
        )
        assert mapping_fingerprint(fast) == mapping_fingerprint(reference)
        flat_cost = sum(
            cfg.total_bandwidth_hops() for cfg in reference.configurations.values()
        )
        assert engine.placement_cost(
            spec, result.topology, placement, groups=groups
        ) == flat_cost
        assert fast.cached_communication_cost == flat_cost


def test_evaluate_placement_uses_group_cache(figure5_use_cases):
    result = UnifiedMapper().map(figure5_use_cases)
    engine = MappingEngine(params=result.params, config=result.config)
    spec = engine.compile(figure5_use_cases)
    placement = dict(result.core_mapping)
    engine.evaluate_placement(spec, result.topology, placement)
    cached = len(engine._group_evals)
    engine.evaluate_placement(spec, result.topology, placement)
    assert len(engine._group_evals) == cached  # second call was all hits


def test_evaluate_placement_rejects_overfull_switch(figure5_use_cases):
    from repro import NoCParameters
    from repro.noc.topology import Topology

    params = NoCParameters(max_cores_per_switch=1)
    engine = MappingEngine(params=params)
    spec = engine.compile(figure5_use_cases)
    topology = Topology.mesh(2, 2)
    placement = {"C1": 0, "C2": 0, "C3": 1, "C4": 2}  # violates the NI limit
    with pytest.raises(MappingError):
        engine.evaluate_placement(spec, topology, placement)
    with pytest.raises(MappingError):
        engine.placement_cost(spec, topology, placement)


def test_evaluate_placement_falls_back_on_partial_placement(figure5_use_cases):
    result = UnifiedMapper().map(figure5_use_cases)
    engine = MappingEngine(params=result.params, config=result.config)
    spec = engine.compile(figure5_use_cases)
    partial = dict(result.core_mapping)
    partial.pop("C4")
    outcome = engine.evaluate_placement(spec, result.topology, partial)
    assert "C4" in outcome.core_mapping  # general path placed the rest


# --------------------------------------------------------------------------- #
# refiners and the design flow ride the engine
# --------------------------------------------------------------------------- #
def test_refiners_accept_shared_engine(figure5_use_cases):
    from repro import AnnealingRefiner, NoCParameters, TabuRefiner

    params = NoCParameters(max_cores_per_switch=1)
    initial = UnifiedMapper(params=params).map(figure5_use_cases)
    engine = MappingEngine(params=initial.params, config=initial.config)
    annealed = AnnealingRefiner(iterations=10, seed=1).refine(
        initial, figure5_use_cases, engine=engine
    )
    tabooed = TabuRefiner(iterations=3, neighbours_per_iteration=4).refine(
        initial, figure5_use_cases, engine=engine
    )
    assert annealed.refined_cost <= annealed.initial_cost
    assert tabooed.refined_cost <= tabooed.initial_cost
    assert len(engine._group_evals) > 0  # both refiners fed the shared cache


def test_design_flow_exposes_engine(figure5_use_cases):
    from repro import DesignFlow

    flow = DesignFlow()
    outcome = flow.run(figure5_use_cases)
    assert isinstance(flow.engine, MappingEngine)
    # The flow's mapping is served (and cached) by its engine session.
    assert flow.engine.map(outcome.use_cases,
                           switching_graph=outcome.switching_graph) is outcome.mapping
