"""Property and fuzz coverage for `repro.core.validate.validate_mapping`.

Two directions: every fingerprint-pinned regression result (and refined /
exact results) must validate clean, and targeted mutations of a clean
result — slot collisions, broken path hops, bandwidth overshoots, use of a
downed switch — must each be rejected with the *specific* diagnostic kind,
not merely "something failed".
"""

from __future__ import annotations

import copy
import dataclasses
import random

import pytest

from repro import MappingEngine, UnifiedMapper, generate_benchmark
from repro.core.validate import validate_mapping
from repro.exceptions import VerificationError
from repro.gen import set_top_box_design
from repro.noc.failures import FailureSet
from repro.optimize import AnnealingRefiner

CLEAN_DESIGNS = {
    "set_top_box_4uc": lambda: set_top_box_design(use_case_count=4).use_cases,
    "spread_10uc": lambda: generate_benchmark("spread", 10, seed=3),
    "bottleneck_6uc": lambda: generate_benchmark("bottleneck", 6, seed=7),
}


def mapped(design_name: str):
    use_cases = CLEAN_DESIGNS[design_name]()
    return UnifiedMapper().map(use_cases), use_cases


def gt_allocation_with_links(result):
    """Some allocation that traverses at least one link and reserves slots."""
    for name in sorted(result.configurations):
        for allocation in result.configurations[name]:
            if allocation.hop_count >= 1 and allocation.link_slots:
                return name, allocation
    raise AssertionError("design has no multi-hop GT allocation")


def replace_allocation(result, use_case: str, allocation, **changes):
    """Deep-copied result with one allocation swapped for a mutated clone."""
    mutated = copy.deepcopy(result)
    configuration = mutated.configurations[use_case]
    pair = allocation.flow.pair
    clone = dataclasses.replace(
        configuration._allocations[pair], **changes
    )
    configuration._allocations[pair] = clone
    return mutated


# --------------------------------------------------------------------------- #
# clean results validate clean
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("design_name", sorted(CLEAN_DESIGNS))
def test_regression_results_validate_clean(design_name):
    result, use_cases = mapped(design_name)
    report = validate_mapping(result, use_cases)
    assert report.ok, report.issues
    assert report.kinds == ()
    assert report.checked_allocations == sum(
        len(configuration) for configuration in result.configurations.values()
    )
    report.raise_if_failed()  # must be a no-op


def test_refined_and_exact_results_validate_clean():
    use_cases = generate_benchmark(
        "spread", 4, core_count=8, seed=5, flows_per_use_case=(10, 20)
    )
    engine = MappingEngine()
    heuristic = engine.map(use_cases)
    refined = AnnealingRefiner(iterations=60, seed=2).refine(
        heuristic, use_cases, engine=engine
    )
    assert validate_mapping(refined.refined, use_cases).ok
    from repro.optimize.ilp import exact_mapping

    exact = exact_mapping(use_cases, engine=engine, solver="native")
    assert validate_mapping(exact, use_cases).ok


def test_worst_case_results_validate_clean():
    use_cases = CLEAN_DESIGNS["set_top_box_4uc"]()
    result = MappingEngine().worst_case(use_cases)
    assert validate_mapping(result).ok


# --------------------------------------------------------------------------- #
# targeted mutations: one specific diagnostic each
# --------------------------------------------------------------------------- #
def test_slot_collision_is_detected():
    result, _ = mapped("spread_10uc")
    name, victim = gt_allocation_with_links(result)
    link, slots = sorted(victim.link_slots.items())[0]
    other = next(
        allocation for allocation in result.configurations[name]
        if allocation.flow.pair != victim.flow.pair
    )
    # hand the victim's exact slots on the victim's link to another flow of
    # the same use-case (hence the same configuration group)
    mutated = replace_allocation(
        result, name, other,
        link_slots={**dict(other.link_slots), link: tuple(slots)},
    )
    report = validate_mapping(mutated)
    assert not report.ok
    assert "slot-collision" in report.kinds
    collision = report.issues_of_kind("slot-collision")[0]
    assert str(link) in collision.detail


def test_broken_path_hop_is_detected():
    result, _ = mapped("spread_10uc")
    # teleport mid-path: keep the endpoints, remove the intermediate hops so
    # the remaining jump uses a link that does not exist
    name = victim = None
    for candidate_name in sorted(result.configurations):
        for allocation in result.configurations[candidate_name]:
            path = allocation.switch_path
            if len(path) >= 3 and not result.topology.has_link(path[0], path[-1]):
                name, victim = candidate_name, allocation
                break
        if victim is not None:
            break
    assert victim is not None, "design has no non-adjacent multi-hop flow"
    mutated = replace_allocation(
        result, name, victim, switch_path=(victim.switch_path[0],
                                           victim.switch_path[-1])
    )
    report = validate_mapping(mutated)
    assert not report.ok
    assert "path" in report.kinds
    assert any("missing" in issue.detail for issue in report.issues_of_kind("path"))


def test_bandwidth_overshoot_is_detected():
    result, _ = mapped("spread_10uc")
    name, victim = gt_allocation_with_links(result)
    # strip every slot reservation: the links stay traversed, the GT
    # bandwidth guarantee is gone
    mutated = replace_allocation(
        result, name, victim,
        link_slots={link: () for link in victim.link_slots},
    )
    report = validate_mapping(mutated)
    assert not report.ok
    assert "bandwidth" in report.kinds
    issue = report.issues_of_kind("bandwidth")[0]
    assert issue.use_case == name


def test_downed_switch_use_is_detected():
    result, _ = mapped("spread_10uc")
    mutated = copy.deepcopy(result)
    attached = sorted(set(mutated.core_mapping.values()))[0]
    mutated.topology = mutated.topology.with_failures(
        FailureSet(switches=[attached])
    )
    report = validate_mapping(mutated)
    assert not report.ok
    assert "downed-switch" in report.kinds


def test_foreign_placement_is_detected():
    result, _ = mapped("spread_10uc")
    mutated = copy.deepcopy(result)
    core = sorted(mutated.core_mapping)[0]
    mutated.core_mapping[core] = mutated.topology.switch_count + 5
    report = validate_mapping(mutated)
    assert "placement" in report.kinds
    # the allocations still start at the old switch, so paths break too
    assert "path" in report.kinds


def test_missing_allocation_is_detected():
    result, use_cases = mapped("spread_10uc")
    mutated = copy.deepcopy(result)
    name, victim = gt_allocation_with_links(mutated)
    del mutated.configurations[name]._allocations[victim.flow.pair]
    report = validate_mapping(mutated, use_cases)
    assert "missing" in report.kinds
    # without the original spec the gap is invisible — by design
    assert validate_mapping(mutated).ok


def test_slot_range_violation_is_detected():
    result, _ = mapped("spread_10uc")
    name, victim = gt_allocation_with_links(result)
    link, slots = sorted(victim.link_slots.items())[0]
    bad = dict(victim.link_slots)
    bad[link] = tuple(slots[:-1]) + (result.params.slot_table_size + 3,)
    mutated = replace_allocation(result, name, victim, link_slots=bad)
    report = validate_mapping(mutated)
    assert "slot-range" in report.kinds


def test_raise_if_failed_lists_the_issues():
    result, _ = mapped("spread_10uc")
    mutated = copy.deepcopy(result)
    core = sorted(mutated.core_mapping)[0]
    mutated.core_mapping[core] = -7
    with pytest.raises(VerificationError, match="placement"):
        validate_mapping(mutated).raise_if_failed()


# --------------------------------------------------------------------------- #
# fuzz: random single-field corruption never validates clean
# --------------------------------------------------------------------------- #
def test_random_path_corruptions_are_rejected():
    """Randomly rewiring any multi-hop path must always be caught.

    The mutation keeps slot structures untouched and only perturbs one
    switch index inside one path — the checker has to notice via endpoint
    consistency, link existence or slot/bandwidth mismatch.
    """
    result, _ = mapped("spread_10uc")
    rng = random.Random(20260807)
    candidates = [
        (name, allocation)
        for name in sorted(result.configurations)
        for allocation in result.configurations[name]
        if allocation.hop_count >= 1
    ]
    for _ in range(25):
        name, victim = rng.choice(candidates)
        path = list(victim.switch_path)
        index = rng.randrange(len(path))
        original = path[index]
        path[index] = rng.choice(
            [s for s in range(result.topology.switch_count + 2) if s != original]
        )
        mutated = replace_allocation(
            result, name, victim, switch_path=tuple(path)
        )
        report = validate_mapping(mutated)
        assert not report.ok, (
            f"corrupting hop {index} of {victim.flow.pair} in {name} "
            f"({original} -> {path[index]}) went unnoticed"
        )


def test_validator_needs_no_engine_state():
    """The referee works on a result that crossed a serialisation boundary.

    ``copy.deepcopy`` severs every shared object with the producing mapper;
    validation must rely only on the result's own topology/params payload.
    """
    result, use_cases = mapped("set_top_box_4uc")
    clone = copy.deepcopy(result)
    assert validate_mapping(clone, use_cases).ok
