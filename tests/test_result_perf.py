"""Tests for mapping results, latency bounds, the TDMA simulator and verification."""

import pytest

from repro import (
    ConfigurationError,
    Flow,
    NoCParameters,
    SpecificationError,
    TdmaSimulator,
    UnifiedMapper,
    UseCase,
    UseCaseSet,
    verify_mapping,
)
from repro.core.result import FlowAllocation
from repro.perf.latency import NI_OVERHEAD_CYCLES, latency_hop_budget, worst_case_latency
from repro.units import mbps, mhz, us


# --------------------------------------------------------------------------- #
# result objects
# --------------------------------------------------------------------------- #
def test_flow_allocation_properties():
    flow = Flow("a", "b", mbps(100))
    allocation = FlowAllocation(
        use_case="u1",
        flow=flow,
        switch_path=(0, 1, 3),
        link_slots={(0, 1): (2, 5), (1, 3): (3, 6)},
    )
    assert allocation.hop_count == 2
    assert allocation.slots_per_link == 2
    assert allocation.links == ((0, 1), (1, 3))


def test_configuration_link_and_core_loads(figure5_mapping):
    configuration = figure5_mapping.configuration("uc1")
    egress, ingress = configuration.core_loads()
    assert egress["C3"] == pytest.approx(mbps(100))
    assert ingress["C4"] == pytest.approx(mbps(100))
    assert configuration.total_traffic() == pytest.approx(mbps(185))
    assert configuration.max_access_load() >= mbps(75)


def test_configuration_rejects_duplicate_pairs(figure5_mapping):
    configuration = figure5_mapping.configuration("uc1")
    allocation = configuration.allocation_for("C1", "C2")
    with pytest.raises(SpecificationError):
        configuration.add(allocation)


def test_result_queries(figure5_mapping):
    result = figure5_mapping
    assert set(result.use_case_names) == {"uc1", "uc2"}
    assert result.group_of("uc1") == frozenset({"uc1"})
    with pytest.raises(SpecificationError):
        result.configuration("missing")
    with pytest.raises(SpecificationError):
        result.switch_of("missing")
    switch = result.switch_of("C1")
    assert "C1" in result.cores_on_switch(switch)
    assert 0.0 <= result.max_utilization() <= 1.0
    summary = result.summary()
    assert summary["method"] == "unified"
    assert summary["cores"] == 4


def test_result_max_link_load_consistency(figure5_mapping):
    per_use_case = max(
        figure5_mapping.max_link_load(name) for name in figure5_mapping.use_case_names
    )
    assert figure5_mapping.max_link_load() == pytest.approx(per_use_case)


# --------------------------------------------------------------------------- #
# analytical latency bounds
# --------------------------------------------------------------------------- #
def test_worst_case_latency_same_switch(params):
    assert worst_case_latency(0, 0, params) == pytest.approx(
        NI_OVERHEAD_CYCLES * params.cycle_time
    )


def test_worst_case_latency_decreases_with_more_slots(params):
    one = worst_case_latency(3, 1, params)
    four = worst_case_latency(3, 4, params)
    assert four < one


def test_worst_case_latency_increases_with_hops(params):
    assert worst_case_latency(5, 1, params) > worst_case_latency(2, 1, params)


def test_worst_case_latency_rejects_bad_inputs(params):
    with pytest.raises(ConfigurationError):
        worst_case_latency(-1, 1, params)
    with pytest.raises(ConfigurationError):
        worst_case_latency(3, 0, params)


def test_latency_hop_budget_inverts_bound(params):
    constraint = us(0.1)
    budget = latency_hop_budget(constraint, 1, params)
    assert budget >= 0
    assert worst_case_latency(budget, 1, params) <= constraint
    assert worst_case_latency(budget + 1, 1, params) > constraint


def test_latency_hop_budget_infeasible_constraint(params):
    assert latency_hop_budget(1e-12, 1, params) == -1


def test_latency_hop_budget_rejects_bad_inputs(params):
    with pytest.raises(ConfigurationError):
        latency_hop_budget(0, 1, params)
    with pytest.raises(ConfigurationError):
        latency_hop_budget(us(1), 0, params)


# --------------------------------------------------------------------------- #
# TDMA simulator
# --------------------------------------------------------------------------- #
def test_simulator_delivers_required_bandwidth(figure5_mapping):
    report = TdmaSimulator(figure5_mapping, "uc1").run(frames=64)
    assert report.cycles == 64 * figure5_mapping.params.slot_table_size
    assert report.all_bandwidth_satisfied()
    stats = report.stats_for("C3", "C4")
    assert stats.delivered_bytes > 0
    assert stats.flits_sent > 0
    assert stats.mean_latency_cycles <= stats.max_latency_cycles


def test_simulator_latency_within_analytical_bound(figure5_mapping):
    report = TdmaSimulator(figure5_mapping, "uc2").run(frames=32)
    params = figure5_mapping.params
    for (src, dst), stats in report.flows.items():
        allocation = figure5_mapping.configuration("uc2").allocation_for(src, dst)
        bound = worst_case_latency(
            allocation.hop_count, max(allocation.slots_per_link, 1), params
        )
        # Steady-state flit latency must respect the analytical bound plus the
        # flit accumulation time (one flit worth of bandwidth).
        accumulation = (params.link_width_bits / 8) / stats.required_bandwidth
        assert stats.max_latency_cycles * params.cycle_time <= bound + accumulation + 1e-9


def test_simulator_rejects_bad_inputs(figure5_mapping):
    simulator = TdmaSimulator(figure5_mapping, "uc1")
    with pytest.raises(SpecificationError):
        simulator.run(frames=0)
    report = simulator.run(frames=1)
    with pytest.raises(SpecificationError):
        report.stats_for("zz", "yy")


def test_simulator_unknown_use_case(figure5_mapping):
    with pytest.raises(SpecificationError):
        TdmaSimulator(figure5_mapping, "missing")


# --------------------------------------------------------------------------- #
# verification
# --------------------------------------------------------------------------- #
def test_verification_passes_for_fresh_mapping(figure5_mapping, figure5_use_cases):
    report = verify_mapping(figure5_mapping, figure5_use_cases)
    assert report.passed, [str(v) for v in report.violations]
    assert report.checked_flows == 6


def test_verification_with_simulation(figure5_mapping, figure5_use_cases):
    report = verify_mapping(figure5_mapping, figure5_use_cases, simulate=True, frames=16)
    assert report.passed
    assert report.simulated_use_cases == 2


def test_verification_detects_missing_flow(figure5_mapping, figure5_use_cases):
    extended = UseCase("uc1", flows=[Flow("C1", "C4", mbps(10))])
    tampered = UseCaseSet([extended, figure5_use_cases["uc2"]], name="tampered")
    report = verify_mapping(figure5_mapping, tampered)
    assert not report.passed
    assert report.violations_of_kind("missing")


def test_verification_detects_missing_use_case(figure5_mapping):
    extra = UseCaseSet(
        [UseCase("uc3", flows=[Flow("C1", "C2", mbps(10))])], name="extra"
    )
    report = verify_mapping(figure5_mapping, extra)
    assert not report.passed


def test_verification_detects_latency_violation(figure5_use_cases):
    """Tampering with a latency constraint after mapping is caught."""
    params = NoCParameters(max_cores_per_switch=1, frequency_hz=mhz(100))
    result = UnifiedMapper(params=params).map(figure5_use_cases)
    impossible = UseCase("uc1", flows=[
        Flow("C1", "C2", mbps(10), latency=1e-9),
        Flow("C2", "C3", mbps(75)),
        Flow("C3", "C4", mbps(100)),
    ])
    tampered = UseCaseSet([impossible, figure5_use_cases["uc2"]], name="tampered")
    report = verify_mapping(result, tampered)
    violations = report.violations_of_kind("latency") + report.violations_of_kind("missing")
    assert violations


def test_verified_end_to_end_with_groups(video_use_cases):
    from repro import SwitchingGraph

    graph = SwitchingGraph.from_use_case_set(video_use_cases)
    graph.require_smooth_switching("use-case-1", "use-case-2")
    result = UnifiedMapper().map(video_use_cases, switching_graph=graph)
    # Enough frames for the flit quantisation of low-bandwidth flows to
    # average out (the simulator's tolerance is one flit).
    report = verify_mapping(result, video_use_cases, simulate=True, frames=64)
    assert report.passed, [str(v) for v in report.violations]
