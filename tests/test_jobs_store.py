"""Tests for the engine-state store and store-backed warm starts.

Pins the ISSUE 5 contracts:

* ``EngineStateStore`` round trip: content keys, sharded atomic result
  files, append-only batch-per-line evaluation shards;
* corruption tolerance — truncated/garbage shard content degrades to
  misses with a :class:`StoreCorruptionWarning`, never an error;
* concurrent writers (processes sharing a store) don't collide or lose
  whole-batch appends;
* eviction/compaction keeps a context bounded by ``max_context_entries``;
* ``MappingEngine.export_evaluations()`` / ``import_evaluations()`` with
  the lazy-index, never-re-export discipline;
* the headline acceptance: a warm ``RefineJob`` against a store populated
  by its design-flow/refine siblings performs **zero** fixed-placement
  re-evaluations for previously-seen candidates (``evaluation_misses == 0``
  in ``cache_info()``) with bit-identical, fingerprint-pinned payloads;
* manifest rotation at a size threshold and the ``repro serve --status``
  reader.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro import MappingEngine
from repro.exceptions import ReproError
from repro.gen import generate_benchmark
from repro.io.serialization import mapping_fingerprint, topology_fingerprint
from repro.jobs import (
    DesignFlowJob,
    EngineStateStore,
    JobCache,
    JobDirectoryService,
    JobRunner,
    RefineJob,
    StoreCorruptionWarning,
    UseCaseSource,
    WorstCaseJob,
    inbox_status,
    save_job,
)
from repro.jobs.cli import main as cli_main
from repro.optimize import AnnealingRefiner, TabuRefiner

SPREAD10 = UseCaseSource(generator={"kind": "spread", "use_case_count": 10, "seed": 3})
SPREAD3 = UseCaseSource(
    generator={"kind": "spread", "use_case_count": 3, "core_count": 12, "seed": 1}
)

#: the seed fingerprint of the spread-10 unified mapping (see
#: tests/test_mapping_regression.py) — store-warmed runs must reproduce it
SPREAD10_FINGERPRINT = "fe6d93388377d6e6d578733f2efe5de71e885b8b2f4280ddd634f13a74994a29"


def _entry(index, outcome="0.1:2"):
    return {"group_id": index, "projection": [index, index + 1], "outcome": outcome}


# --------------------------------------------------------------------------- #
# store round trip and layout
# --------------------------------------------------------------------------- #
def test_store_result_round_trip_and_sharding(tmp_path):
    store = EngineStateStore(tmp_path / "store")
    entry = {"spec_hash": "s", "groups": [["a"]], "method": "unified",
             "result": {"params": {}, "config": {}}}
    key = store.result_key("s", [["a"]], "unified", {}, {})
    assert store.get_result(key) is None
    assert store.put_result(key, entry) is True
    # append-only: an existing key is never rewritten
    assert store.put_result(key, {"clobber": True}) is False
    assert store.get_result(key) == entry
    # sharded by key prefix, discoverable
    assert store.result_path(key).parent.name == key[:2]
    assert list(store.result_keys()) == [key]


def test_store_evaluation_append_dedup_and_load(tmp_path):
    store = EngineStateStore(tmp_path / "store")
    context = store.evaluation_context("s", [["a"]], {"name": "t"}, {}, {})
    assert store.load_evaluations(context) == {}
    assert store.append_evaluations(context, [_entry(0), _entry(1)]) == 2
    # duplicate keys are skipped on later appends (first occurrence wins)
    assert store.append_evaluations(
        context, [_entry(1, outcome="9:9"), _entry(2)]
    ) == 1
    loaded = store.load_evaluations(context)
    assert set(loaded) == {(0, (0, 1)), (1, (1, 2)), (2, (2, 3))}
    assert loaded[(1, (1, 2))]["outcome"] == "0.1:2"  # not clobbered
    # two batches -> two append-only lines
    assert len(store.evaluation_path(context).read_text().splitlines()) == 2


def test_store_keys_cover_every_component(tmp_path):
    base = ("s", [["a", "b"]], "unified", {"f": 1.0}, {"k": 2})
    key = EngineStateStore.result_key(*base)
    assert EngineStateStore.result_key("x", *base[1:]) != key
    assert EngineStateStore.result_key(base[0], [["a"]], *base[2:]) != key
    assert EngineStateStore.result_key(*base[:2], "worst", *base[3:]) != key
    assert EngineStateStore.result_key(*base[:3], {"f": 2.0}, base[4]) != key
    assert EngineStateStore.result_key(*base[:4], {"k": 3}) != key
    # grouping order does not matter (groups are canonicalised sorted)
    assert EngineStateStore.result_key(base[0], [["b", "a"]], *base[2:]) == key


# --------------------------------------------------------------------------- #
# corruption tolerance
# --------------------------------------------------------------------------- #
def test_corrupt_result_file_warns_and_misses(tmp_path):
    store = EngineStateStore(tmp_path / "store")
    key = store.result_key("s", [], "unified", {}, {})
    store.put_result(key, {"ok": True})
    store.result_path(key).write_text("{torn json")
    with pytest.warns(StoreCorruptionWarning):
        assert store.get_result(key) is None


def test_corrupt_shard_lines_are_skipped_with_warning(tmp_path):
    store = EngineStateStore(tmp_path / "store")
    context = store.evaluation_context("s", [], {"name": "t"}, {}, {})
    store.append_evaluations(context, [_entry(0)])
    shard = store.evaluation_path(context)
    with shard.open("a") as handle:
        handle.write("not json at all {{{\n")
        handle.write(json.dumps([_entry(1)]) + "\n")
        handle.write(json.dumps([_entry(2)])[:-7])  # torn tail, no newline
    with pytest.warns(StoreCorruptionWarning):
        loaded = store.load_evaluations(context)
    # the good batches survive, the garbage and the torn tail do not
    assert set(loaded) == {(0, (0, 1)), (1, (1, 2))}


def test_malformed_entries_inside_a_batch_are_skipped(tmp_path):
    store = EngineStateStore(tmp_path / "store")
    context = store.evaluation_context("s", [], {"name": "t"}, {}, {})
    shard = store.evaluation_path(context)
    shard.parent.mkdir(parents=True, exist_ok=True)
    shard.write_text(json.dumps(
        [_entry(0), {"group_id": "junk"}, 17, {"projection": [1]}]
    ) + "\n")
    with pytest.warns(StoreCorruptionWarning):
        loaded = store.load_evaluations(context)
    assert set(loaded) == {(0, (0, 1))}


# --------------------------------------------------------------------------- #
# concurrent writers
# --------------------------------------------------------------------------- #
def _append_worker(directory, context, offset, count):
    store = EngineStateStore(directory)
    store.append_evaluations(
        context, [_entry(offset + index) for index in range(count)]
    )


def test_concurrent_writers_do_not_collide(tmp_path):
    directory = tmp_path / "store"
    store = EngineStateStore(directory)
    context = store.evaluation_context("s", [], {"name": "t"}, {}, {})
    workers = [
        multiprocessing.Process(
            target=_append_worker, args=(str(directory), context, offset, 20)
        )
        for offset in (0, 100, 200, 300)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
        assert worker.exitcode == 0
    loaded = store.load_evaluations(context)
    # every batch survived in full: appends are single O_APPEND writes
    assert len(loaded) == 80
    for offset in (0, 100, 200, 300):
        for index in range(20):
            assert (offset + index, (offset + index, offset + index + 1)) in loaded


# --------------------------------------------------------------------------- #
# eviction / compaction
# --------------------------------------------------------------------------- #
def test_overflowing_append_compacts_and_bounds_the_context(tmp_path):
    store = EngineStateStore(tmp_path / "store", max_context_entries=10)
    context = store.evaluation_context("s", [], {"name": "t"}, {}, {})
    assert store.append_evaluations(context, [_entry(i) for i in range(8)]) == 8
    # pushing past the bound folds old + new together and keeps the newest 10
    assert store.append_evaluations(
        context, [_entry(100 + i) for i in range(7)]
    ) == 7
    loaded = store.load_evaluations(context)
    assert len(loaded) == 10
    for index in range(100, 107):  # all the new entries survive
        assert (index, (index, index + 1)) in loaded
    assert (0, (0, 1)) not in loaded  # the oldest were evicted


def test_compact_dedups_and_reports(tmp_path):
    store = EngineStateStore(tmp_path / "store", max_context_entries=5)
    context = store.evaluation_context("s", [], {"name": "t"}, {}, {})
    shard = store.evaluation_path(context)
    shard.parent.mkdir(parents=True, exist_ok=True)
    # hand-written shard with duplicates and more than the bound
    shard.write_text(
        json.dumps([_entry(i) for i in range(8)]) + "\n"
        + json.dumps([_entry(0), _entry(1)]) + "\n"
    )
    stats = store.compact()
    assert stats["contexts"] == 1
    assert stats["entries"] == 5
    assert len(store.load_evaluations(context)) == 5
    assert len(shard.read_text().splitlines()) == 1
    assert store.stats()["evaluations"] == 5


# --------------------------------------------------------------------------- #
# engine evaluation export/import
# --------------------------------------------------------------------------- #
def _refined(engine, design, refiner):
    initial = engine.map(design)
    return refiner.refine(initial, design, engine=engine)


def test_export_import_evaluations_round_trip_bit_identical():
    design = generate_benchmark("spread", 10, seed=3)
    cold = MappingEngine()
    refiner = AnnealingRefiner(iterations=8, seed=0)
    cold_outcome = _refined(cold, design, refiner)
    exported = cold.export_evaluations()
    assert exported, "a refinement run must export evaluation entries"
    document = exported[0]
    assert document["spec_hash"] == cold.compile(design).spec_hash
    assert document["params"] == cold.params.to_dict()
    assert {"groups", "topology", "config", "entries"} <= set(document)

    warm = MappingEngine()
    assert warm.import_evaluations(exported) == len(document["entries"])
    warm.import_results(cold.export_results())
    warm_outcome = _refined(warm, design, refiner)
    info = warm.cache_info()
    assert info["evaluation_misses"] == 0
    assert info["imported_evaluations"] > 0
    assert info["result_misses"] == 0
    assert warm_outcome.refined_cost == cold_outcome.refined_cost
    assert warm_outcome.accepted_moves == cold_outcome.accepted_moves
    assert mapping_fingerprint(warm_outcome.refined) == \
        mapping_fingerprint(cold_outcome.refined)
    # never-re-export: the warm engine exports nothing it merely imported
    assert warm.export_evaluations() == []
    assert warm.export_results() == []
    # importing the same entries again indexes nothing new
    assert warm.import_evaluations(exported) == 0


def test_import_evaluations_skips_other_operating_points():
    design = generate_benchmark("spread", 5, seed=3)
    base = MappingEngine()
    _refined(base, design, TabuRefiner(iterations=4, seed=1))
    exported = base.export_evaluations()
    assert exported

    other = MappingEngine(params=base.params.with_frequency(1e9))
    assert other.import_evaluations(exported) == 0
    # ...but a with_params sibling at the matching point inherits them
    sibling = other.with_params(params=base.params)
    outcome = _refined(sibling, design, TabuRefiner(iterations=4, seed=1))
    assert sibling.cache_info()["imported_evaluations"] > 0
    assert mapping_fingerprint(outcome.refined) == mapping_fingerprint(
        _refined(MappingEngine(), design, TabuRefiner(iterations=4, seed=1)).refined
    )
    # malformed documents are skipped silently
    assert base.import_evaluations([{"junk": 1}, 7, None]) == 0


def test_corrupt_imported_outcome_degrades_to_recomputation():
    design = generate_benchmark("spread", 3, core_count=12, seed=1)
    cold = MappingEngine()
    outcome_cold = _refined(cold, design, AnnealingRefiner(iterations=4, seed=0))
    exported = cold.export_evaluations()
    for document in exported:
        for entry in document["entries"]:
            entry["outcome"] = "not.an|int:junk"
    warm = MappingEngine()
    warm.import_evaluations(exported)
    outcome_warm = _refined(warm, design, AnnealingRefiner(iterations=4, seed=0))
    # nothing imported survives parsing -> everything recomputed, identically
    assert warm.cache_info()["imported_evaluations"] == 0
    assert warm.cache_info()["evaluation_misses"] > 0
    assert mapping_fingerprint(outcome_warm.refined) == \
        mapping_fingerprint(outcome_cold.refined)


def test_topology_fingerprint_is_content_keyed():
    design = generate_benchmark("spread", 3, core_count=12, seed=1)
    first = MappingEngine().map(design)
    second = MappingEngine().map(design)
    assert first.topology is not second.topology
    assert topology_fingerprint(first.topology) == \
        topology_fingerprint(second.topology)


# --------------------------------------------------------------------------- #
# the headline acceptance: warm RefineJob via the runner + store
# --------------------------------------------------------------------------- #
def test_warm_refine_job_performs_zero_candidate_reevaluations(tmp_path):
    cache = tmp_path / "cache"

    # a design-flow job and a longer refine sibling populate the store
    cold_runner = JobRunner(cache_dir=cache, seed_engines=True)
    cold_runner.run(DesignFlowJob(use_cases=SPREAD10))
    cold_refine = cold_runner.run(RefineJob(use_cases=SPREAD10, iterations=12, seed=0))
    assert cold_refine.stats["engine"]["evaluation_misses"] > 0

    # a *shorter* refine sibling (distinct job hash, so not a JobCache hit)
    # walks a strict prefix of the longer run's candidates: every candidate
    # was previously seen, so the warm engine re-evaluates none of them
    warm_runner = JobRunner(cache_dir=cache, seed_engines=True)
    warm = warm_runner.run(RefineJob(use_cases=SPREAD10, iterations=6, seed=0))
    assert warm.cached is False and warm_runner.executed_jobs == 1
    stats = warm.stats["engine"]
    assert stats["evaluation_misses"] == 0
    assert stats["result_misses"] == 0
    assert stats["imported_evaluations"] > 0
    assert stats["imported_results"] >= 1

    # bit-identical to a cold, storeless execution, pinned to the seed
    cold = JobRunner().run(RefineJob(use_cases=SPREAD10, iterations=6, seed=0))
    assert warm.payload == cold.payload
    assert warm.payload["initial_fingerprint"] == SPREAD10_FINGERPRINT
    # and the store-fed envelope does not re-export the imported corpus
    assert warm.engine_results == []


def test_warm_refine_job_over_the_worker_pool(tmp_path):
    cache = tmp_path / "cache"
    runner = JobRunner(cache_dir=cache, seed_engines=True, workers=2)
    runner.run_many([
        DesignFlowJob(use_cases=SPREAD3),
        RefineJob(use_cases=SPREAD3, iterations=8, seed=0),
    ])

    warm = JobRunner(cache_dir=cache, seed_engines=True, workers=2)
    result = warm.run_many([RefineJob(use_cases=SPREAD3, iterations=4, seed=0)])[0]
    stats = result.stats["engine"]
    assert stats["evaluation_misses"] == 0
    assert stats["result_misses"] == 0
    cold = JobRunner().run(RefineJob(use_cases=SPREAD3, iterations=4, seed=0))
    assert result.payload == cold.payload


def test_jobcache_delegates_seed_corpus_to_store(tmp_path):
    cache_dir = tmp_path / "cache"
    JobRunner(cache_dir=cache_dir, seed_engines=True).run(
        WorstCaseJob(use_cases=SPREAD3)
    )
    cache = JobCache(cache_dir)
    assert cache.store.directory == cache_dir / "engine-state"
    assert cache.store.stats()["results"] >= 1
    # seed_engine attaches the store: a fresh engine reads from it keyed
    engine = MappingEngine()
    cache.seed_engine(engine)
    assert engine._store is not None
    # sync_store is idempotent (envelope exports already ingested)
    synced = cache.sync_store()
    assert synced["results"] == 0


def test_sync_store_folds_legacy_envelopes_into_the_store(tmp_path):
    cache_dir = tmp_path / "cache"
    # a writer with seeding off stores envelopes but never touches the store
    JobRunner(cache_dir=cache_dir).run(WorstCaseJob(use_cases=SPREAD3))
    cache = JobCache(cache_dir)
    assert cache.store.stats()["results"] == 0
    assert cache.sync_store()["results"] == 1
    assert cache.store.stats()["results"] == 1


# --------------------------------------------------------------------------- #
# manifest rotation + the --status reader (ROADMAP follow-up (l))
# --------------------------------------------------------------------------- #
def test_manifest_rotates_at_the_size_threshold(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox, manifest_max_bytes=300)
    for index in range(4):
        save_job(WorstCaseJob(use_cases=SPREAD3), inbox / f"job{index}.json")
        service.run_once()
    rotated = sorted(inbox.glob("manifest-*.jsonl"))
    assert rotated, "the manifest must have rotated at least once"
    assert (inbox / "manifest.jsonl").stat().st_size < 300 + 512
    # the full history is recoverable across segments, in order
    records = list(service.manifest_records())
    assert [record["file"] for record in records] == [
        "job0.json", "job1.json", "job2.json", "job3.json",
    ]


def test_inbox_status_aggregates_rotated_history(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox, manifest_max_bytes=300)
    for index in range(3):
        save_job(WorstCaseJob(use_cases=SPREAD3), inbox / f"job{index}.json")
        service.run_once()
    (inbox / "bad.json").write_text('{"kind": "no_such_kind"}')
    service.run_once()
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "waiting.json")

    status = inbox_status(inbox)
    assert status["files"]["pending"] == 1
    assert status["files"]["done"] == 3
    assert status["files"]["failed"] == 1
    assert status["manifest"]["records"] == 4
    assert status["manifest"]["done"] == 3
    assert status["manifest"]["failed"] == 1
    assert status["manifest"]["segments"] >= 2
    assert status["last_record"]["file"] == "bad.json"
    # read-only: nothing was created in or written to the inbox
    assert not (tmp_path / "nowhere").exists()
    with pytest.raises(ReproError):
        inbox_status(tmp_path / "nowhere")
    assert not (tmp_path / "nowhere").exists()


def test_cli_serve_status(tmp_path, capsys):
    inbox = tmp_path / "inbox"
    inbox.mkdir()
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "job.json")
    assert cli_main(["serve", str(inbox), "--once"]) == 0
    capsys.readouterr()

    assert cli_main(["serve", str(inbox), "--status"]) == 0
    out = capsys.readouterr().out
    assert "0 pending" in out and "1 done" in out
    assert "1 record(s) in 1 segment(s)" in out
    # --status never scaffolds a missing inbox
    assert cli_main(["serve", str(tmp_path / "missing"), "--status"]) == 1
    assert not (tmp_path / "missing").exists()
