"""Differential suite for the exact mapping backend (`repro.optimize.ilp`).

A brute-force oracle exhaustively enumerates every core-to-switch
assignment over the engine's own topology growth schedule for tiny specs
(<= 4 cores, <= 3 use-cases) and the exact backend must reproduce it
bit-for-bit: same first-feasible topology, same optimal cost under
``MappingEngine.placement_cost``.  The heuristic, in turn, may never beat
the oracle.  The paper's spread-10 design (reduced to 8 cores so exact
search stays tractable) pins golden gap values.
"""

from __future__ import annotations

import itertools
from collections import Counter

import pytest

from repro import MapperConfig, MappingEngine, NoCParameters, generate_benchmark
from repro.core.validate import validate_mapping
from repro.exceptions import (
    ConfigurationError,
    ExactBackendUnavailable,
    MappingError,
)
from repro.optimize.ilp import (
    EXACT_METHOD_NAME,
    available_solvers,
    exact_mapping,
    solver_invocations,
)

#: golden optimality-gap numbers for the paper's spread-10 design reduced to
#: 8 cores (the full 20-core instance is out of exact reach by construction)
SPREAD10_8CORE = dict(core_count=8, seed=3, flows_per_use_case=(12, 24))
SPREAD10_HEURISTIC_COST = 2142526052.3144546
SPREAD10_EXACT_COST = 1341447659.4337642
SPREAD10_GAP_RELATIVE = 0.597175  # round((h - e) / e, 6)


def tiny_spec(seed: int, use_case_count: int = 3):
    """A 4-core spec small enough to enumerate exhaustively."""
    return generate_benchmark(
        "spread", use_case_count, core_count=4, seed=seed,
        flows_per_use_case=(3, 6),
    )


def tight_engine() -> MappingEngine:
    """Two cores per switch, so optimal placement actually matters."""
    return MappingEngine(params=NoCParameters(max_cores_per_switch=2))


def brute_force_optimum(engine: MappingEngine, use_cases):
    """(topology name, optimal cost) by exhaustive enumeration.

    Walks the same growth schedule as the mapper and the exact backend;
    the first topology with any feasible assignment wins, and its cost is
    the minimum of ``placement_cost`` over all occupancy-respecting
    assignments — the definition the backend must match bit-for-bit.
    """
    spec = engine.compile(use_cases)
    resolved = engine.resolve_groups(spec, None, None)
    cores = sorted(spec.core_names)
    limit = engine.params.max_cores_per_switch
    for topology in engine.mapper._topology_schedule(len(cores)):
        alive = [switch.index for switch in topology.alive_switches]
        best = None
        for assignment in itertools.product(alive, repeat=len(cores)):
            if limit is not None and any(
                count > limit for count in Counter(assignment).values()
            ):
                continue
            placement = dict(zip(cores, assignment))
            try:
                cost = engine.placement_cost(
                    spec, topology, placement, groups=resolved
                )
            except MappingError:
                continue
            if best is None or cost < best:
                best = cost
        if best is not None:
            return topology.name, best
    raise AssertionError("oracle: no feasible topology in the schedule")


def exact_cost_of(engine: MappingEngine, use_cases, result) -> float:
    """The result's cost under the same objective the oracle minimised."""
    spec = engine.compile(use_cases)
    resolved = engine.resolve_groups(spec, None, None)
    return engine.placement_cost(
        spec, result.topology, dict(result.core_mapping), groups=resolved
    )


# --------------------------------------------------------------------------- #
# the differential oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(6))
def test_exact_matches_brute_force_bit_for_bit(seed):
    engine = tight_engine()
    use_cases = tiny_spec(seed)
    oracle_topology, oracle_cost = brute_force_optimum(engine, use_cases)

    result = exact_mapping(use_cases, engine=engine, solver="native")
    assert result.method == EXACT_METHOD_NAME
    assert result.topology.name == oracle_topology
    assert exact_cost_of(engine, use_cases, result) == oracle_cost


def test_exact_matches_brute_force_on_figure5(figure5_use_cases):
    engine = tight_engine()
    oracle_topology, oracle_cost = brute_force_optimum(engine, figure5_use_cases)
    result = exact_mapping(figure5_use_cases, engine=engine, solver="native")
    assert result.topology.name == oracle_topology
    assert exact_cost_of(engine, figure5_use_cases, result) == oracle_cost
    assert validate_mapping(result, figure5_use_cases).ok


@pytest.mark.parametrize("seed", range(6))
def test_heuristic_never_beats_the_oracle(seed):
    engine = tight_engine()
    use_cases = tiny_spec(seed)
    exact = exact_mapping(use_cases, engine=engine, solver="native")
    heuristic = engine.map(use_cases)
    # same growth schedule: the heuristic can stop no earlier than exact
    assert heuristic.switch_count >= exact.switch_count
    if heuristic.topology.name == exact.topology.name:
        assert (
            exact_cost_of(engine, use_cases, heuristic)
            >= exact_cost_of(engine, use_cases, exact)
        )


def test_exact_results_validate_clean():
    engine = tight_engine()
    use_cases = tiny_spec(1)
    result = exact_mapping(use_cases, engine=engine, solver="native")
    report = validate_mapping(result, use_cases)
    assert report.ok, report.issues


# --------------------------------------------------------------------------- #
# golden gap values for the paper's spread-10 design (8-core reduction)
# --------------------------------------------------------------------------- #
def test_spread10_golden_gap():
    use_cases = generate_benchmark("spread", 10, **SPREAD10_8CORE)
    engine = MappingEngine()
    exact = exact_mapping(use_cases, engine=engine, solver="native")
    heuristic = engine.map(use_cases)
    exact_cost = exact_cost_of(engine, use_cases, exact)
    heuristic_cost = exact_cost_of(engine, use_cases, heuristic)
    assert exact_cost == pytest.approx(SPREAD10_EXACT_COST, rel=1e-12)
    assert heuristic_cost == pytest.approx(SPREAD10_HEURISTIC_COST, rel=1e-12)
    assert round((heuristic_cost - exact_cost) / exact_cost, 6) == (
        SPREAD10_GAP_RELATIVE
    )


# --------------------------------------------------------------------------- #
# engine dispatch and solver plumbing
# --------------------------------------------------------------------------- #
def test_engine_dispatches_ilp_backend():
    use_cases = tiny_spec(2)
    exact_engine = MappingEngine(
        params=NoCParameters(max_cores_per_switch=2),
        config=MapperConfig(backend="ilp"),
    )
    via_backend = exact_engine.map(use_cases)
    assert via_backend.method == EXACT_METHOD_NAME
    direct = exact_mapping(
        use_cases, engine=tight_engine(), solver="native"
    )
    assert via_backend.topology.name == direct.topology.name
    assert dict(via_backend.core_mapping) == dict(direct.core_mapping)
    # the second map() call is a pure cache hit: no new solver searches
    before = solver_invocations()
    again = exact_engine.map(use_cases)
    assert solver_invocations() == before
    assert again is via_backend


def test_unknown_backend_and_solver_are_rejected():
    with pytest.raises(ConfigurationError, match="backend"):
        MapperConfig(backend="quantum")
    with pytest.raises(ConfigurationError, match="unknown exact solver"):
        exact_mapping(tiny_spec(0), solver="simplex")


def test_node_limit_bounds_the_search():
    engine = tight_engine()
    with pytest.raises(MappingError, match="node budget"):
        exact_mapping(tiny_spec(0), engine=engine, solver="native", node_limit=1)


def test_infeasible_spec_raises_mapping_error():
    use_cases = tiny_spec(0)
    engine = MappingEngine(
        params=NoCParameters(max_cores_per_switch=1),
        config=MapperConfig(max_switches=1),
    )
    with pytest.raises(MappingError):
        exact_mapping(use_cases, engine=engine, solver="native")


# --------------------------------------------------------------------------- #
# the optional pulp solver (skips cleanly when the dependency is absent)
# --------------------------------------------------------------------------- #
def test_pulp_solver_unavailable_raises_cleanly():
    if "pulp" in available_solvers():
        pytest.skip("pulp is installed in this environment")
    with pytest.raises(ExactBackendUnavailable, match="pulp"):
        exact_mapping(tiny_spec(0), solver="pulp")


@pytest.mark.parametrize("seed", range(3))
def test_pulp_matches_native(seed):
    pytest.importorskip("pulp")
    engine = tight_engine()
    use_cases = tiny_spec(seed)
    native = exact_mapping(use_cases, engine=engine, solver="native")
    via_pulp = exact_mapping(use_cases, engine=tight_engine(), solver="pulp")
    assert via_pulp.topology.name == native.topology.name
    assert exact_cost_of(engine, use_cases, via_pulp) == exact_cost_of(
        engine, use_cases, native
    )
