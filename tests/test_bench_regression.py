"""Unit tests for the wall-time regression harness (benchmarks/bench_regression.py)."""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_regression.py",
)
bench_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_regression)


def _entry(seconds, topology="mesh-2x2", switch_count=4):
    return {
        "median_seconds": seconds,
        "best_seconds": seconds,
        "repeats": 5,
        "topology": topology,
        "switch_count": switch_count,
    }


def test_compare_passes_within_tolerance():
    baseline = {"w": _entry(0.010)}
    current = {"w": _entry(0.012)}
    assert bench_regression.compare(baseline, current, tolerance=0.35) == []


def test_compare_flags_median_regression():
    baseline = {"w": _entry(0.010)}
    current = {"w": _entry(0.020)}
    failures = bench_regression.compare(baseline, current, tolerance=0.35)
    assert len(failures) == 1
    assert "exceeds baseline" in failures[0] and failures[0].startswith("w: best")


def test_compare_flags_changed_mapping_shape():
    baseline = {"w": _entry(0.010)}
    current = {"w": _entry(0.010, topology="mesh-2x3", switch_count=6)}
    failures = bench_regression.compare(baseline, current, tolerance=0.35)
    assert any("topology changed" in failure for failure in failures)
    assert any("switch_count changed" in failure for failure in failures)


def test_compare_flags_missing_workload():
    failures = bench_regression.compare({"w": _entry(0.010)}, {}, tolerance=0.35)
    assert failures == ["w: missing from current run"]


def test_workloads_cover_the_reference_designs():
    assert set(bench_regression.WORKLOADS) == {
        "set_top_box_4uc",
        "spread_10uc",
        "spread_40uc",
        "refine_spread10_annealing",
        "refine_spread10_warm",
        "refine_spread40",
        "spread_mesh8x8",
        "repair_single_link",
        "campaign_mesh8x8",
    }


def test_workloads_are_prepare_run_pairs():
    for prepare, run in bench_regression.WORKLOADS.values():
        assert callable(prepare) and callable(run)


def test_compare_skips_provenance_metadata():
    baseline = {"__meta__": {"python": "3.10.0"}, "w": _entry(0.010)}
    current = {"w": _entry(0.010)}
    assert bench_regression.compare(baseline, current, tolerance=0.35) == []


def test_bench_metadata_records_provenance():
    meta = bench_regression.bench_metadata()
    assert meta["python"].count(".") == 2
    assert meta["platform"]
    # this repo is a git checkout, so the commit resolves to a 40-char sha
    assert meta["git_commit"] is None or len(meta["git_commit"]) == 40
