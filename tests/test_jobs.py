"""Tests for the declarative jobs API: specs, runner, cache and CLI.

Pins the three contracts the ISSUE demands:

* every job kind round-trips ``JobSpec`` ↔ dict ↔ JSON losslessly;
* ``run_many(workers=2)`` is bit-identical to serial execution on the
  spread-10 workload (mapping fingerprints and full payloads);
* a persistent cache hit skips recomputation entirely (verified on the
  runner's execution counter and the cache's hit counter).
"""

from __future__ import annotations

import json

import pytest

from repro import (
    DesignFlowJob,
    FrequencyJob,
    JobRunner,
    MapperConfig,
    NoCParameters,
    PortfolioRefineJob,
    RefineJob,
    SweepJob,
    UnifiedMapper,
    UseCaseSource,
    WorstCaseJob,
    job_from_dict,
    job_hash,
    job_to_dict,
    load_jobs,
    save_job,
)
from repro.core.compound import CompoundModeSpec
from repro.exceptions import (
    ConfigurationError,
    SerializationError,
    SpecificationError,
)
from repro.gen import generate_benchmark
from repro.io.serialization import (
    load_mapping_result,
    mapping_fingerprint,
    mapping_result_from_dict,
    mapping_result_to_dict,
    save_mapping_result,
    save_use_case_set,
    use_case_set_to_dict,
)
from repro.jobs.cli import main as cli_main
from repro.jobs.spec import resolve_job

SPREAD10 = UseCaseSource(generator={"kind": "spread", "use_case_count": 10, "seed": 3})

#: the seed fingerprint of the spread-10 unified mapping (see
#: tests/test_mapping_regression.py) — the jobs API must reproduce it
SPREAD10_FINGERPRINT = "fe6d93388377d6e6d578733f2efe5de71e885b8b2f4280ddd634f13a74994a29"


def every_job_kind():
    """One representative instance of every job kind, with non-default knobs."""
    params = NoCParameters(slot_table_size=16)
    config = MapperConfig(max_switches=64, seed=7)
    return [
        DesignFlowJob(
            use_cases=SPREAD10,
            params=params,
            config=config,
            parallel_modes=(CompoundModeSpec(("spread-1", "spread-2")),),
            smooth_switching=(("spread-3", "spread-4"),),
            verify=False,
        ),
        WorstCaseJob(use_cases=SPREAD10, params=params, config=config),
        RefineJob(use_cases=SPREAD10, method="tabu", iterations=13, seed=5),
        RefineJob(use_cases=SPREAD10, iterations=9, seed=2,
                  initial_temperature=0.25),
        PortfolioRefineJob(use_cases=SPREAD10, method="tabu", iterations=7,
                           seed=4, chains=3, temperature_factor=2.0, workers=2),
        FrequencyJob(
            use_cases=SPREAD10,
            max_switches=9,
            frequencies_mhz=(100.0, 500.0, 1000.0),
            groups=(("spread-1", "spread-2"),),
        ),
        SweepJob(study="use_case_count", benchmark="bottleneck",
                 use_case_counts=(2, 4), core_count=12, seed=2),
        SweepJob(study="ablation_grouping", use_cases=SPREAD10),
    ]


# --------------------------------------------------------------------------- #
# spec serialisation
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("job", every_job_kind(), ids=lambda job: job.KIND)
def test_job_round_trips_through_dict_and_json(job):
    document = job_to_dict(job)
    assert document["kind"] == job.KIND
    rebuilt = job_from_dict(json.loads(json.dumps(document)))
    assert rebuilt == job
    assert job_to_dict(rebuilt) == document


def test_job_file_round_trip(tmp_path):
    job = WorstCaseJob(use_cases=SPREAD10)
    path = save_job(job, tmp_path / "job.json")
    assert load_jobs(path) == [job]


def test_load_jobs_accepts_lists_and_wrappers(tmp_path):
    jobs = [job_to_dict(WorstCaseJob(use_cases=SPREAD10)),
            job_to_dict(FrequencyJob(use_cases=SPREAD10))]
    listed = tmp_path / "list.json"
    listed.write_text(json.dumps(jobs))
    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"jobs": jobs}))
    assert [job.KIND for job in load_jobs(listed)] == ["worst_case", "frequency"]
    assert load_jobs(listed) == load_jobs(wrapped)


def test_unknown_job_kind_rejected():
    with pytest.raises(SerializationError):
        job_from_dict({"kind": "no-such-kind"})


def test_malformed_job_documents_raise_serialization_errors():
    source = {"generator": {"kind": "spread", "use_case_count": 3}}
    # non-integer knob
    with pytest.raises(SerializationError):
        job_from_dict({"kind": "refine", "use_cases": source, "iterations": "many"})
    # parallel-mode entry missing its members
    with pytest.raises(SerializationError):
        job_from_dict({"kind": "design_flow", "use_cases": source,
                       "parallel_modes": [{"name": "broken"}]})
    # missing use-case source
    with pytest.raises(SerializationError):
        job_from_dict({"kind": "worst_case"})


def test_cli_rejects_malformed_job_file_cleanly(tmp_path, capsys):
    job_file = tmp_path / "bad.json"
    job_file.write_text(json.dumps(
        {"kind": "refine",
         "use_cases": {"generator": {"kind": "spread", "use_case_count": 3}},
         "iterations": "many"}
    ))
    assert cli_main(["run", str(job_file)]) == 1
    assert "error:" in capsys.readouterr().err


def test_sweep_job_validates_study_and_design():
    with pytest.raises(SpecificationError):
        SweepJob(study="no-such-study")
    with pytest.raises(SpecificationError):
        SweepJob(study="ablation_grouping")  # needs a use_cases source


def test_use_case_source_is_exclusive():
    with pytest.raises(SpecificationError):
        UseCaseSource()
    with pytest.raises(SpecificationError):
        UseCaseSource(path="x.json", generator={"kind": "spread"})


def test_path_source_resolves_and_hashes_by_content(tmp_path):
    design = generate_benchmark("spread", 3, core_count=12, seed=1)
    path = save_use_case_set(design, tmp_path / "design.json")
    by_path = WorstCaseJob(use_cases=UseCaseSource(path="design.json"))
    by_value = WorstCaseJob(use_cases=UseCaseSource.from_value(design))
    # hashing a path source loads the file: same content => same cache key
    assert job_hash(by_path, base_dir=tmp_path) == job_hash(by_value)
    resolved = resolve_job(by_path, tmp_path)
    assert resolved.use_cases.path is None
    assert resolved.use_cases.inline == use_case_set_to_dict(design)
    # ...and editing the design changes the key
    other = save_use_case_set(generate_benchmark("spread", 4, core_count=12, seed=1), path)
    assert job_hash(by_path, base_dir=tmp_path) != job_hash(by_value)
    assert other == path


# --------------------------------------------------------------------------- #
# params / config serialisation (satellite)
# --------------------------------------------------------------------------- #
def test_noc_parameters_round_trip():
    params = NoCParameters(frequency_hz=7.77e8, slot_table_size=24,
                           max_cores_per_switch=None, topology_kind="torus")
    assert NoCParameters.from_dict(json.loads(json.dumps(params.to_dict()))) == params
    assert NoCParameters.from_dict({"frequency_mhz": 500}) == NoCParameters()
    with pytest.raises(ConfigurationError):
        NoCParameters.from_dict({"frequnecy_hz": 1e8})


def test_mapper_config_round_trip():
    config = MapperConfig(routing_policy="k_shortest", refinement="tabu", seed=11)
    assert MapperConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config
    with pytest.raises(ConfigurationError):
        MapperConfig.from_dict({"max_switchez": 4})


# --------------------------------------------------------------------------- #
# mapping-result round trip (satellite)
# --------------------------------------------------------------------------- #
def test_mapping_result_round_trips_bit_identically(tmp_path):
    result = UnifiedMapper().map(generate_benchmark("spread", 10, seed=3))
    document = json.loads(json.dumps(mapping_result_to_dict(result)))
    rebuilt = mapping_result_from_dict(document)
    assert mapping_fingerprint(rebuilt) == mapping_fingerprint(result)
    assert mapping_fingerprint(result) == SPREAD10_FINGERPRINT
    assert rebuilt.params == result.params
    assert rebuilt.config == result.config
    assert rebuilt.groups == result.groups
    assert rebuilt.core_mapping == result.core_mapping
    # the dictionary form is canonical: serialising the rebuilt result
    # reproduces the document exactly (the persistent cache relies on this)
    assert mapping_result_to_dict(rebuilt) == document

    path = save_mapping_result(result, tmp_path / "result.json")
    assert mapping_fingerprint(load_mapping_result(path)) == mapping_fingerprint(result)


def test_mapping_result_from_legacy_document():
    result = UnifiedMapper().map(generate_benchmark("spread", 5, seed=3))
    document = mapping_result_to_dict(result)
    # documents written before the round trip existed lack these blocks
    for key in ("params", "config", "positions"):
        document.pop(key, None)
    document["topology"].pop("positions", None)
    rebuilt = mapping_result_from_dict(json.loads(json.dumps(document)))
    assert mapping_fingerprint(rebuilt) == mapping_fingerprint(result)


# --------------------------------------------------------------------------- #
# runner: parallel parity and caching
# --------------------------------------------------------------------------- #
def parity_jobs():
    """The spread-10 workload expressed as one job of each mapping kind."""
    return [
        DesignFlowJob(use_cases=SPREAD10),
        WorstCaseJob(use_cases=SPREAD10),
        RefineJob(use_cases=SPREAD10, iterations=15, seed=0),
        FrequencyJob(use_cases=SPREAD10, frequencies_mhz=(100.0, 250.0, 500.0)),
    ]


def test_run_many_parallel_bit_identical_to_serial():
    serial = JobRunner().run_many(parity_jobs(), workers=1)
    parallel = JobRunner().run_many(parity_jobs(), workers=2)
    assert [r.spec_hash for r in serial] == [r.spec_hash for r in parallel]
    for serial_result, parallel_result in zip(serial, parallel):
        assert serial_result.payload == parallel_result.payload
    # the unified mapping of the design-flow job is the seed mapping
    assert serial[0].payload["fingerprint"] == SPREAD10_FINGERPRINT
    fingerprints = [r.payload.get("fingerprint") for r in serial[:3]]
    assert all(fingerprints)
    assert serial[3].payload["required_frequency_mhz"] == 250.0


def test_cache_hit_skips_recomputation(tmp_path):
    cache_dir = tmp_path / "cache"
    jobs = [DesignFlowJob(use_cases=SPREAD10), WorstCaseJob(use_cases=SPREAD10)]

    first = JobRunner(cache_dir=cache_dir)
    cold = first.run_many(jobs)
    assert first.executed_jobs == 2
    assert first.cache.stores == 2
    assert not any(result.cached for result in cold)

    # a different runner (standing in for a different process) re-runs the
    # same specs: zero evaluations, everything answered from disk
    second = JobRunner(cache_dir=cache_dir)
    warm = second.run_many(jobs)
    assert second.executed_jobs == 0
    assert second.cache.hits == 2
    assert all(result.cached for result in warm)
    assert [r.payload for r in warm] == [r.payload for r in cold]
    assert [r.spec_hash for r in warm] == [r.spec_hash for r in cold]

    # duplicate occurrences of a cached spec read the disk entry only once
    third = JobRunner(cache_dir=cache_dir)
    repeated = third.run_many([jobs[0]] * 3)
    assert third.cache.hits == 1
    assert all(result.cached for result in repeated)
    assert repeated[0].payload == repeated[2].payload == cold[0].payload


def test_run_many_deduplicates_identical_specs():
    runner = JobRunner()
    results = runner.run_many([WorstCaseJob(use_cases=SPREAD10)] * 3)
    assert runner.executed_jobs == 1
    assert results[0].payload == results[1].payload == results[2].payload


def test_job_result_envelope_contents():
    result = JobRunner().run(DesignFlowJob(use_cases=SPREAD10))
    assert result.kind == "design_flow"
    assert result.params == NoCParameters().to_dict()
    assert result.config == MapperConfig().to_dict()
    assert result.payload["mapped"] is True
    assert result.payload["verification_passed"] is True
    assert result.stats["engine"]["results"] >= 1
    # the payload's mapping dict loads back into a full result
    rebuilt = mapping_result_from_dict(result.payload["mapping"])
    assert mapping_fingerprint(rebuilt) == result.payload["fingerprint"]


def test_engine_export_results_round_trips():
    from repro import MappingEngine

    engine = MappingEngine()
    result = engine.map(generate_benchmark("spread", 5, seed=3))
    exported = engine.export_results()
    assert len(exported) == 1
    entry = exported[0]
    assert entry["method"] == "unified"
    assert entry["spec_hash"]
    rebuilt = mapping_result_from_dict(json.loads(json.dumps(entry["result"])))
    assert mapping_fingerprint(rebuilt) == mapping_fingerprint(result)


def test_worst_case_failure_is_a_payload_not_an_exception():
    # 40 spread use-cases on a tiny mesh: the WC baseline cannot map (the
    # paper's headline failure mode) — the job reports it instead of raising
    job = WorstCaseJob(
        use_cases=UseCaseSource(generator={"kind": "spread", "use_case_count": 40, "seed": 3}),
        config=MapperConfig(max_switches=4),
    )
    payload = JobRunner().run(job).payload
    assert payload["mapped"] is False
    assert "error" in payload


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def test_cli_run_end_to_end(tmp_path, capsys):
    job_file = save_job(DesignFlowJob(use_cases=SPREAD10), tmp_path / "job.json")
    out_file = tmp_path / "results.json"
    status = cli_main(["run", str(job_file), "--workers", "2",
                       "--cache-dir", str(tmp_path / "cache"), "--out", str(out_file)])
    assert status == 0
    assert out_file.exists()
    envelopes = json.loads(out_file.read_text())
    assert len(envelopes) == 1
    assert envelopes[0]["payload"]["fingerprint"] == SPREAD10_FINGERPRINT
    assert "design_flow" in capsys.readouterr().out

    # second invocation is answered from the cache
    status = cli_main(["run", str(job_file), "--cache-dir", str(tmp_path / "cache")])
    assert status == 0
    assert "cache: 1 hit(s), 0 executed" in capsys.readouterr().out


def test_cli_run_resolves_design_paths_relative_to_job_file(tmp_path):
    design = generate_benchmark("spread", 3, core_count=12, seed=1)
    save_use_case_set(design, tmp_path / "design.json")
    job_file = tmp_path / "job.json"
    job_file.write_text(json.dumps(
        {"kind": "worst_case", "use_cases": {"path": "design.json"}}
    ))
    assert cli_main(["run", str(job_file)]) == 0


def test_cli_sweep_and_worst_case(tmp_path, capsys):
    assert cli_main(["sweep", "--study", "use_case_count", "--counts", "2,5",
                     "--core-count", "12"]) == 0
    assert "normalized_switch_count" in capsys.readouterr().out

    design = generate_benchmark("spread", 3, core_count=12, seed=1)
    design_file = save_use_case_set(design, tmp_path / "design.json")
    assert cli_main(["worst-case", str(design_file)]) == 0
    assert "worst_case" in capsys.readouterr().out


def test_cli_reports_errors_with_exit_one(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    assert cli_main(["run", str(missing)]) == 1
    assert "error:" in capsys.readouterr().err


def one_line_error(capsys) -> str:
    """The captured stderr, asserting the one-line diagnostic contract."""
    err = capsys.readouterr().err
    assert len(err.strip().splitlines()) == 1
    assert err.startswith("error:")
    return err


def test_cli_run_unknown_kind_exits_one_with_one_line_diagnostic(tmp_path, capsys):
    job_file = tmp_path / "bad_kind.json"
    job_file.write_text(json.dumps({"kind": "no_such_kind"}))
    assert cli_main(["run", str(job_file)]) == 1
    assert "unknown job kind" in one_line_error(capsys)


def test_cli_run_non_dict_entry_exits_one(tmp_path, capsys):
    job_file = tmp_path / "nondict.json"
    job_file.write_text("[42]")
    assert cli_main(["run", str(job_file)]) == 1
    assert "must be a mapping" in one_line_error(capsys)


def test_cli_run_bad_generator_recipe_exits_one(tmp_path, capsys):
    # the recipe only explodes at execution time, inside the executor — it
    # must still surface as a one-line diagnostic, not a TypeError traceback
    job_file = tmp_path / "bad_recipe.json"
    job_file.write_text(json.dumps({
        "kind": "worst_case",
        "use_cases": {"generator": {"kind": "spread", "use_case_count": 2,
                                    "bogus_knob": 1}},
    }))
    assert cli_main(["run", str(job_file)]) == 1
    assert "invalid generator recipe" in one_line_error(capsys)


def test_cli_run_missing_out_parent_fails_before_executing(tmp_path, capsys):
    job_file = save_job(DesignFlowJob(use_cases=SPREAD10), tmp_path / "job.json")
    out_file = tmp_path / "no" / "such" / "dir" / "results.json"
    cache_dir = tmp_path / "cache"
    assert cli_main(["run", str(job_file), "--cache-dir", str(cache_dir),
                     "--out", str(out_file)]) == 1
    assert "--out directory" in one_line_error(capsys)
    assert not out_file.exists()
    # the check ran before any job did: nothing was computed or cached
    assert not list(cache_dir.glob("*.json"))
