"""Tests for the use-case data model (cores, flows, use-cases, sets)."""

import pytest
from hypothesis import given, strategies as st

from repro import Core, Flow, UseCase, UseCaseSet, SpecificationError
from repro.core.usecase import TrafficClass, UNCONSTRAINED_LATENCY
from repro.units import mbps, us


# --------------------------------------------------------------------------- #
# Core
# --------------------------------------------------------------------------- #
def test_core_requires_name():
    with pytest.raises(SpecificationError):
        Core("")


def test_core_equality_includes_kind():
    assert Core("cpu") == Core("cpu")
    assert Core("cpu", "memory") != Core("cpu", "processor")


def test_core_str_is_name():
    assert str(Core("mem1")) == "mem1"


# --------------------------------------------------------------------------- #
# Flow
# --------------------------------------------------------------------------- #
def test_flow_defaults():
    flow = Flow("a", "b", mbps(10))
    assert flow.pair == ("a", "b")
    assert flow.latency == UNCONSTRAINED_LATENCY
    assert flow.traffic_class == TrafficClass.GUARANTEED
    assert flow.name == "a->b"


def test_flow_rejects_self_loop():
    with pytest.raises(SpecificationError):
        Flow("a", "a", mbps(10))


@pytest.mark.parametrize("bandwidth", [0, -5, float("nan"), float("inf")])
def test_flow_rejects_bad_bandwidth(bandwidth):
    with pytest.raises(SpecificationError):
        Flow("a", "b", bandwidth)


@pytest.mark.parametrize("latency", [0, -1e-6, float("nan")])
def test_flow_rejects_bad_latency(latency):
    with pytest.raises(SpecificationError):
        Flow("a", "b", mbps(10), latency=latency)


def test_flow_rejects_unknown_traffic_class():
    with pytest.raises(SpecificationError):
        Flow("a", "b", mbps(10), traffic_class="bulk")


def test_flow_scaled_preserves_latency_and_class():
    flow = Flow("a", "b", mbps(10), latency=us(5), traffic_class="BE")
    scaled = flow.scaled(2.0)
    assert scaled.bandwidth == pytest.approx(mbps(20))
    assert scaled.latency == flow.latency
    assert scaled.traffic_class == "BE"


def test_flow_scaled_rejects_non_positive_factor():
    with pytest.raises(SpecificationError):
        Flow("a", "b", mbps(10)).scaled(0)


def test_flow_merge_sums_bandwidth_and_takes_min_latency():
    first = Flow("a", "b", mbps(10), latency=us(100))
    second = Flow("a", "b", mbps(20), latency=us(50))
    merged = first.merged_with(second)
    assert merged.bandwidth == pytest.approx(mbps(30))
    assert merged.latency == pytest.approx(us(50))


def test_flow_merge_gt_wins_over_be():
    gt = Flow("a", "b", mbps(10), traffic_class="GT")
    be = Flow("a", "b", mbps(5), traffic_class="BE")
    assert be.merged_with(gt).traffic_class == "GT"


def test_flow_merge_rejects_different_pairs():
    with pytest.raises(SpecificationError):
        Flow("a", "b", mbps(10)).merged_with(Flow("a", "c", mbps(10)))


@given(
    bw1=st.floats(min_value=1e3, max_value=1e9),
    bw2=st.floats(min_value=1e3, max_value=1e9),
    lat1=st.floats(min_value=1e-9, max_value=1e-2),
    lat2=st.floats(min_value=1e-9, max_value=1e-2),
)
def test_flow_merge_is_commutative(bw1, bw2, lat1, lat2):
    first = Flow("a", "b", bw1, latency=lat1)
    second = Flow("a", "b", bw2, latency=lat2)
    left = first.merged_with(second)
    right = second.merged_with(first)
    assert left.bandwidth == pytest.approx(right.bandwidth)
    assert left.latency == pytest.approx(right.latency)


# --------------------------------------------------------------------------- #
# UseCase
# --------------------------------------------------------------------------- #
def test_use_case_registers_endpoint_cores_implicitly():
    uc = UseCase("video", flows=[Flow("cpu", "mem", mbps(10))])
    assert uc.has_core("cpu") and uc.has_core("mem")
    assert len(uc.cores) == 2


def test_use_case_merges_duplicate_pairs():
    uc = UseCase("video")
    uc.add_flow(Flow("cpu", "mem", mbps(10), latency=us(100)))
    uc.add_flow(Flow("cpu", "mem", mbps(15), latency=us(20)))
    assert len(uc) == 1
    merged = uc.flow_between("cpu", "mem")
    assert merged.bandwidth == pytest.approx(mbps(25))
    assert merged.latency == pytest.approx(us(20))


def test_use_case_rejects_conflicting_core_definition():
    uc = UseCase("video", cores=[Core("mem", "memory")])
    with pytest.raises(SpecificationError):
        uc.add_core(Core("mem", "processor"))


def test_use_case_flow_between_returns_none_for_missing_pair():
    uc = UseCase("video", flows=[Flow("a", "b", mbps(1))])
    assert uc.flow_between("b", "a") is None


def test_use_case_total_and_max_bandwidth():
    uc = UseCase("video", flows=[Flow("a", "b", mbps(10)), Flow("b", "c", mbps(30))])
    assert uc.total_bandwidth() == pytest.approx(mbps(40))
    assert uc.max_bandwidth() == pytest.approx(mbps(30))


def test_use_case_communication_degree():
    uc = UseCase("video", flows=[Flow("a", "b", mbps(1)), Flow("a", "c", mbps(1))])
    degree = uc.communication_degree()
    assert degree["a"] == 2
    assert degree["b"] == 1
    assert degree["c"] == 1


def test_use_case_is_compound_flag():
    plain = UseCase("u1", flows=[Flow("a", "b", mbps(1))])
    compound = UseCase("u12", flows=[Flow("a", "b", mbps(1))], parents=("u1", "u2"))
    assert not plain.is_compound
    assert compound.is_compound


def test_use_case_requires_name():
    with pytest.raises(SpecificationError):
        UseCase("")


# --------------------------------------------------------------------------- #
# UseCaseSet
# --------------------------------------------------------------------------- #
def test_use_case_set_rejects_duplicates():
    uc = UseCase("u1", flows=[Flow("a", "b", mbps(1))])
    other = UseCase("u1", flows=[Flow("a", "c", mbps(1))])
    with pytest.raises(SpecificationError):
        UseCaseSet([uc, other])


def test_use_case_set_lookup_and_contains(figure5_use_cases):
    assert "uc1" in figure5_use_cases
    assert figure5_use_cases["uc1"].name == "uc1"
    with pytest.raises(SpecificationError):
        figure5_use_cases["missing"]


def test_use_case_set_all_cores_union(figure5_use_cases):
    assert set(figure5_use_cases.all_core_names()) == {"C1", "C2", "C3", "C4"}


def test_use_case_set_all_flows_counts(figure5_use_cases):
    assert figure5_use_cases.total_flow_count() == 6
    assert len(figure5_use_cases.all_flows()) == 6


def test_use_case_set_max_flow_bandwidth(figure5_use_cases):
    assert figure5_use_cases.max_flow_bandwidth() == pytest.approx(mbps(100))


def test_use_case_set_validate_empty():
    with pytest.raises(SpecificationError):
        UseCaseSet([]).validate()


def test_use_case_set_validate_conflicting_cores():
    uc1 = UseCase("u1", cores=[Core("mem", "memory")], flows=[Flow("mem", "cpu", mbps(1))])
    uc2 = UseCase("u2", cores=[Core("mem", "processor")], flows=[Flow("mem", "cpu", mbps(1))])
    with pytest.raises(SpecificationError):
        UseCaseSet([uc1, uc2]).validate()


def test_use_case_set_validate_empty_use_case():
    with pytest.raises(SpecificationError):
        UseCaseSet([UseCase("empty")]).validate()


def test_use_case_set_subset(figure5_use_cases):
    subset = figure5_use_cases.subset(["uc2"])
    assert len(subset) == 1
    assert "uc2" in subset and "uc1" not in subset
