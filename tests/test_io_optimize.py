"""Tests for serialisation, export, reports, refinement and parameter objects."""

import json

import pytest

from repro import (
    ConfigurationError,
    DesignFlow,
    CompoundModeSpec,
    MapperConfig,
    NoCParameters,
    SerializationError,
    UnifiedMapper,
    load_use_case_set,
    save_use_case_set,
)
from repro.io import (
    design_to_dict,
    export_design,
    format_rows,
    format_summary,
    mapping_result_to_dict,
    save_mapping_result,
    use_case_set_from_dict,
    use_case_set_to_dict,
)
from repro.optimize import AnnealingRefiner, TabuRefiner, refine_mapping
from repro.optimize.annealing import communication_cost
from repro.units import mbps, mhz


# --------------------------------------------------------------------------- #
# parameter objects
# --------------------------------------------------------------------------- #
def test_noc_parameters_derived_quantities(params):
    assert params.link_capacity == pytest.approx(2e9)
    assert params.slot_bandwidth == pytest.approx(2e9 / params.slot_table_size)
    assert params.cycle_time == pytest.approx(2e-9)
    faster = params.with_frequency(mhz(1000))
    assert faster.link_capacity == pytest.approx(4e9)
    assert params.frequency_hz == mhz(500)  # original unchanged


@pytest.mark.parametrize(
    "kwargs",
    [
        {"frequency_hz": 0},
        {"link_width_bits": 0},
        {"slot_table_size": 0},
        {"max_cores_per_switch": 0},
        {"topology_kind": "hypercube"},
    ],
)
def test_noc_parameters_validation(kwargs):
    with pytest.raises(ConfigurationError):
        NoCParameters(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_switches": 0},
        {"min_switches": 0},
        {"max_switches": 1, "min_switches": 2},
        {"routing_policy": "random"},
        {"max_detour_hops": -1},
        {"max_paths_per_pair": 0},
        {"placement_candidates": 0},
        {"bandwidth_weight": -1},
        {"refinement": "genetic"},
        {"refinement_iterations": -1},
    ],
)
def test_mapper_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        MapperConfig(**kwargs)


# --------------------------------------------------------------------------- #
# serialisation round-trips
# --------------------------------------------------------------------------- #
def test_use_case_set_roundtrip(figure5_use_cases, tmp_path):
    path = save_use_case_set(figure5_use_cases, tmp_path / "design.json")
    loaded = load_use_case_set(path)
    assert loaded.name == figure5_use_cases.name
    assert set(loaded.names) == set(figure5_use_cases.names)
    for name in loaded.names:
        original = figure5_use_cases[name]
        restored = loaded[name]
        assert len(restored) == len(original)
        for flow in original:
            match = restored.flow_between(flow.source, flow.destination)
            assert match is not None
            assert match.bandwidth == pytest.approx(flow.bandwidth)
            assert match.latency == pytest.approx(flow.latency)


def test_use_case_dict_roundtrip_preserves_parents_and_kinds(video_use_cases):
    document = use_case_set_to_dict(video_use_cases)
    text = json.dumps(document)  # must be JSON-serialisable
    restored = use_case_set_from_dict(json.loads(text))
    assert set(restored.all_core_names()) == set(video_use_cases.all_core_names())


def test_use_case_set_from_dict_rejects_malformed_documents():
    with pytest.raises(SerializationError):
        use_case_set_from_dict({"nope": 1})
    with pytest.raises(SerializationError):
        use_case_set_from_dict({"name": "x", "use_cases": [{"flows": []}]})


def test_load_use_case_set_missing_file(tmp_path):
    with pytest.raises(SerializationError):
        load_use_case_set(tmp_path / "missing.json")


def test_mapping_result_serialisation(figure5_mapping, tmp_path):
    document = mapping_result_to_dict(figure5_mapping)
    assert document["method"] == "unified"
    assert document["topology"]["switch_count"] == figure5_mapping.switch_count
    assert set(document["core_mapping"]) == set(figure5_mapping.core_mapping)
    assert set(document["use_cases"]) == set(figure5_mapping.use_case_names)
    path = save_mapping_result(figure5_mapping, tmp_path / "result.json")
    parsed = json.loads(path.read_text())
    assert parsed["parameters"]["frequency_mhz"] == pytest.approx(500.0)


# --------------------------------------------------------------------------- #
# export and reports
# --------------------------------------------------------------------------- #
def test_design_to_dict_structure(figure5_mapping):
    description = design_to_dict(figure5_mapping)
    assert len(description["switches"]) == figure5_mapping.switch_count
    assert len(description["network_interfaces"]) == len(figure5_mapping.core_mapping)
    assert set(description["configurations"]) == set(figure5_mapping.use_case_names)


def test_export_design_text_and_file(figure5_mapping, tmp_path):
    target = tmp_path / "design.netlist"
    text = export_design(figure5_mapping, target)
    assert target.read_text() == text
    assert "switch switch_0" in text
    assert "configuration uc1:" in text
    for core in figure5_mapping.core_mapping:
        assert f"ni ni_{core}" in text


def test_format_rows_renders_table():
    rows = [{"label": "a", "value": 1.5}, {"label": "b", "value": None}]
    text = format_rows(rows, title="demo")
    assert "demo" in text
    assert "n/a" in text
    assert "1.500" in text
    assert format_rows([], title="empty").startswith("empty")


def test_format_summary_renders_nested_dicts():
    text = format_summary({"top": 1, "nested": {"inner": {"x": 2}, "flat": 3.0}},
                          title="headline")
    assert "headline" in text
    assert "x=2" in text
    assert "flat: 3.000" in text


# --------------------------------------------------------------------------- #
# refinement
# --------------------------------------------------------------------------- #
def test_refinement_preserves_feasibility_and_never_worsens(figure5_use_cases):
    params = NoCParameters(max_cores_per_switch=1)
    initial = UnifiedMapper(params=params).map(figure5_use_cases)
    outcome = refine_mapping(initial, figure5_use_cases, iterations=20, seed=1)
    assert outcome.refined_cost <= outcome.initial_cost
    assert outcome.improvement >= 0.0
    assert outcome.refined.switch_count == initial.switch_count
    # The refined mapping still satisfies every constraint.
    from repro import verify_mapping

    assert verify_mapping(outcome.refined, figure5_use_cases).passed


def test_annealing_zero_iterations_is_identity(figure5_mapping, figure5_use_cases):
    outcome = AnnealingRefiner(iterations=0).refine(figure5_mapping, figure5_use_cases)
    assert outcome.refined_cost == outcome.initial_cost
    assert outcome.accepted_moves == 0


def test_tabu_refiner_improves_or_keeps_cost(figure5_use_cases):
    params = NoCParameters(max_cores_per_switch=1)
    initial = UnifiedMapper(params=params).map(figure5_use_cases)
    outcome = TabuRefiner(iterations=5, neighbours_per_iteration=4).refine(
        initial, figure5_use_cases
    )
    assert outcome.refined_cost <= communication_cost(initial)


def test_refiner_configuration_validation():
    with pytest.raises(ConfigurationError):
        AnnealingRefiner(iterations=-1)
    with pytest.raises(ConfigurationError):
        AnnealingRefiner(initial_temperature=0)
    with pytest.raises(ConfigurationError):
        TabuRefiner(neighbours_per_iteration=0)


# --------------------------------------------------------------------------- #
# end-to-end design flow
# --------------------------------------------------------------------------- #
def test_design_flow_end_to_end(figure5_use_cases):
    flow = DesignFlow()
    outcome = flow.run(
        figure5_use_cases,
        parallel_modes=[CompoundModeSpec(["uc1", "uc2"], name="uc1+uc2")],
        smooth_switching=[],
    )
    assert "uc1+uc2" in outcome.use_cases
    assert outcome.generated_compound_modes[0].name == "uc1+uc2"
    # Compound membership forces a shared configuration group.
    assert frozenset({"uc1", "uc2", "uc1+uc2"}) in outcome.groups
    assert outcome.verification is not None and outcome.verification.passed
    summary = outcome.summary()
    assert summary["compound_modes"] == ["uc1+uc2"]
    assert summary["verified"] is True
    # The compound mode's merged flow got an allocation too.
    compound_cfg = outcome.mapping.configuration("uc1+uc2")
    merged = compound_cfg.allocation_for("C3", "C4")
    assert merged is not None
    assert merged.flow.bandwidth == pytest.approx(mbps(152))


def test_design_flow_without_verification(figure5_use_cases):
    outcome = DesignFlow(verify=False).run(figure5_use_cases)
    assert outcome.verification is None
    assert outcome.switch_count >= 1
