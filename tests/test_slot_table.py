"""Tests for TDMA slot tables and pipelined reservations."""

import pytest
from hypothesis import given, strategies as st

from repro import ConfigurationError, ResourceError
from repro.noc.slot_table import (
    SlotTable,
    find_pipelined_slots,
    pipelined_free_mask,
    slots_needed,
    slots_needed_cached,
)


class ReferenceSlotTable:
    """List-based reference model of :class:`SlotTable` (the seed semantics).

    Used by the property tests below to check that the bitmask
    implementation is behaviourally identical to a straightforward
    owner-list implementation under arbitrary operation sequences.
    """

    def __init__(self, size):
        self.size = size
        self.owner = [None] * size

    def reserve(self, flow_id, slots):
        requested = tuple(slots)
        if not requested or len(set(requested)) != len(requested):
            raise ResourceError("bad reservation")
        for slot in requested:
            if self.owner[slot] is not None:
                raise ResourceError("conflict")
        for slot in requested:
            self.owner[slot] = flow_id

    def release_flow(self, flow_id):
        freed = 0
        for idx, owner in enumerate(self.owner):
            if owner == flow_id:
                self.owner[idx] = None
                freed += 1
        return freed

    def free_count(self):
        return sum(1 for owner in self.owner if owner is None)

    def free_slots(self):
        return tuple(idx for idx, owner in enumerate(self.owner) if owner is None)

    def slots_owned_by(self, flow_id):
        return tuple(idx for idx, owner in enumerate(self.owner) if owner == flow_id)

    def find_pipelined(self, tables, needed):
        """Brute-force pipelined search over reference tables."""
        size = tables[0].size
        if needed > size:
            return None
        admissible = [
            start
            for start in range(size)
            if all(
                table.owner[(start + hop) % size] is None
                for hop, table in enumerate(tables)
            )
        ]
        if len(admissible) < needed:
            return None
        return tuple(admissible[:needed])


# --------------------------------------------------------------------------- #
# slots_needed
# --------------------------------------------------------------------------- #
def test_slots_needed_basic():
    # 2 GB/s link, 16 slots -> 125 MB/s per slot.
    assert slots_needed(125e6, 2e9, 16) == 1
    assert slots_needed(126e6, 2e9, 16) == 2
    assert slots_needed(2e9, 2e9, 16) == 16


def test_slots_needed_minimum_one_slot():
    assert slots_needed(1.0, 2e9, 16) == 1


def test_slots_needed_can_exceed_table_size():
    assert slots_needed(4e9, 2e9, 16) == 32


def test_slots_needed_rejects_bad_inputs():
    with pytest.raises(ResourceError):
        slots_needed(0, 2e9, 16)
    with pytest.raises(ResourceError):
        slots_needed(1e6, 0, 16)
    with pytest.raises(ConfigurationError):
        slots_needed(1e6, 2e9, 0)


@given(
    bandwidth=st.floats(min_value=1.0, max_value=4e9),
    slots=st.integers(min_value=1, max_value=256),
)
def test_slots_needed_provides_enough_bandwidth(bandwidth, slots):
    capacity = 2e9
    needed = slots_needed(bandwidth, capacity, slots)
    # The reserved slots always provide at least the requested bandwidth
    # (up to the table size; beyond that the link simply cannot carry it).
    if needed <= slots:
        assert needed * (capacity / slots) >= bandwidth - 1e-6
    assert needed >= 1


# --------------------------------------------------------------------------- #
# SlotTable
# --------------------------------------------------------------------------- #
def test_slot_table_initially_free():
    table = SlotTable(8)
    assert table.size == 8
    assert table.free_count == 8
    assert table.used_count == 0
    assert table.utilization == 0.0
    assert table.free_slots() == tuple(range(8))


def test_slot_table_reserve_and_release():
    table = SlotTable(8)
    reservation = table.reserve("f1", [0, 3])
    assert table.used_count == 2
    assert table.owner_of(0) == "f1"
    assert table.slots_owned_by("f1") == (0, 3)
    table.release(reservation)
    assert table.free_count == 8


def test_slot_table_reserve_conflict_is_atomic():
    table = SlotTable(8)
    table.reserve("f1", [2])
    with pytest.raises(ResourceError):
        table.reserve("f2", [1, 2])
    # Slot 1 must not have been taken by the failed reservation.
    assert table.is_free(1)


def test_slot_table_release_wrong_owner():
    table = SlotTable(8)
    table.reserve("f1", [0])
    stolen = table.reserve("f2", [1])
    table.release(stolen)
    with pytest.raises(ResourceError):
        table.release(stolen)  # double release


def test_slot_table_release_flow():
    table = SlotTable(8)
    table.reserve("f1", [0, 1, 2])
    assert table.release_flow("f1") == 3
    assert table.free_count == 8
    assert table.release_flow("missing") == 0


def test_slot_table_clear_and_copy_independent():
    table = SlotTable(4)
    table.reserve("f1", [0])
    duplicate = table.copy()
    table.clear()
    assert table.free_count == 4
    assert duplicate.owner_of(0) == "f1"


def test_slot_table_occupancy_mapping():
    table = SlotTable(4)
    table.reserve("f1", [1, 3])
    assert table.occupancy() == {1: "f1", 3: "f1"}


def test_slot_table_invalid_index():
    table = SlotTable(4)
    with pytest.raises(ResourceError):
        table.is_free(9)
    with pytest.raises(ResourceError):
        table.reserve("f1", [-1])


def test_slot_table_rejects_zero_size():
    with pytest.raises(ConfigurationError):
        SlotTable(0)


def test_slot_reservation_rejects_duplicates_and_empty():
    table = SlotTable(4)
    with pytest.raises(ResourceError):
        table.reserve("f1", [1, 1])
    with pytest.raises(ResourceError):
        table.reserve("f1", [])


# --------------------------------------------------------------------------- #
# pipelined path search
# --------------------------------------------------------------------------- #
def test_find_pipelined_slots_on_empty_tables():
    tables = [SlotTable(8) for _ in range(3)]
    assert find_pipelined_slots(tables, 2) == (0, 1)


def test_find_pipelined_slots_respects_rotation():
    first, second = SlotTable(4), SlotTable(4)
    # Slot s on the first link implies slot (s+1) mod 4 on the second.
    second.reserve("other", [1])  # blocks start slot 0
    starts = find_pipelined_slots([first, second], 1)
    assert starts is not None
    assert starts[0] != 0


def test_find_pipelined_slots_exhausted():
    first = SlotTable(2)
    second = SlotTable(2)
    first.reserve("a", [0])
    second.reserve("b", [0])  # blocks start 1 (1+1 mod 2 == 0)
    assert find_pipelined_slots([first, second], 1) is None


def test_find_pipelined_slots_demand_exceeding_size():
    tables = [SlotTable(4)]
    assert find_pipelined_slots(tables, 5) is None


def test_find_pipelined_slots_requires_equal_sizes():
    with pytest.raises(ConfigurationError):
        find_pipelined_slots([SlotTable(4), SlotTable(8)], 1)


def test_find_pipelined_slots_rejects_empty_path_and_bad_demand():
    with pytest.raises(ResourceError):
        find_pipelined_slots([], 1)
    with pytest.raises(ResourceError):
        find_pipelined_slots([SlotTable(4)], 0)


def test_slot_table_free_mask_tracks_reservations():
    table = SlotTable(8)
    assert table.free_mask == 0b11111111
    table.reserve("f1", [0, 3])
    assert table.free_mask == 0b11110110
    table.release_flow("f1")
    assert table.free_mask == 0b11111111


def test_slot_table_equality():
    first, second = SlotTable(8), SlotTable(8)
    assert first == second
    first.reserve("f1", [2])
    assert first != second
    second.reserve("f1", [2])
    assert first == second
    second.release_flow("f1")
    second.reserve("f2", [2])  # same free set, different owner
    assert first != second
    assert first != SlotTable(4)
    assert first.__eq__("not a table") is NotImplemented
    duplicate = first.copy()
    assert duplicate == first


def test_pipelined_free_mask_matches_rotation_rule():
    first, second = SlotTable(4), SlotTable(4)
    second.reserve("other", [1])  # blocks start 0 on the second hop
    mask = pipelined_free_mask([first.free_mask, second.free_mask], 4)
    assert mask == 0b1110


def test_slots_needed_cached_matches_uncached():
    assert slots_needed_cached(126e6, 2e9, 16) == slots_needed(126e6, 2e9, 16)
    with pytest.raises(ResourceError):
        slots_needed_cached(0, 2e9, 16)


# --------------------------------------------------------------------------- #
# property tests: bitmask implementation == list-based reference model
# --------------------------------------------------------------------------- #
@given(
    size=st.integers(min_value=1, max_value=64),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["reserve", "release_flow"]),
            st.integers(min_value=0, max_value=7),  # flow id index
            st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=6),
        ),
        max_size=30,
    ),
)
def test_slot_table_matches_reference_model(size, ops):
    table = SlotTable(size)
    reference = ReferenceSlotTable(size)
    for op, flow_index, slots in ops:
        flow_id = f"f{flow_index}"
        if op == "reserve":
            slots = [slot % size for slot in slots]
            outcomes = []
            for model in (table, reference):
                try:
                    model.reserve(flow_id, slots)
                    outcomes.append("ok")
                except ResourceError:
                    outcomes.append("error")
            assert outcomes[0] == outcomes[1]
        else:
            assert table.release_flow(flow_id) == reference.release_flow(flow_id)
        assert table.free_count == reference.free_count()
        assert table.free_slots() == reference.free_slots()
        assert table.slots_owned_by(flow_id) == reference.slots_owned_by(flow_id)
        assert table.used_count == size - reference.free_count()


@given(
    size=st.integers(min_value=2, max_value=32),
    hops=st.integers(min_value=1, max_value=6),
    needed=st.integers(min_value=1, max_value=8),
    blocked=st.lists(st.integers(min_value=0, max_value=31), max_size=12),
)
def test_find_pipelined_slots_matches_reference_search(size, hops, needed, blocked):
    tables = [SlotTable(size) for _ in range(hops)]
    references = [ReferenceSlotTable(size) for _ in range(hops)]
    for index, slot in enumerate(blocked):
        slot = slot % size
        table = tables[index % hops]
        reference = references[index % hops]
        if table.is_free(slot):
            table.reserve(f"blk{index}", [slot])
            reference.reserve(f"blk{index}", [slot])
    expected = references[0].find_pipelined(references, needed)
    assert find_pipelined_slots(tables, needed) == expected


@given(
    size=st.integers(min_value=2, max_value=32),
    hops=st.integers(min_value=1, max_value=6),
    needed=st.integers(min_value=1, max_value=8),
    blocked=st.lists(st.integers(min_value=0, max_value=31), max_size=10),
)
def test_find_pipelined_slots_results_are_actually_free(size, hops, needed, blocked):
    tables = [SlotTable(size) for _ in range(hops)]
    for index, slot in enumerate(blocked):
        table = tables[index % hops]
        slot = slot % size
        if table.is_free(slot):
            table.reserve(f"blk{index}", [slot])
    starts = find_pipelined_slots(tables, needed)
    if starts is None:
        return
    assert len(starts) == needed
    for start in starts:
        for hop, table in enumerate(tables):
            assert table.is_free((start + hop) % size)
