"""Tests for TDMA slot tables and pipelined reservations."""

import pytest
from hypothesis import given, strategies as st

from repro import ConfigurationError, ResourceError
from repro.noc.slot_table import SlotTable, find_pipelined_slots, slots_needed


# --------------------------------------------------------------------------- #
# slots_needed
# --------------------------------------------------------------------------- #
def test_slots_needed_basic():
    # 2 GB/s link, 16 slots -> 125 MB/s per slot.
    assert slots_needed(125e6, 2e9, 16) == 1
    assert slots_needed(126e6, 2e9, 16) == 2
    assert slots_needed(2e9, 2e9, 16) == 16


def test_slots_needed_minimum_one_slot():
    assert slots_needed(1.0, 2e9, 16) == 1


def test_slots_needed_can_exceed_table_size():
    assert slots_needed(4e9, 2e9, 16) == 32


def test_slots_needed_rejects_bad_inputs():
    with pytest.raises(ResourceError):
        slots_needed(0, 2e9, 16)
    with pytest.raises(ResourceError):
        slots_needed(1e6, 0, 16)
    with pytest.raises(ConfigurationError):
        slots_needed(1e6, 2e9, 0)


@given(
    bandwidth=st.floats(min_value=1.0, max_value=4e9),
    slots=st.integers(min_value=1, max_value=256),
)
def test_slots_needed_provides_enough_bandwidth(bandwidth, slots):
    capacity = 2e9
    needed = slots_needed(bandwidth, capacity, slots)
    # The reserved slots always provide at least the requested bandwidth
    # (up to the table size; beyond that the link simply cannot carry it).
    if needed <= slots:
        assert needed * (capacity / slots) >= bandwidth - 1e-6
    assert needed >= 1


# --------------------------------------------------------------------------- #
# SlotTable
# --------------------------------------------------------------------------- #
def test_slot_table_initially_free():
    table = SlotTable(8)
    assert table.size == 8
    assert table.free_count == 8
    assert table.used_count == 0
    assert table.utilization == 0.0
    assert table.free_slots() == tuple(range(8))


def test_slot_table_reserve_and_release():
    table = SlotTable(8)
    reservation = table.reserve("f1", [0, 3])
    assert table.used_count == 2
    assert table.owner_of(0) == "f1"
    assert table.slots_owned_by("f1") == (0, 3)
    table.release(reservation)
    assert table.free_count == 8


def test_slot_table_reserve_conflict_is_atomic():
    table = SlotTable(8)
    table.reserve("f1", [2])
    with pytest.raises(ResourceError):
        table.reserve("f2", [1, 2])
    # Slot 1 must not have been taken by the failed reservation.
    assert table.is_free(1)


def test_slot_table_release_wrong_owner():
    table = SlotTable(8)
    table.reserve("f1", [0])
    stolen = table.reserve("f2", [1])
    table.release(stolen)
    with pytest.raises(ResourceError):
        table.release(stolen)  # double release


def test_slot_table_release_flow():
    table = SlotTable(8)
    table.reserve("f1", [0, 1, 2])
    assert table.release_flow("f1") == 3
    assert table.free_count == 8
    assert table.release_flow("missing") == 0


def test_slot_table_clear_and_copy_independent():
    table = SlotTable(4)
    table.reserve("f1", [0])
    duplicate = table.copy()
    table.clear()
    assert table.free_count == 4
    assert duplicate.owner_of(0) == "f1"


def test_slot_table_occupancy_mapping():
    table = SlotTable(4)
    table.reserve("f1", [1, 3])
    assert table.occupancy() == {1: "f1", 3: "f1"}


def test_slot_table_invalid_index():
    table = SlotTable(4)
    with pytest.raises(ResourceError):
        table.is_free(9)
    with pytest.raises(ResourceError):
        table.reserve("f1", [-1])


def test_slot_table_rejects_zero_size():
    with pytest.raises(ConfigurationError):
        SlotTable(0)


def test_slot_reservation_rejects_duplicates_and_empty():
    table = SlotTable(4)
    with pytest.raises(ResourceError):
        table.reserve("f1", [1, 1])
    with pytest.raises(ResourceError):
        table.reserve("f1", [])


# --------------------------------------------------------------------------- #
# pipelined path search
# --------------------------------------------------------------------------- #
def test_find_pipelined_slots_on_empty_tables():
    tables = [SlotTable(8) for _ in range(3)]
    assert find_pipelined_slots(tables, 2) == (0, 1)


def test_find_pipelined_slots_respects_rotation():
    first, second = SlotTable(4), SlotTable(4)
    # Slot s on the first link implies slot (s+1) mod 4 on the second.
    second.reserve("other", [1])  # blocks start slot 0
    starts = find_pipelined_slots([first, second], 1)
    assert starts is not None
    assert starts[0] != 0


def test_find_pipelined_slots_exhausted():
    first = SlotTable(2)
    second = SlotTable(2)
    first.reserve("a", [0])
    second.reserve("b", [0])  # blocks start 1 (1+1 mod 2 == 0)
    assert find_pipelined_slots([first, second], 1) is None


def test_find_pipelined_slots_demand_exceeding_size():
    tables = [SlotTable(4)]
    assert find_pipelined_slots(tables, 5) is None


def test_find_pipelined_slots_requires_equal_sizes():
    with pytest.raises(ConfigurationError):
        find_pipelined_slots([SlotTable(4), SlotTable(8)], 1)


def test_find_pipelined_slots_rejects_empty_path_and_bad_demand():
    with pytest.raises(ResourceError):
        find_pipelined_slots([], 1)
    with pytest.raises(ResourceError):
        find_pipelined_slots([SlotTable(4)], 0)


@given(
    size=st.integers(min_value=2, max_value=32),
    hops=st.integers(min_value=1, max_value=6),
    needed=st.integers(min_value=1, max_value=8),
    blocked=st.lists(st.integers(min_value=0, max_value=31), max_size=10),
)
def test_find_pipelined_slots_results_are_actually_free(size, hops, needed, blocked):
    tables = [SlotTable(size) for _ in range(hops)]
    for index, slot in enumerate(blocked):
        table = tables[index % hops]
        slot = slot % size
        if table.is_free(slot):
            table.reserve(f"blk{index}", [slot])
    starts = find_pipelined_slots(tables, needed)
    if starts is None:
        return
    assert len(starts) == needed
    for start in starts:
        for hop, table in enumerate(tables):
            assert table.is_free((start + hop) % size)
