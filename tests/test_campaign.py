"""Tests for the campaign subsystem (spec, runner, reduction, CLI).

Pins the contracts the ISSUE demands:

* :class:`CampaignSpec` round-trips losslessly through JSON — randomized
  specs survive ``to_dict -> from_dict -> to_dict`` unchanged and hash
  identically — and a golden ``campaign_hash`` guards the document format
  against accidental drift;
* **resumability** — a crash-interrupted campaign run (``max_cells``)
  resumed later re-executes **zero** completed cells, asserted on the
  runner's executed-job counter, not just the summary;
* **determinism** — two runs of the same campaign in fresh directories
  produce byte-identical ``report.json`` digests;
* the farm path — ``submit`` into a ``repro serve`` inbox, drain, then
  ``collect`` settles every cell without local execution;
* the CLI error contract — malformed campaign specs die with a one-line
  ``error:`` diagnostic and exit status 1, never a traceback.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.campaign import (
    CampaignMethod,
    CampaignRunner,
    CampaignSpec,
    CampaignWorkload,
    ParameterSet,
    campaign_hash,
    load_campaign,
    mapping_cost,
    save_campaign,
)
from repro.exceptions import SerializationError, SpecificationError
from repro.gen import recipe_names
from repro.jobs.cli import main as cli_main

TINY = {"kind": "spread", "use_case_count": 2, "core_count": 12, "seed": 1}

#: the document whose hash is pinned below — changing the campaign
#: serialization format (field names, default axes, seed handling) breaks
#: this on purpose: bump it consciously, it re-keys every trajectory
GOLDEN_DOC = {
    "name": "smoke",
    "workloads": [
        {"label": "tiny",
         "generator": {"kind": "spread", "use_case_count": 2, "seed": 3}},
    ],
    "methods": [
        {"label": "flow", "kind": "design_flow"},
        {"label": "anneal50", "kind": "refine", "knobs": {"iterations": 50}},
    ],
}
GOLDEN_HASH = "263d02f599598bf8e3db100caff819df026188c4ea93517e6582cb0fbf1dc2e9"


def tiny_campaign(methods=None, **overrides) -> CampaignSpec:
    document = {
        "name": "tiny-study",
        "workloads": [{"label": "tiny", "generator": TINY}],
        "methods": methods or [
            {"label": "flow", "kind": "design_flow"},
            {"label": "anneal", "kind": "refine", "knobs": {"iterations": 30}},
        ],
    }
    document.update(overrides)
    return CampaignSpec.from_dict(document)


# --------------------------------------------------------------------------- #
# spec round-trip and hashing
# --------------------------------------------------------------------------- #
def test_campaign_golden_hash():
    assert campaign_hash(CampaignSpec.from_dict(GOLDEN_DOC)) == GOLDEN_HASH


def test_campaign_roundtrip_randomized():
    rng = random.Random(20060306)
    kinds = {
        "design_flow": {},
        "worst_case": {},
        "refine": {"iterations": 25, "method": "tabu"},
        "portfolio_refine": {"chains": 2, "iterations": 20},
        "repair": {"failures": {"links": [[0, 1]], "switches": []}},
    }
    for _ in range(25):
        workloads = [
            {"label": f"w{index}",
             "generator": dict(TINY, seed=rng.randrange(100)),
             "mesh": rng.choice([None, [2, 2], [3, 3]])}
            for index in range(rng.randint(1, 3))
        ]
        picked = rng.sample(sorted(kinds), rng.randint(1, len(kinds)))
        methods = [
            {"label": f"m{index}", "kind": kind, "knobs": kinds[kind]}
            for index, kind in enumerate(picked)
        ]
        psets = [
            {"label": f"p{index}",
             "params": rng.choice([{}, {"frequency_hz": 400e6}]),
             "config": {}}
            for index in range(rng.randint(1, 2))
        ]
        seeds = rng.sample(range(50), rng.randint(0, 3))
        spec = CampaignSpec.from_dict({
            "name": "randomized", "workloads": workloads,
            "methods": methods, "parameter_sets": psets, "seeds": seeds,
        })
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        assert campaign_hash(rebuilt) == campaign_hash(spec)
        assert len(spec.expand()) == spec.cell_count()


def test_campaign_save_load_roundtrip(tmp_path):
    spec = tiny_campaign()
    path = save_campaign(spec, tmp_path / "study.json")
    assert campaign_hash(load_campaign(path)) == campaign_hash(spec)


def test_campaign_recipe_resolution():
    workload = CampaignWorkload.from_dict({"recipe": "mesh4x4_spread24"})
    assert workload.label == "mesh4x4_spread24"
    assert workload.mesh == (4, 4)
    assert workload.generator["core_count"] == 16
    # overrides merge into the recipe's generator without renaming it
    seeded = CampaignWorkload.from_dict(
        {"recipe": "mesh4x4_spread24", "generator": {"seed": 9}, "mesh": [5, 5]}
    )
    assert seeded.generator["seed"] == 9
    assert seeded.mesh == (5, 5)
    assert "mesh16x16_spread200" in recipe_names()
    with pytest.raises(SpecificationError):
        CampaignWorkload.from_dict({"recipe": "no_such_recipe"})


def test_campaign_expand_forces_workload_mesh():
    spec = tiny_campaign(
        workloads=[{"label": "w", "generator": TINY, "mesh": [3, 3]}],
        methods=[
            {"label": "anneal", "kind": "refine", "knobs": {"iterations": 10}},
            {"label": "chains", "kind": "portfolio_refine",
             "knobs": {"chains": 2, "iterations": 10}},
            {"label": "flow", "kind": "design_flow"},
        ],
    )
    jobs = {cell.method: cell.job for cell in spec.expand()}
    assert jobs["anneal"].mesh == (3, 3)
    assert jobs["chains"].mesh == (3, 3)
    assert not hasattr(jobs["flow"], "mesh")


def test_campaign_validation_errors():
    with pytest.raises(SerializationError):
        CampaignSpec.from_dict({"broken": True})
    with pytest.raises(SerializationError):
        CampaignSpec.from_dict("not a mapping")
    with pytest.raises(SpecificationError):
        tiny_campaign(methods=[{"label": "m", "kind": "no_such_kind"}])
    with pytest.raises(SpecificationError):
        tiny_campaign(methods=[
            {"label": "m", "kind": "refine", "knobs": {"bogus_knob": 1}}
        ])
    with pytest.raises(SpecificationError):
        # repair without a failures knob
        tiny_campaign(methods=[{"label": "m", "kind": "repair"}])
    with pytest.raises(SpecificationError):
        # duplicate labels on an axis
        tiny_campaign(methods=[
            {"label": "m", "kind": "design_flow"},
            {"label": "m", "kind": "worst_case"},
        ])
    with pytest.raises(SpecificationError):
        tiny_campaign(seeds=[1, 1])
    with pytest.raises(SerializationError):
        # '|' would corrupt cell ids
        tiny_campaign(methods=[{"label": "a|b", "kind": "design_flow"}])
    with pytest.raises(SpecificationError):
        # parameter-set typos fail at load time, not mid-campaign
        tiny_campaign(parameter_sets=[
            {"label": "p", "params": {"no_such_param": 1}}
        ])


# --------------------------------------------------------------------------- #
# the runner: resume and determinism
# --------------------------------------------------------------------------- #
def test_campaign_run_reduces_into_ranked_report(tmp_path):
    spec = tiny_campaign()
    runner = CampaignRunner(tmp_path / "camp")
    summary = runner.run(spec)
    assert summary["executed"] == 2 and summary["resumed"] == 0
    report = json.loads((tmp_path / "camp" / "report.json").read_text())
    assert report["totals"] == {
        "cells": 2, "completed": 2, "missing": 0,
        "schedulable": 2, "unschedulable": 0,
    }
    ranked = report["rankings"]["tiny|base"]
    assert [entry["rank"] for entry in ranked] == [1, 2]
    assert ranked[0]["cost"] <= ranked[1]["cost"]
    # the refined mapping strictly beats or ties the plain flow, and the
    # win matrix agrees with the ranking
    wins = report["win_matrix"]
    assert wins["anneal"]["flow"] + wins["flow"]["anneal"] <= 1
    assert report["best_known"]["tiny"]["cost"] == ranked[0]["cost"]
    # volatile fields never reach report.json
    assert "elapsed_s" not in report["cells"][0]
    assert "cached" not in report["cells"][0]
    # ... but the digest and trajectory carry the wall-clock
    assert "wallclock" in (tmp_path / "camp" / "report.md").read_text()
    trajectory = [
        json.loads(line) for line in
        (tmp_path / "camp" / "trajectory.jsonl").read_text().splitlines()
    ]
    assert len(trajectory) == 1
    assert trajectory[0]["campaign_hash"] == campaign_hash(spec)
    assert trajectory[0]["wallclock_s"] >= 0


def test_campaign_resume_executes_zero_completed_cells(tmp_path):
    spec = tiny_campaign(seeds=[1, 2])  # 4 cells
    camp = tmp_path / "camp"

    # "crash" after two cells: the slice stops mid-campaign, no report yet
    first = CampaignRunner(camp).run(spec, max_cells=2)
    assert first["executed"] == 2 and first["pending"] == 2
    assert not (camp / "report.json").exists()

    # the resumed run executes only what the crash left behind...
    resumed = CampaignRunner(camp).run(spec)
    assert resumed["executed"] == 2 and resumed["resumed"] == 2
    assert (camp / "report.json").exists()

    # ...and a third run executes nothing at all, pinned below the summary
    # by counting actual job executions through the runner's own cache
    import repro.jobs.runner as jobs_runner

    calls = []
    original = jobs_runner.JobRunner.run_many

    def counting_run_many(self, jobs):
        calls.append(len(jobs))
        return original(self, jobs)

    jobs_runner.JobRunner.run_many = counting_run_many
    try:
        third = CampaignRunner(camp).run(spec)
    finally:
        jobs_runner.JobRunner.run_many = original
    assert third["executed"] == 0 and third["resumed"] == 4
    assert calls == []  # no batch ever reached the job layer


def test_campaign_reports_are_byte_identical_across_runs(tmp_path):
    spec = tiny_campaign(seeds=[7])
    CampaignRunner(tmp_path / "one").run(spec)
    CampaignRunner(tmp_path / "two", workers=2).run(spec)
    first = (tmp_path / "one" / "report.json").read_bytes()
    second = (tmp_path / "two" / "report.json").read_bytes()
    assert first == second


def test_campaign_status_and_partial_report(tmp_path):
    spec = tiny_campaign()
    runner = CampaignRunner(tmp_path / "camp")
    runner.run(spec, max_cells=1)
    status = runner.status(spec)
    assert status["done"] == 1 and status["pending"] == 1
    assert len(status["pending_cells"]) == 1
    # a partial reduction names the missing cells and skips the trajectory
    outcome = runner.reduce(spec)
    assert outcome["missing"] == 1
    report = json.loads((tmp_path / "camp" / "report.json").read_text())
    assert report["missing_cells"] == status["pending_cells"]
    assert not runner.trajectory_path.exists()


def test_mapping_cost_is_bandwidth_weighted_hops():
    mapping = {"use_cases": {
        "b": [{"bandwidth_mbps": 10.0, "path": [0, 1, 2]}],
        "a": [{"bandwidth_mbps": 5.0, "path": [3, 0]},
              {"bandwidth_mbps": 1.0, "path": [2]}],
    }}
    # 10*2 + 5*1 + 1*0, independent of dict order
    assert mapping_cost(mapping) == 25.0
    assert mapping_cost({}) == 0.0


# --------------------------------------------------------------------------- #
# the farm path: submit / collect against a serve inbox
# --------------------------------------------------------------------------- #
def test_campaign_submit_collect_roundtrip(tmp_path):
    from repro.jobs.service import JobDirectoryService

    spec = tiny_campaign()
    runner = CampaignRunner(tmp_path / "camp")
    inbox = tmp_path / "inbox"

    submitted = runner.submit(spec, inbox)
    assert len(submitted) == 2
    # resubmitting an unchanged campaign recreates the same file names
    assert runner.submit(spec, inbox) == submitted

    JobDirectoryService(inbox, cache_dir=tmp_path / "cache").run_once()
    folded = runner.collect(spec, inbox)
    assert folded == {"collected": 2, "pending": 0}

    # every cell settled from the farm: the local run executes nothing
    summary = runner.run(spec)
    assert summary["executed"] == 0 and summary["resumed"] == 2
    assert (tmp_path / "camp" / "report.json").exists()


def test_campaign_collect_requires_an_inbox(tmp_path):
    from repro.exceptions import ReproError

    with pytest.raises(ReproError):
        CampaignRunner(tmp_path / "camp").collect(tiny_campaign(), tmp_path)


# --------------------------------------------------------------------------- #
# the CLI front door
# --------------------------------------------------------------------------- #
def test_cli_campaign_run_status_report(tmp_path, capsys):
    path = save_campaign(tiny_campaign(), tmp_path / "study.json")

    assert cli_main(["campaign", "status", str(path)]) == 0
    assert "0/2 cell(s) settled" in capsys.readouterr().out

    assert cli_main(["campaign", "run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "executed 2 cell(s), resumed 0" in out
    assert "trajectory +1 line" in out
    campaign_dir = tmp_path / "study.campaign"
    assert (campaign_dir / "report.json").exists()

    # the resumed CLI run executes zero cells
    assert cli_main(["campaign", "run", str(path)]) == 0
    assert "executed 0 cell(s), resumed 2" in capsys.readouterr().out

    assert cli_main(["campaign", "report", str(path)]) == 0
    assert "report " in capsys.readouterr().out


def test_cli_campaign_malformed_spec_is_one_line_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x"}')  # no axes
    assert cli_main(["campaign", "run", str(bad)]) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "Traceback" not in captured.err

    bad.write_text("{not json")
    assert cli_main(["campaign", "status", str(bad)]) == 1
    assert capsys.readouterr().err.startswith("error:")

    assert cli_main(["campaign", "run", str(tmp_path / "missing.json")]) == 1
    assert capsys.readouterr().err.startswith("error:")


def test_cli_error_paths_are_consistent(tmp_path, capsys):
    """campaign / refine / gap / failures share the one-line diagnostic shape."""
    bad = tmp_path / "bad_design.json"
    bad.write_text("{torn")
    for argv in (
        ["campaign", "run", str(bad)],
        ["refine", str(bad)],
        ["gap", str(bad)],
        ["failures", str(bad)],
        ["worst-case", str(bad)],
    ):
        assert cli_main(argv) == 1, argv
        captured = capsys.readouterr()
        assert captured.err.startswith("error:"), argv
        assert len(captured.err.strip().splitlines()) == 1, argv
