"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import (
    Core,
    Flow,
    MapperConfig,
    NoCParameters,
    UnifiedMapper,
    UseCase,
    UseCaseSet,
)
from repro.ops.clock import FakeClock
from repro.units import mbps, us

_FAULT_ENV_PREFIX = "REPRO_FAULT_"


@pytest.fixture(autouse=True)
def _scoped_fault_env():
    """Keep ``REPRO_FAULT_*`` knobs from leaking between tests.

    ``FaultInjector.from_env`` reads the fault-injection environment at
    service construction time, and a test whose forked child is reaped on a
    timeout can leave the variables exported for every test that follows.
    Snapshot-and-clear them before each test and scrub-and-restore after,
    so each test sees exactly the fault environment it set itself.
    """
    snapshot = {
        key: value for key, value in os.environ.items()
        if key.startswith(_FAULT_ENV_PREFIX)
    }
    for key in snapshot:
        del os.environ[key]
    yield
    for key in [key for key in os.environ if key.startswith(_FAULT_ENV_PREFIX)]:
        del os.environ[key]
    os.environ.update(snapshot)


@pytest.fixture
def fake_clock() -> FakeClock:
    """Virtual time: ``sleep`` returns instantly and records its durations.

    Inject into :class:`repro.ops.Monitor` or
    :class:`repro.jobs.JobDirectoryService` (``clock=fake_clock``) so poll
    loops, retry backoff and injected hangs run without real sleeping.
    """
    return FakeClock()


@pytest.fixture
def params() -> NoCParameters:
    """The paper's reference operating point (500 MHz, 32-bit links)."""
    return NoCParameters()


@pytest.fixture
def config() -> MapperConfig:
    """Default mapper configuration."""
    return MapperConfig()


@pytest.fixture
def figure5_use_cases() -> UseCaseSet:
    """The small 4-core, 2-use-case example of the paper's Figure 5."""
    uc1 = UseCase(
        "uc1",
        flows=[
            Flow("C1", "C2", mbps(10)),
            Flow("C2", "C3", mbps(75)),
            Flow("C3", "C4", mbps(100)),
        ],
    )
    uc2 = UseCase(
        "uc2",
        flows=[
            Flow("C1", "C2", mbps(42)),
            Flow("C2", "C3", mbps(11)),
            Flow("C3", "C4", mbps(52)),
        ],
    )
    return UseCaseSet([uc1, uc2], name="figure5")


@pytest.fixture
def video_use_cases() -> UseCaseSet:
    """The two filter-pipeline use-cases of the paper's Figure 2."""
    uc1 = UseCase(
        "use-case-1",
        flows=[
            Flow("input", "filter 1", mbps(100)),
            Flow("filter 1", "mem1", mbps(50)),
            Flow("mem1", "filter 2", mbps(50)),
            Flow("filter 2", "mem2", mbps(200)),
            Flow("mem2", "filter 3", mbps(150)),
            Flow("filter 3", "output", mbps(100)),
            Flow("filter 1", "filter 3", mbps(50)),
        ],
    )
    uc2 = UseCase(
        "use-case-2",
        flows=[
            Flow("input", "filter 1", mbps(100)),
            Flow("filter 1", "mem1", mbps(50)),
            Flow("mem1", "filter 2", mbps(50)),
            Flow("filter 2", "mem2", mbps(50)),
            Flow("mem2", "filter 3", mbps(200)),
            Flow("filter 3", "output", mbps(150)),
            Flow("filter 1", "filter 3", mbps(50)),
            Flow("filter 2", "filter 3", mbps(50)),
        ],
    )
    return UseCaseSet([uc1, uc2], name="figure2")


@pytest.fixture
def heavy_core_use_case() -> UseCaseSet:
    """A use-case whose hub core needs most of one NI link's capacity."""
    flows = [Flow(f"src{i}", "hub", mbps(300), latency=us(500)) for i in range(6)]
    return UseCaseSet([UseCase("heavy", flows=flows)], name="heavy")


@pytest.fixture
def figure5_mapping(figure5_use_cases, params, config):
    """A mapping of the Figure 5 example with the default configuration."""
    return UnifiedMapper(params=params, config=config).map(figure5_use_cases)
