"""Tests for the job-directory service and cache-seeded engines.

Pins the contracts the ISSUE demands:

* the ``inbox/ -> running/ -> done/|failed/`` lifecycle with per-file
  result envelopes and a rolling ``manifest.jsonl``;
* crash-safe resume — files stranded in ``running/`` are re-queued;
* warm/cold equivalence — a ``--once`` serve run over a warm cache is
  bit-identical to the cold run (pinned fingerprints) with zero executions;
* ROADMAP follow-up (h) — ``JobCache.seed_engine`` /
  ``MappingEngine.import_results``: a refine or frequency job whose initial
  mapping an earlier design-flow job computed performs **zero** mapping
  re-evaluations (asserted on the engine's ``cache_info()`` counters).
"""

from __future__ import annotations

import json
import os

import pytest

from repro import MappingEngine
from repro.gen import generate_benchmark
from repro.jobs import (
    DesignFlowJob,
    FrequencyJob,
    JobCache,
    JobDirectoryService,
    JobRunner,
    RefineJob,
    UseCaseSource,
    WorstCaseJob,
    save_job,
)
from repro.jobs.cli import main as cli_main

SPREAD10 = UseCaseSource(generator={"kind": "spread", "use_case_count": 10, "seed": 3})
SPREAD3 = UseCaseSource(
    generator={"kind": "spread", "use_case_count": 3, "core_count": 12, "seed": 1}
)

#: the seed fingerprint of the spread-10 unified mapping (see
#: tests/test_mapping_regression.py) — serve runs must reproduce it
SPREAD10_FINGERPRINT = "fe6d93388377d6e6d578733f2efe5de71e885b8b2f4280ddd634f13a74994a29"


def read_manifest(service):
    return [json.loads(line) for line in
            service.manifest_path.read_text().splitlines()]


def read_results(service, record):
    return json.loads((service.inbox / record["results"]).read_text())


# --------------------------------------------------------------------------- #
# directory lifecycle
# --------------------------------------------------------------------------- #
def test_service_directory_lifecycle(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox)
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "a_worst.json")
    save_job(DesignFlowJob(use_cases=SPREAD3), inbox / "b_flow.json")

    records = service.run_once()

    assert [record["file"] for record in records] == ["a_worst.json", "b_flow.json"]
    assert all(record["status"] == "done" for record in records)
    assert service.pending() == []
    assert not list(service.running_dir.glob("*.json"))
    assert sorted(entry.name for entry in service.done_dir.glob("*.json")) == [
        "a_worst.json", "b_flow.json",
    ]
    assert read_manifest(service) == records
    for record in records:
        envelopes = read_results(service, record)
        assert [env["spec_hash"] for env in envelopes] == record["spec_hashes"]
        assert all(env["payload"]["mapped"] for env in envelopes)
    # draining an empty inbox is a no-op
    assert service.run_once() == []


def test_service_moves_bad_specs_to_failed_and_keeps_serving(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox)
    (inbox / "a_bad.json").parent.mkdir(parents=True, exist_ok=True)
    (inbox / "a_bad.json").write_text('{"kind": "no_such_kind"}')
    (inbox / "b_broken.json").write_text("not json {{{")
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "c_good.json")

    records = service.run_once()

    by_file = {record["file"]: record for record in records}
    assert by_file["a_bad.json"]["status"] == "failed"
    assert "unknown job kind" in by_file["a_bad.json"]["error"]
    assert by_file["b_broken.json"]["status"] == "failed"
    assert by_file["c_good.json"]["status"] == "done"
    assert sorted(entry.name for entry in service.failed_dir.glob("*.json")) == [
        "a_bad.json", "b_broken.json",
    ]
    assert [entry.name for entry in service.done_dir.glob("*.json")] == ["c_good.json"]
    # failed files produce no results file, only the manifest record
    assert [entry.stem for entry in service.results_dir.glob("*.json")] == ["c_good"]


def test_service_recovers_files_stranded_in_running(tmp_path):
    inbox = tmp_path / "inbox"
    # a previous instance crashed mid-execution: its claimed spec is still
    # in running/ when the next instance starts
    crashed = JobDirectoryService(inbox)
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "stranded.json")
    os.rename(inbox / "stranded.json", crashed.running_dir / "stranded.json")

    service = JobDirectoryService(inbox)
    records = service.run_once()

    assert [record["file"] for record in records] == ["stranded.json"]
    assert records[0]["status"] == "done"
    assert not list(service.running_dir.glob("*.json"))
    assert (service.done_dir / "stranded.json").exists()


def test_resubmitted_file_names_do_not_clobber_history(tmp_path):
    inbox = tmp_path / "inbox"
    cache = tmp_path / "cache"
    service = JobDirectoryService(inbox, cache_dir=cache)
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "job.json")
    first = service.run_once()
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "job.json")
    second = service.run_once()

    assert first[0]["file"] == "job.json"
    assert second[0]["file"] == "job-2.json"
    assert second[0]["cached"] == 1 and second[0]["executed"] == 0
    assert sorted(entry.name for entry in service.done_dir.glob("*.json")) == [
        "job-2.json", "job.json",
    ]
    assert read_results(service, first[0])[0]["payload"] == \
        read_results(service, second[0])[0]["payload"]


def test_serve_forever_honours_max_polls_and_stop(tmp_path, fake_clock):
    service = JobDirectoryService(tmp_path / "inbox", clock=fake_clock)
    # a realistic poll interval, but on the fake clock: the loop really
    # sleeps between polls (not after the last one) without stalling the test
    assert service.serve_forever(poll_interval=1.5, max_polls=3) == 0
    assert fake_clock.sleeps == [1.5, 1.5]
    service.stop()
    assert service.serve_forever(poll_interval=1.5) == 0
    assert fake_clock.sleeps == [1.5, 1.5]  # stopped loop never slept again


# --------------------------------------------------------------------------- #
# warm/cold equivalence over a persistent cache
# --------------------------------------------------------------------------- #
def _submit_workload(inbox):
    inbox.mkdir(parents=True, exist_ok=True)
    save_job(DesignFlowJob(use_cases=SPREAD10), inbox / "a_flow.json")
    save_job(RefineJob(use_cases=SPREAD10, iterations=8, seed=0),
             inbox / "b_refine.json")


def _fingerprints(service, records):
    prints = {}
    for record in records:
        for envelope in read_results(service, record):
            prints[envelope["spec_hash"]] = envelope["payload"].get("fingerprint")
    return prints


def test_warm_serve_run_is_bit_identical_with_zero_executions(tmp_path):
    cache = tmp_path / "cache"

    cold_service = JobDirectoryService(tmp_path / "inbox-cold", cache_dir=cache)
    _submit_workload(cold_service.inbox)
    cold = cold_service.run_once()
    assert cold_service.runner.executed_jobs == 2

    warm_service = JobDirectoryService(tmp_path / "inbox-warm", cache_dir=cache)
    _submit_workload(warm_service.inbox)
    warm = warm_service.run_once()

    # zero executions: every job answered from the JobCache hit path
    assert warm_service.runner.executed_jobs == 0
    assert all(record["cached"] == record["jobs"] for record in warm)
    # bit-identical results, pinned to the seed mapping fingerprint
    cold_prints = _fingerprints(cold_service, cold)
    warm_prints = _fingerprints(warm_service, warm)
    assert warm_prints == cold_prints
    assert SPREAD10_FINGERPRINT in warm_prints.values()
    cold_payloads = {record["file"]: [env["payload"] for env in
                                      read_results(cold_service, record)]
                     for record in cold}
    warm_payloads = {record["file"]: [env["payload"] for env in
                                      read_results(warm_service, record)]
                     for record in warm}
    assert warm_payloads == cold_payloads


# --------------------------------------------------------------------------- #
# follow-up (h): engines seeded from the JobCache
# --------------------------------------------------------------------------- #
def test_refine_job_is_served_from_seeded_engine_without_recomputation(tmp_path):
    cache = tmp_path / "cache"

    # an earlier serve pass computed the design-flow mapping of spread-10
    first = JobDirectoryService(tmp_path / "inbox1", cache_dir=cache)
    save_job(DesignFlowJob(use_cases=SPREAD10), first.inbox / "flow.json")
    assert first.run_once()[0]["status"] == "done"

    # a later pass submits a refine job of the same design: it is NOT in the
    # JobCache (different spec hash), but its initial unified mapping is —
    # the fresh engine is seeded and performs zero mapping re-evaluations
    second = JobDirectoryService(tmp_path / "inbox2", cache_dir=cache)
    save_job(RefineJob(use_cases=SPREAD10, iterations=8, seed=0),
             second.inbox / "refine.json")
    record = second.run_once()[0]
    assert record["status"] == "done"
    assert record["executed"] == 1 and record["cached"] == 0

    envelope = read_results(second, record)[0]
    engine_stats = envelope["stats"]["engine"]
    assert engine_stats["result_misses"] == 0
    assert engine_stats["result_hits"] >= 1
    assert engine_stats["imported_results"] >= 1
    assert envelope["payload"]["initial_fingerprint"] == SPREAD10_FINGERPRINT

    # seeding is transparent: bit-identical to a cold, unseeded execution
    cold = JobRunner().run(RefineJob(use_cases=SPREAD10, iterations=8, seed=0))
    assert cold.stats["engine"]["result_misses"] == 1
    assert envelope["payload"] == cold.payload


def test_frequency_probe_is_served_from_seeded_engine(tmp_path):
    cache = tmp_path / "cache"
    runner = JobRunner(cache_dir=cache, seed_engines=True)
    runner.run(DesignFlowJob(use_cases=SPREAD10))

    # the probe at the design-flow operating point (the default 500 MHz) is
    # answered by a with_params sibling of the seeded engine
    warm = JobRunner(cache_dir=cache, seed_engines=True)
    result = warm.run(FrequencyJob(use_cases=SPREAD10, frequencies_mhz=(500.0,)))
    assert result.payload["required_frequency_mhz"] == 500.0
    assert result.stats["engine"]["result_misses"] == 0
    assert result.stats["engine"]["result_hits"] >= 1


def test_jobcache_seed_engine_hits_for_contained_mapping(tmp_path):
    cache_dir = tmp_path / "cache"
    JobRunner(cache_dir=cache_dir).run(DesignFlowJob(use_cases=SPREAD10))

    cache = JobCache(cache_dir)
    assert cache.engine_exports(), "cached envelopes must carry engine exports"
    engine = MappingEngine()
    assert cache.seed_engine(engine) >= 1

    design = generate_benchmark("spread", 10, seed=3)
    result = engine.map(design)
    info = engine.cache_info()
    assert info["result_hits"] == 1
    assert info["result_misses"] == 0
    from repro.io.serialization import mapping_fingerprint
    assert mapping_fingerprint(result) == SPREAD10_FINGERPRINT
    # seeding is idempotent: re-seeding materialises nothing new
    assert cache.seed_engine(engine) == 0


def test_import_results_skips_other_operating_points_until_sibling_matches():
    base = MappingEngine()
    design = generate_benchmark("spread", 5, seed=3)
    computed = base.map(design)
    exported = base.export_results()

    other = MappingEngine(params=base.params.with_frequency(1e9))
    assert other.import_results(exported) == 0  # wrong operating point
    assert other.cache_info()["results"] == 0
    # ...but the entry is retained for siblings at the matching point, and
    # materialised lazily the moment a map() call asks for it
    sibling = other.with_params(params=base.params)
    from repro.io.serialization import mapping_fingerprint
    assert mapping_fingerprint(sibling.map(design)) == mapping_fingerprint(computed)
    assert sibling.cache_info()["imported_results"] == 1
    assert sibling.cache_info()["result_misses"] == 0

    # malformed entries are skipped silently
    assert base.import_results([{"junk": True}, 7, {"spec_hash": "x"}]) == 0


def test_seeded_envelopes_do_not_reexport_the_seed_corpus(tmp_path):
    """A seeded engine exports only what it computed, so the cache's seed
    corpus stays proportional to distinct mappings, not O(jobs^2)."""
    cache_dir = tmp_path / "cache"
    runner = JobRunner(cache_dir=cache_dir, seed_engines=True)
    flow = runner.run(DesignFlowJob(use_cases=SPREAD10))
    assert len(flow.engine_results) == 1

    warm = JobRunner(cache_dir=cache_dir, seed_engines=True)
    refine = warm.run(RefineJob(use_cases=SPREAD10, iterations=8, seed=0))
    assert refine.stats["engine"]["imported_results"] >= 1
    # the imported initial mapping is not echoed back into the envelope
    assert refine.engine_results == []
    # ...so the store-wide corpus still holds exactly one mapping
    assert len(JobCache(cache_dir).engine_exports()) == 1


def test_envelopes_without_a_cache_skip_engine_exports():
    # nothing will ever consume them, so --out files and memory stay lean
    result = JobRunner().run(WorstCaseJob(use_cases=SPREAD3))
    assert result.engine_results == []
    assert result.payload["mapped"] is True


def test_recovery_runs_once_per_instance_not_every_drain(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox)
    assert service.run_once() == []  # first drain consumes the recovery
    # a file appearing in running/ afterwards belongs to a live peer: the
    # established instance must not steal it on later drains
    save_job(WorstCaseJob(use_cases=SPREAD3), service.running_dir / "peer.json")
    assert service.run_once() == []
    assert (service.running_dir / "peer.json").exists()
    # a *new* instance (a restart) does recover it
    restarted = JobDirectoryService(inbox)
    assert [record["file"] for record in restarted.run_once()] == ["peer.json"]


def test_process_file_survives_a_peer_reclaiming_the_spec(tmp_path):
    inbox = tmp_path / "inbox"
    service = JobDirectoryService(inbox)

    # reclaimed *before* the file was even loaded: the claim is simply lost
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "early.json")
    claimed = service._claim(inbox / "early.json")
    os.rename(claimed, inbox / "early.json")
    assert service.process_file(claimed) is None
    assert not service.manifest_path.exists()
    assert (inbox / "early.json").exists()

    # reclaimed *mid-execution*: the completed work is still recorded
    save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "late.json")
    claimed = service._claim(inbox / "late.json")
    original = service.runner.run_many

    def steal_then_run(jobs):
        os.rename(claimed, inbox / "late.json")
        return original(jobs)

    service.runner.run_many = steal_then_run
    record = service.process_file(claimed)
    assert record["status"] == "done"
    assert read_results(service, record)[0]["payload"]["mapped"] is True


# --------------------------------------------------------------------------- #
# the serve CLI
# --------------------------------------------------------------------------- #
def test_cli_serve_once_end_to_end(tmp_path, capsys):
    inbox = tmp_path / "inbox"
    cache = tmp_path / "cache"
    inbox.mkdir()
    save_job(DesignFlowJob(use_cases=SPREAD3), inbox / "flow.json")

    assert cli_main(["serve", str(inbox), "--once",
                     "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "[done] flow.json" in out
    assert "processed 1 file(s), 0 failed" in out
    assert (inbox / "done" / "flow.json").exists()
    assert (inbox / "manifest.jsonl").exists()

    # a failed submission flips the --once exit status to 1
    (inbox / "bad.json").write_text('{"kind": "no_such_kind"}')
    assert cli_main(["serve", str(inbox), "--once",
                     "--cache-dir", str(cache)]) == 1
    assert "[failed] bad.json" in capsys.readouterr().out


def test_cli_serve_once_warm_inbox_reports_cache_hits(tmp_path, capsys):
    cache = tmp_path / "cache"
    for name in ("inbox1", "inbox2"):
        inbox = tmp_path / name
        inbox.mkdir()
        save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "job.json")
        assert cli_main(["serve", str(inbox), "--once",
                        "--cache-dir", str(cache)]) == 0
    assert "1 cached  0 executed" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# the fleet view: serve --status over several inboxes
# --------------------------------------------------------------------------- #
def test_fleet_status_aggregates_inboxes_read_only(tmp_path):
    from repro.jobs import fleet_status

    cache = tmp_path / "cache"
    busy = tmp_path / "busy"
    busy.mkdir()
    save_job(WorstCaseJob(use_cases=SPREAD3), busy / "job.json")
    JobDirectoryService(busy, cache_dir=cache).run_once()
    idle = tmp_path / "idle"
    idle.mkdir()
    save_job(WorstCaseJob(use_cases=SPREAD3), idle / "waiting.json")

    fleet = fleet_status([busy, idle], cache_dir=cache)
    assert fleet["totals"]["inboxes"] == 2
    assert fleet["totals"]["files"]["done"] == 1
    assert fleet["totals"]["files"]["pending"] == 1
    assert fleet["totals"]["manifest"]["jobs"] == 1
    assert [status["inbox"] for status in fleet["inboxes"]] == [
        str(busy), str(idle),
    ]
    # the cache's engine-state store is reported without being created...
    assert fleet["store"]["directory"] == str(cache / "engine-state")
    assert fleet["store"]["results"] >= 1
    # ...and a cache that does not exist yet stays uncreated (read-only)
    absent = tmp_path / "no-cache"
    assert fleet_status([busy], cache_dir=absent)["store"] is None
    assert not absent.exists()


def test_fleet_status_rejects_missing_inboxes(tmp_path):
    from repro.exceptions import ReproError
    from repro.jobs import fleet_status

    inbox = tmp_path / "inbox"
    inbox.mkdir()
    with pytest.raises(ReproError):
        fleet_status([inbox, tmp_path / "missing"])
    assert not (tmp_path / "missing").exists()


def test_cli_serve_status_fleet_view(tmp_path, capsys):
    cache = tmp_path / "cache"
    inboxes = []
    for name in ("north", "south"):
        inbox = tmp_path / name
        inbox.mkdir()
        save_job(WorstCaseJob(use_cases=SPREAD3), inbox / "job.json")
        inboxes.append(str(inbox))
    assert cli_main(["serve", inboxes[0], "--once", "--cache-dir", str(cache)]) == 0
    capsys.readouterr()

    assert cli_main(["serve", *inboxes, "--status", "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "fleet: 2 inboxes, 1 pending" in out
    assert "1 done" in out
    assert "engine-state store" in out

    # several inboxes are only meaningful with --status
    assert cli_main(["serve", *inboxes, "--once"]) == 1
    assert capsys.readouterr().err.startswith("error:")
