"""Tests for the NoC topology model."""

import pytest
from hypothesis import given, strategies as st

from repro import TopologyError
from repro.noc.topology import Switch, Topology, mesh_dimensions_for, mesh_growth_schedule


def test_mesh_switch_and_link_counts():
    mesh = Topology.mesh(3, 4)
    assert mesh.switch_count == 12
    # Each undirected neighbour pair contributes two directed links.
    assert mesh.link_count == 2 * (3 * 3 + 2 * 4)
    assert mesh.kind == "mesh"
    assert mesh.dimensions == (3, 4)


def test_mesh_positions_follow_row_major_indexing():
    mesh = Topology.mesh(2, 3)
    assert mesh.switch(0).position == (0, 0)
    assert mesh.switch(4).position == (1, 1)
    assert mesh.switch(5).position == (1, 2)


def test_single_switch_topology():
    single = Topology.single_switch()
    assert single.switch_count == 1
    assert single.link_count == 0
    assert single.is_connected()
    assert single.diameter() == 0


def test_mesh_neighbors_and_degree():
    mesh = Topology.mesh(3, 3)
    center = 4
    assert set(mesh.neighbors(center)) == {1, 3, 5, 7}
    assert mesh.degree(center) == 4
    corner = 0
    assert mesh.degree(corner) == 2
    assert mesh.port_count(corner) == 3  # two mesh ports plus one NI port


def test_mesh_is_connected_and_diameter():
    mesh = Topology.mesh(3, 3)
    assert mesh.is_connected()
    assert mesh.diameter() == 4


def test_shortest_hop_count_is_manhattan_on_mesh():
    mesh = Topology.mesh(4, 4)
    assert mesh.shortest_hop_count(0, 15) == 6
    assert mesh.shortest_hop_count(5, 5) == 0


def test_torus_adds_wraparound_links():
    torus = Topology.torus(3, 3)
    mesh = Topology.mesh(3, 3)
    assert torus.link_count > mesh.link_count
    assert torus.has_link(0, 2) and torus.has_link(2, 0)
    assert torus.has_link(0, 6) and torus.has_link(6, 0)


def test_ring_topology():
    ring = Topology.ring(5)
    assert ring.switch_count == 5
    assert ring.link_count == 10
    assert ring.is_connected()
    assert ring.shortest_hop_count(0, 2) == 2


def test_ring_of_two_has_single_link_pair():
    ring = Topology.ring(2)
    assert ring.link_count == 2


def test_custom_topology_from_edges():
    custom = Topology.custom([(0, 1), (1, 2), (2, 0)], name="triangle")
    assert custom.switch_count == 3
    assert custom.link_count == 6
    assert custom.is_connected()


def test_custom_topology_requires_edges():
    with pytest.raises(TopologyError):
        Topology.custom([])


def test_invalid_mesh_dimensions():
    with pytest.raises(TopologyError):
        Topology.mesh(0, 3)


def test_unknown_switch_raises():
    mesh = Topology.mesh(2, 2)
    with pytest.raises(TopologyError):
        mesh.switch(99)
    with pytest.raises(TopologyError):
        mesh.neighbors(99)


def test_duplicate_switch_indices_rejected():
    with pytest.raises(TopologyError):
        Topology("bad", [Switch(0), Switch(0)], [])


def test_non_dense_switch_indices_rejected():
    with pytest.raises(TopologyError):
        Topology("bad", [Switch(0), Switch(2)], [])


def test_self_loop_link_rejected():
    with pytest.raises(TopologyError):
        Topology("bad", [Switch(0), Switch(1)], [(0, 0)])


def test_link_referencing_unknown_switch_rejected():
    with pytest.raises(TopologyError):
        Topology("bad", [Switch(0), Switch(1)], [(0, 5)])


def test_switch_row_col_require_position():
    unpositioned = Switch(3)
    with pytest.raises(TopologyError):
        _ = unpositioned.row


def test_average_port_count_mesh():
    mesh = Topology.mesh(2, 2)
    # Every switch of a 2x2 mesh has 2 mesh ports + 1 NI port.
    assert mesh.average_port_count() == pytest.approx(3.0)


# --------------------------------------------------------------------------- #
# growth schedule helpers
# --------------------------------------------------------------------------- #
def test_mesh_dimensions_for_prefers_square():
    assert mesh_dimensions_for(12) == (3, 4)
    assert mesh_dimensions_for(16) == (4, 4)
    assert mesh_dimensions_for(7) == (1, 7)


def test_mesh_dimensions_for_rejects_non_positive():
    with pytest.raises(TopologyError):
        mesh_dimensions_for(0)


def test_mesh_growth_schedule_starts_at_one_switch():
    schedule = mesh_growth_schedule(40)
    assert schedule[0] == (1, 1)
    assert schedule[1] == (1, 2)
    assert (2, 2) in schedule
    assert all(rows * cols <= 40 for rows, cols in schedule)


def test_mesh_growth_schedule_is_monotonic():
    schedule = mesh_growth_schedule(100)
    sizes = [rows * cols for rows, cols in schedule]
    assert sizes == sorted(sizes)
    assert len(sizes) == len(set(sizes))


@given(count=st.integers(min_value=1, max_value=500))
def test_mesh_dimensions_product_matches(count):
    rows, cols = mesh_dimensions_for(count)
    assert rows * cols == count
    assert rows <= cols


@given(rows=st.integers(min_value=1, max_value=6), cols=st.integers(min_value=1, max_value=6))
def test_mesh_is_always_connected(rows, cols):
    mesh = Topology.mesh(rows, cols)
    assert mesh.is_connected()
    assert mesh.switch_count == rows * cols
