"""Tests for the vectorized candidate screen (repro.optimize.screen).

Pins the tentpole contract: screening is a pure *speed* change.  The
numpy and packed-int backends compute identical admissibility masks, a
screened refinement run is bit-identical to the unscreened scalar walk
(same refined cost, same accepted moves, same mapping fingerprint), and
``CandidateScreen.cost`` agrees with ``MappingEngine.placement_cost``
candidate for candidate — returning ``None`` exactly where the engine
raises ``MappingError``.
"""

from __future__ import annotations

import random

import pytest

import repro.optimize.screen as screen_mod
from repro.core.engine import MappingEngine
from repro.exceptions import MappingError
from repro.gen import generate_benchmark
from repro.io.serialization import mapping_fingerprint
from repro.noc.slot_table import hop_mask_matrix, pipelined_free_mask
from repro.optimize import AnnealingRefiner, TabuRefiner
from repro.optimize.screen import (
    NUMPY_MIN_ROWS,
    CandidateScreen,
    NumpyMaskBackend,
    PackedIntMaskBackend,
    select_backend,
)

requires_numpy = pytest.mark.skipif(
    screen_mod._np is None, reason="numpy not installed"
)


def spread10():
    return generate_benchmark("spread", 10, seed=3)


# --------------------------------------------------------------------------- #
# backend equivalence
# --------------------------------------------------------------------------- #
def random_matrix(rng, size, rows, max_hops):
    return [
        [rng.getrandbits(size) for _ in range(rng.randint(0, max_hops))]
        for _ in range(rows)
    ]


@requires_numpy
@pytest.mark.parametrize("size", [8, 32, 64])
def test_backends_agree_on_random_matrices(size):
    rng = random.Random(size)
    numpy_backend = NumpyMaskBackend(size)
    packed_backend = PackedIntMaskBackend(size)
    for _ in range(25):
        matrix = random_matrix(rng, size, rows=rng.randint(0, 12), max_hops=2 * size)
        expected = [pipelined_free_mask(row, size) for row in matrix]
        assert packed_backend.admissible_start_masks(matrix) == expected
        assert numpy_backend.admissible_start_masks(matrix) == expected


@requires_numpy
def test_numpy_backend_rejects_oversized_tables():
    with pytest.raises(ValueError):
        NumpyMaskBackend(65)


def test_select_backend_prefers_ints_for_narrow_batches():
    assert isinstance(select_backend(32, rows=1), PackedIntMaskBackend)
    assert isinstance(select_backend(128), PackedIntMaskBackend)
    if screen_mod._np is not None:
        assert isinstance(select_backend(32), NumpyMaskBackend)
        assert isinstance(select_backend(32, rows=NUMPY_MIN_ROWS), NumpyMaskBackend)
    else:
        assert isinstance(select_backend(32), PackedIntMaskBackend)


def test_hop_mask_matrix_defaults_untouched_links_to_full():
    full = (1 << 8) - 1
    masks = {(0, 1): 0b1010}
    matrix = hop_mask_matrix(masks, [[(0, 1), (1, 2)], []], full)
    assert matrix == [[0b1010, full], []]


# --------------------------------------------------------------------------- #
# refinement bit-identity (the contract everything hangs off)
# --------------------------------------------------------------------------- #
def _refine(refiner_cls, use_cases, result, **kwargs):
    engine = MappingEngine()
    outcome = refiner_cls(seed=1, **kwargs).refine(result, use_cases, engine=engine)
    return outcome, engine


@pytest.mark.parametrize(
    "refiner_cls,kwargs",
    [
        (AnnealingRefiner, {"iterations": 40}),
        (TabuRefiner, {"iterations": 8}),
    ],
    ids=["annealing", "tabu"],
)
def test_screened_refinement_is_bit_identical_to_scalar(
    refiner_cls, kwargs, monkeypatch
):
    use_cases = spread10()
    result = MappingEngine().map(use_cases)
    scalar, scalar_engine = _refine(
        refiner_cls, use_cases, result, screen=False, **kwargs
    )
    assert scalar_engine.cache_info()["screen_misses"] == 0

    screened_runs = {}
    # fallback backend (numpy unavailable)
    monkeypatch.setattr(screen_mod, "_np", None)
    screened_runs["fallback"] = _refine(refiner_cls, use_cases, result, **kwargs)
    monkeypatch.undo()
    if screen_mod._np is not None:
        # numpy forced into every batch, however narrow
        monkeypatch.setattr(screen_mod, "NUMPY_MIN_ROWS", 1)
        screened_runs["numpy"] = _refine(refiner_cls, use_cases, result, **kwargs)
        monkeypatch.undo()

    for name, (outcome, engine) in screened_runs.items():
        assert outcome.refined_cost == scalar.refined_cost, name
        assert outcome.accepted_moves == scalar.accepted_moves, name
        assert outcome.refined.core_mapping == scalar.refined.core_mapping, name
        assert mapping_fingerprint(outcome.refined) == mapping_fingerprint(
            scalar.refined
        ), name
        info = engine.cache_info()
        assert info["screen_misses"] > 0, name
        # a kernel evaluation *is* a computed evaluation
        assert info["evaluation_misses"] >= info["screen_misses"], name


def test_screened_exports_match_scalar_exports():
    use_cases = spread10()
    result = MappingEngine().map(use_cases)
    _, scalar_engine = _refine(
        AnnealingRefiner, use_cases, result, screen=False, iterations=25
    )
    _, screened_engine = _refine(AnnealingRefiner, use_cases, result, iterations=25)
    assert screened_engine.export_evaluations() == scalar_engine.export_evaluations()


# --------------------------------------------------------------------------- #
# cost / screen parity with the engine
# --------------------------------------------------------------------------- #
def _screen_context():
    use_cases = spread10()
    engine = MappingEngine()
    result = engine.map(use_cases)
    spec = engine.compile(use_cases)
    groups = [list(group) for group in result.groups]
    screen = engine.screener(spec, result.topology, groups=groups)
    return engine, spec, result, groups, screen


def _random_neighbours(result, rng, count):
    cores = sorted(result.core_mapping)
    switches = [switch.index for switch in result.topology.switches]
    neighbours = []
    for _ in range(count):
        placement = dict(result.core_mapping)
        if rng.random() < 0.5:
            first, second = rng.sample(cores, 2)
            placement[first], placement[second] = placement[second], placement[first]
        else:
            placement[rng.choice(cores)] = rng.choice(switches)
        neighbours.append(placement)
    return neighbours


def test_cost_matches_placement_cost_on_random_neighbours():
    engine, spec, result, groups, screen = _screen_context()
    rng = random.Random(7)
    feasible = infeasible = 0
    for placement in _random_neighbours(result, rng, 120):
        try:
            expected = engine.placement_cost(
                spec, result.topology, placement, groups=groups
            )
        except MappingError:
            expected = None
        actual = screen.cost(placement)
        assert actual == expected
        if expected is None:
            infeasible += 1
        else:
            feasible += 1
    assert feasible and infeasible  # both branches exercised


def test_screen_lower_bounds_never_exceed_feasible_costs():
    _engine, _spec, result, _groups, screen = _screen_context()
    rng = random.Random(11)
    neighbours = _random_neighbours(result, rng, 60)
    reports = screen.screen(neighbours)
    assert len(reports) == len(neighbours)
    checked = 0
    for placement, report in zip(neighbours, reports):
        cost = screen.cost(placement)
        if not report.admissible:
            # inadmissible verdicts are decision-identical to evaluation
            assert cost is None
            continue
        if cost is not None:
            assert report.lower_bound <= cost * (1 + 1e-9)
            checked += 1
    assert checked


def test_screen_returns_exact_cost_once_memoised():
    _engine, _spec, result, _groups, screen = _screen_context()
    placement = dict(result.core_mapping)
    exact = screen.cost(placement)
    report = screen.screen([placement])[0]
    assert report.admissible
    assert report.cost == exact
    assert report.lower_bound == exact


def test_screen_counters_surface_in_cache_info():
    engine, _spec, result, _groups, screen = _screen_context()
    placement = dict(result.core_mapping)
    before = engine.cache_info()
    screen.cost(placement)
    mid = engine.cache_info()
    assert mid["screen_misses"] + mid["evaluation_hits"] > (
        before["screen_misses"] + before["evaluation_hits"]
    )
    screen.cost(placement)  # second look: answered by the run-local memo
    after = engine.cache_info()
    assert after["screen_hits"] > mid["screen_hits"]
    assert after["screen_misses"] == mid["screen_misses"]


def test_screener_rejects_nothing_it_should_not(monkeypatch):
    # incomplete placements fall back to the engine's general path
    engine, _spec, result, _groups, screen = _screen_context()
    partial = dict(result.core_mapping)
    partial.pop(sorted(partial)[0])
    report = screen.screen([partial])[0]
    assert report.admissible and report.cost is None and report.lower_bound == 0.0
