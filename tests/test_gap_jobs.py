"""GapJob execution, caching and the `repro gap` CLI.

Pins the gap machinery's operational contracts: the golden job hash (cache
keys must never drift), warm-cache re-runs performing *zero* exact-solver
searches, byte-identical ``gap_report.json`` across runs, the exact-vs-
itself smoke (``backend="ilp"`` heuristic == exact, gap 0), and the
one-line ``error:`` CLI diagnostics beside the other commands'.
"""

from __future__ import annotations

import json

import pytest

from repro import MapperConfig, generate_benchmark
from repro.io.serialization import save_use_case_set
from repro.jobs import GapJob, JobRunner, UseCaseSource, job_hash
from repro.jobs.cli import main as cli_main
from repro.optimize.ilp import solver_invocations

#: golden content hash of one canonical gap job — fails if the hashing
#: scheme or the GapJob document shape drifts, which would invalidate
#: every persisted gap cache entry
SPREAD10_GAP_JOB_HASH = (
    "fae99a924cf4ba8f27ef6b88c6701285961b33c482c308443304d4281872e3eb"
)

TINY_RECIPE = {
    "kind": "spread", "use_case_count": 3, "core_count": 6,
    "seed": 11, "flows_per_use_case": [8, 16],
}


def tiny_gap_job(**overrides) -> GapJob:
    defaults = dict(
        use_cases=UseCaseSource(generator=dict(TINY_RECIPE)),
        solver="native",
        refine_iterations=40,
    )
    defaults.update(overrides)
    return GapJob(**defaults)


def test_gap_job_hash_scheme_is_pinned():
    job = GapJob(
        use_cases=UseCaseSource(
            generator={"kind": "spread", "use_case_count": 10, "seed": 3}
        ),
        solver="native",
    )
    assert job_hash(job) == SPREAD10_GAP_JOB_HASH


def test_gap_payload_shape():
    result = JobRunner().run(tiny_gap_job())
    payload = result.payload
    assert payload["mapped"] is True
    gap = payload["gap"]
    assert gap["solver"] == "native"
    assert gap["validated"] is True
    exact = gap["exact"]
    assert set(exact) == {"cost", "switch_count", "topology", "fingerprint"}
    heuristic = gap["heuristic"]
    assert heuristic["cost"] >= exact["cost"]
    assert heuristic["gap_absolute"] == round(
        heuristic["cost"] - exact["cost"], 6
    )
    refined = gap["refined"]
    assert refined["cost"] <= heuristic["cost"]
    # the payload's mapping/summary block is the exact result's
    assert payload["summary"]["switch_count"] == exact["switch_count"]


def test_warm_cache_rerun_performs_zero_solver_searches(tmp_path):
    job = tiny_gap_job()
    cache_dir = tmp_path / "cache"
    cold = JobRunner(cache_dir=cache_dir).run(job)
    assert not cold.cached
    before = solver_invocations()
    warm = JobRunner(cache_dir=cache_dir).run(job)
    assert warm.cached
    assert solver_invocations() == before, (
        "a cached gap job must not re-invoke the exact solver"
    )
    assert warm.payload == cold.payload


def test_exact_vs_itself_gap_is_zero():
    """With backend="ilp" the "heuristic" leg IS the exact backend."""
    job = tiny_gap_job(config=MapperConfig(backend="ilp"), refine_iterations=0)
    payload = JobRunner().run(job).payload
    gap = payload["gap"]
    assert gap["heuristic"]["cost"] == gap["exact"]["cost"]
    assert gap["heuristic"]["gap_absolute"] == 0.0
    assert gap["heuristic"]["gap_relative"] == 0.0


def test_gap_payload_is_deterministic_across_processes_worth_of_runs():
    first = JobRunner().run(tiny_gap_job()).payload
    second = JobRunner().run(tiny_gap_job()).payload
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


# --------------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------------- #
GAP_ARGV = ["gap", "--spread", "3", "--core-count", "6", "--flows", "8,16",
            "--design-seed", "11", "--solver", "native",
            "--refine-iterations", "40"]


def test_cli_gap_reports_are_byte_identical_across_runs(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    for run_dir in ("r1", "r2"):
        assert cli_main(GAP_ARGV + ["--cache-dir", cache,
                                    "--report-dir", str(tmp_path / run_dir)]) == 0
    capsys.readouterr()
    first = (tmp_path / "r1" / "gap_report.json").read_bytes()
    second = (tmp_path / "r2" / "gap_report.json").read_bytes()
    assert first == second
    assert (tmp_path / "r1" / "gap_report.md").read_bytes() == (
        tmp_path / "r2" / "gap_report.md"
    ).read_bytes()
    document = json.loads(first)
    assert document["schema"] == "repro/gap-report@1"
    (cell,) = document["cells"]
    assert cell["design"].startswith("spread-3")
    assert cell["gap"]["validated"] is True
    digest = (tmp_path / "r1" / "gap_report.md").read_text()
    assert digest.splitlines()[0] == "# Optimality gap report"
    assert "native" in digest


def test_cli_gap_runs_on_a_design_file(tmp_path, capsys):
    design = save_use_case_set(
        generate_benchmark("spread", 3, core_count=6, seed=11,
                           flows_per_use_case=(8, 16)),
        tmp_path / "design.json",
    )
    assert cli_main(["gap", str(design), "--solver", "native"]) == 0
    out = capsys.readouterr().out
    assert "exact (native):" in out
    assert "heuristic:" in out


@pytest.mark.parametrize("argv,needle", [
    (["gap"], "DESIGN.json file or --spread"),
    (["gap", "x.json", "--spread", "3"], "not both"),
    (["gap", "--spread", "3", "--flows", "nope"], "--flows expects MIN,MAX"),
])
def test_cli_gap_error_paths_are_one_line(argv, needle, capsys):
    assert cli_main(argv) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert needle in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_cli_gap_missing_pulp_is_a_one_line_error(capsys):
    pulp_installed = True
    try:
        import pulp  # noqa: F401
    except ImportError:
        pulp_installed = False
    if pulp_installed:
        pytest.skip("pulp is installed in this environment")
    assert cli_main(["gap", "--spread", "3", "--solver", "pulp"]) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert "pulp" in captured.err
    assert len(captured.err.strip().splitlines()) == 1


def test_cli_gap_infeasible_spec_is_a_one_line_error(tmp_path, capsys):
    design = save_use_case_set(
        generate_benchmark("spread", 3, core_count=6, seed=11,
                           flows_per_use_case=(8, 16)),
        tmp_path / "design.json",
    )
    # a one-node search budget: every topology's exact search aborts, so
    # no feasible assignment is ever found
    assert cli_main(["gap", str(design), "--solver", "native",
                     "--node-limit", "1"]) == 1
    captured = capsys.readouterr()
    assert captured.err.startswith("error:")
    assert len(captured.err.strip().splitlines()) == 1
