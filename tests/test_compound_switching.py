"""Tests for compound-mode generation (phase 1) and use-case grouping (phase 2)."""

import pytest

from repro import (
    CompoundModeSpec,
    Flow,
    SpecificationError,
    SwitchingGraph,
    UseCase,
    UseCaseSet,
    generate_compound_modes,
    group_use_cases,
)
from repro.core.compound import merge_use_cases
from repro.units import mbps, us


def _simple_set():
    uc1 = UseCase("u1", flows=[Flow("a", "b", mbps(10), latency=us(100))])
    uc2 = UseCase("u2", flows=[Flow("a", "b", mbps(20), latency=us(50)),
                               Flow("b", "c", mbps(5))])
    uc3 = UseCase("u3", flows=[Flow("c", "a", mbps(7))])
    return UseCaseSet([uc1, uc2, uc3], name="simple")


# --------------------------------------------------------------------------- #
# compound modes
# --------------------------------------------------------------------------- #
def test_compound_spec_requires_two_members():
    with pytest.raises(SpecificationError):
        CompoundModeSpec(["u1"])


def test_compound_spec_default_name_and_dedup():
    spec = CompoundModeSpec(["u1", "u2", "u1"])
    assert spec.members == ("u1", "u2")
    assert spec.name == "u1+u2"


def test_merge_sums_bandwidth_and_takes_min_latency():
    ucs = _simple_set()
    merged = merge_use_cases([ucs["u1"], ucs["u2"]], name="u12")
    flow = merged.flow_between("a", "b")
    assert flow.bandwidth == pytest.approx(mbps(30))
    assert flow.latency == pytest.approx(us(50))
    # The non-overlapping flow is carried over unchanged.
    assert merged.flow_between("b", "c").bandwidth == pytest.approx(mbps(5))
    assert merged.parents == ("u1", "u2")


def test_merge_empty_collection_rejected():
    with pytest.raises(SpecificationError):
        merge_use_cases([], name="x")


def test_generate_compound_modes_adds_new_use_cases():
    ucs = _simple_set()
    expanded, generated = generate_compound_modes(ucs, [CompoundModeSpec(["u1", "u2"])])
    assert len(expanded) == 4
    assert len(generated) == 1
    assert generated[0].name == "u1+u2"
    assert generated[0].is_compound
    # The original set is untouched.
    assert len(ucs) == 3


def test_generate_compound_modes_unknown_member():
    ucs = _simple_set()
    with pytest.raises(SpecificationError):
        generate_compound_modes(ucs, [CompoundModeSpec(["u1", "zz"])])


def test_generate_compound_modes_name_collision():
    ucs = _simple_set()
    with pytest.raises(SpecificationError):
        generate_compound_modes(ucs, [CompoundModeSpec(["u1", "u2"], name="u3")])


# --------------------------------------------------------------------------- #
# switching graph / Algorithm 1
# --------------------------------------------------------------------------- #
def test_groups_default_to_singletons():
    ucs = _simple_set()
    groups = group_use_cases(ucs)
    assert len(groups) == 3
    assert all(len(group) == 1 for group in groups)


def test_explicit_smooth_pair_groups_use_cases():
    ucs = _simple_set()
    groups = group_use_cases(ucs, smooth_pairs=[("u1", "u2")])
    assert frozenset({"u1", "u2"}) in groups
    assert frozenset({"u3"}) in groups


def test_compound_members_share_configuration_automatically():
    ucs = _simple_set()
    expanded, _ = generate_compound_modes(ucs, [CompoundModeSpec(["u1", "u2"])])
    graph = SwitchingGraph.from_use_case_set(expanded)
    assert graph.shares_configuration("u1", "u1+u2")
    assert graph.shares_configuration("u2", "u1+u2")
    # ... and therefore, transitively, with each other (Figure 4's Group 1).
    assert graph.shares_configuration("u1", "u2")
    assert not graph.shares_configuration("u1", "u3")


def test_paper_figure4_grouping():
    """Reproduce the grouping of Figure 4: 10 use-cases, 4 groups."""
    names = [f"U{i}" for i in range(1, 9)] + ["U_123", "U_45"]
    use_cases = UseCaseSet(
        [UseCase(name, flows=[Flow("x", "y", mbps(1))]) for name in names],
        name="figure4",
    )
    graph = SwitchingGraph.from_use_case_set(
        use_cases,
        smooth_pairs=[
            ("U1", "U_123"), ("U2", "U_123"), ("U3", "U_123"),
            ("U4", "U_45"), ("U5", "U_45"),
            ("U6", "U7"),
        ],
        include_compound_members=False,
    )
    groups = {frozenset(group) for group in graph.groups()}
    assert frozenset({"U1", "U2", "U3", "U_123"}) in groups
    assert frozenset({"U4", "U5", "U_45"}) in groups
    assert frozenset({"U6", "U7"}) in groups
    assert frozenset({"U8"}) in groups
    assert len(groups) == 4


def test_switching_graph_rejects_self_edge():
    graph = SwitchingGraph(["u1"])
    with pytest.raises(SpecificationError):
        graph.require_smooth_switching("u1", "u1")


def test_switching_graph_rejects_unknown_use_case_with_known_set():
    ucs = _simple_set()
    graph = SwitchingGraph.from_use_case_set(ucs)
    with pytest.raises(SpecificationError):
        graph.require_smooth_switching("u1", "zz", known=ucs)


def test_group_of_and_group_index():
    graph = SwitchingGraph(["a", "b", "c"])
    graph.require_smooth_switching("a", "b")
    assert graph.group_of("a") == frozenset({"a", "b"})
    index = graph.group_index()
    assert index["a"] == index["b"]
    assert index["c"] != index["a"]


def test_group_of_unknown_use_case():
    graph = SwitchingGraph(["a"])
    with pytest.raises(SpecificationError):
        graph.group_of("zz")


def test_groups_are_deterministic_order():
    graph = SwitchingGraph(["a", "b", "c", "d"])
    graph.require_smooth_switching("c", "d")
    groups = graph.groups()
    assert groups[0] == frozenset({"a"})
    assert groups[1] == frozenset({"b"})
    assert groups[2] == frozenset({"c", "d"})
