"""Live-operations loop: monitor, event log, probe sources, virtual time.

Pins the tentpole contracts of the ops layer:

* :meth:`FailureSet.diff` produces the exact :class:`FailureDelta` between
  two observations, and :func:`apply_traffic` rebuilds (and re-freezes)
  only the use cases whose bandwidth actually changed;
* the :class:`Monitor` loop — on a :class:`FakeClock`, with **zero real
  sleeping** — appends deltas to ``events.jsonl``, enqueues warm
  :class:`RepairJob` files into a serve inbox, and stays silent on
  steady-state polls;
* the event log is crash-replayable: :func:`replay_events` reconstructs
  monitor state **byte-identically** (property-tested over randomized
  fail/heal/traffic-change sequences), a restarted monitor resumes its
  sequence numbers from its own log, a torn final line is forgiven, and a
  sequence gap or foreign schema is rejected;
* a monitor-driven repair is bit-identical to a directly-constructed
  :class:`RepairJob` for the same failure set and executes with
  ``evaluation_misses == 0`` against the monitor-populated store;
* traffic re-characterisation events re-evaluate only the groups
  containing a re-characterised use case (the splice contract), and the
  final spliced mapping validates clean on the degraded topology.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.engine import MappingEngine
from repro.core.repair import repair_mapping
from repro.core.validate import validate_mapping
from repro.exceptions import SerializationError, SpecificationError
from repro.gen.synthetic import generate_benchmark
from repro.jobs import execute_job, inbox_status
from repro.jobs.spec import RepairJob, UseCaseSource, job_hash, load_jobs
from repro.noc.failures import FailureDelta, FailureSet
from repro.noc.topology import Topology
from repro.ops import (
    CallbackProbeSource,
    EventLog,
    FakeClock,
    Monitor,
    Observation,
    ScriptProbeSource,
    TrafficEvent,
    apply_traffic,
    canonical_state_bytes,
    replay_events,
)

#: the repairable workload test_failures pins: 8 use cases on a 3x3 mesh
SPARSE8 = dict(kind="spread", use_case_count=8, core_count=16, seed=5,
               flows_per_use_case=[6, 10])


def _design():
    return generate_benchmark(**SPARSE8)


def _write_script(path, steps):
    path.write_text(json.dumps(
        {"schema": "repro/probe-script@1", "steps": steps}
    ))
    return path


def _monitor(tmp_path, steps, clock, **kwargs):
    script = _write_script(tmp_path / "probe.json", steps)
    kwargs.setdefault("provision", (3, 3))
    kwargs.setdefault("period_s", 2.0)
    return Monitor(
        tmp_path / "inbox", ScriptProbeSource(script),
        UseCaseSource(generator=dict(SPARSE8)), clock=clock, **kwargs,
    )


# --------------------------------------------------------------------- #
# FailureSet.diff
# --------------------------------------------------------------------- #
def test_failure_diff_reports_directed_deltas():
    before = FailureSet().mark_link_down(1, 4).mark_switch_down(2)
    after = FailureSet().mark_link_down(3, 4).mark_switch_down(6)

    delta = before.diff(after)
    assert delta.failed_links == ((3, 4), (4, 3))
    assert delta.healed_links == ((1, 4), (4, 1))
    assert delta.failed_switches == (6,)
    assert delta.healed_switches == (2,)
    assert not delta.is_empty
    described = delta.describe()
    assert "down" in described and "up" in described

    # folding the delta into `before` reproduces `after` exactly
    folded = before.copy()
    for source, destination in delta.failed_links:
        folded.mark_link_down(source, destination, bidirectional=False)
    for source, destination in delta.healed_links:
        folded.mark_link_up(source, destination, bidirectional=False)
    for index in delta.failed_switches:
        folded.mark_switch_down(index)
    for index in delta.healed_switches:
        folded.mark_switch_up(index)
    assert folded.content_hash == after.content_hash


def test_failure_diff_of_identical_sets_is_empty():
    failures = FailureSet().mark_link_down(0, 1)
    delta = failures.diff(failures.copy())
    assert delta.is_empty
    assert delta == FailureDelta()
    assert delta.describe() == "no change"


# --------------------------------------------------------------------- #
# apply_traffic: re-characterisation
# --------------------------------------------------------------------- #
def test_apply_traffic_rebuilds_only_changed_use_cases():
    design = _design()
    target = list(design)[0]
    flow = target.flows[0]

    updated, changed = apply_traffic(
        design,
        {(target.name, flow.source, flow.destination): flow.bandwidth * 2},
    )
    assert changed == (target.name,)
    assert updated[target.name].flow_between(
        flow.source, flow.destination
    ).bandwidth == pytest.approx(flow.bandwidth * 2)
    # the rebuilt use case has a new identity...
    assert updated[target.name].content_hash() != target.content_hash()
    # ...while every untouched use case is the *same object*
    for use_case in design:
        if use_case.name != target.name:
            assert updated[use_case.name] is use_case
    # other flows of the rebuilt use case keep their design values
    other = target.flows[1]
    assert updated[target.name].flow_between(
        other.source, other.destination
    ).bandwidth == pytest.approx(other.bandwidth)


def test_apply_traffic_noop_override_changes_nothing():
    design = _design()
    target = list(design)[0]
    flow = target.flows[0]
    updated, changed = apply_traffic(
        design, {(target.name, flow.source, flow.destination): flow.bandwidth}
    )
    assert changed == ()
    assert updated[target.name] is target


def test_apply_traffic_rejects_unknown_names():
    design = _design()
    target = list(design)[0]
    with pytest.raises(SpecificationError, match="unknown use case"):
        apply_traffic(design, {("nope", "a", "b"): 1.0})
    with pytest.raises(SpecificationError, match="unknown flow"):
        apply_traffic(design, {(target.name, "ghost", "spook"): 1.0})


# --------------------------------------------------------------------- #
# probe sources
# --------------------------------------------------------------------- #
def test_script_probe_steps_and_clamping(tmp_path):
    script = _write_script(tmp_path / "p.json", [
        {"failures": {"links": [[1, 4], [4, 1]], "switches": []}},
        {},
    ])
    probe = ScriptProbeSource(script)
    assert len(probe) == 2 and not probe.exhausted
    first = probe.observe(0.0)
    assert first.failures.links == ((1, 4), (4, 1))
    assert probe.observe(1.0).failures.is_empty
    assert probe.exhausted
    # polls past the end keep observing the final step
    assert probe.observe(2.0).failures.is_empty


def test_script_probe_rejects_malformed_scripts(tmp_path):
    bad_schema = tmp_path / "bad.json"
    bad_schema.write_text(json.dumps({"schema": "other@1", "steps": [{}]}))
    with pytest.raises(SerializationError, match="probe script"):
        ScriptProbeSource(bad_schema)
    with pytest.raises(SerializationError, match="steps"):
        ScriptProbeSource(_write_script(tmp_path / "empty.json", []))
    with pytest.raises(SerializationError, match="traffic rows"):
        ScriptProbeSource(_write_script(
            tmp_path / "rows.json", [{"traffic": [["uc", "a", "b"]]}]
        ))
    with pytest.raises(SerializationError, match="absolute bandwidths"):
        ScriptProbeSource(_write_script(
            tmp_path / "null.json", [{"traffic": [["uc", "a", "b", None]]}]
        ))


def test_callback_probe_coerces_step_dicts():
    probe = CallbackProbeSource(
        lambda now: {"failures": {"links": [], "switches": [int(now)]}}
    )
    observed = probe.observe(6.0)
    assert isinstance(observed, Observation)
    assert observed.failures.switches == (6,)
    direct = Observation(failures=FailureSet())
    assert CallbackProbeSource(lambda now: direct).observe(0.0) is direct


# --------------------------------------------------------------------- #
# the monitor loop (virtual time; no real sleeping anywhere)
# --------------------------------------------------------------------- #
def test_monitor_fail_heal_cycle_enqueues_warm_repairs(tmp_path, fake_clock):
    design = _design()
    target = list(design)[0]
    flow = target.flows[0]
    monitor = _monitor(tmp_path, [
        {},  # steady: nothing logged, nothing enqueued
        {"failures": {"links": [[1, 4], [4, 1]], "switches": []}},
        {"failures": {"links": [[1, 4], [4, 1]], "switches": []},
         "traffic": [[target.name, flow.source, flow.destination,
                      flow.bandwidth * 1.5]]},
        {},  # healed and reverted
    ], clock=fake_clock)
    records = monitor.run(max_polls=4)

    assert monitor.polls == 4
    assert len(records) == 3  # the steady first poll produced no record
    assert fake_clock.sleeps == [2.0, 2.0, 2.0]

    fail, traffic, heal = records
    assert fail["action"] == "repair" and "down" in fail["delta"]
    assert traffic["traffic_changes"] == 1 and traffic["delta"] == "no change"
    assert heal["traffic_changes"] == 1 and "up" in heal["delta"]

    # one enqueued job file per change, named by enqueue-event sequence
    names = sorted(path.name for path in monitor.inbox.glob("*.json"))
    assert names == [record["file"] for record in records]
    # the traffic-step job carries the override; fail/heal jobs do not
    traffic_job, = load_jobs(monitor.inbox / traffic["file"])
    assert traffic_job.traffic == (
        (target.name, flow.source, flow.destination, flow.bandwidth * 1.5),
    )
    fail_job, = load_jobs(monitor.inbox / fail["file"])
    assert fail_job.traffic == ()
    assert fail_job.failures == FailureSet().mark_link_down(1, 4).to_dict()

    # state.json is exactly the replay of events.jsonl
    assert monitor.state_path.read_bytes() == canonical_state_bytes(
        replay_events(monitor.events_path)
    )
    assert monitor.state.failures.is_empty and not monitor.state.traffic


def test_monitor_restart_replays_its_own_log(tmp_path, fake_clock):
    steps = [{"failures": {"links": [[1, 4], [4, 1]], "switches": []}}]
    first = _monitor(tmp_path, steps, clock=fake_clock)
    first.run(max_polls=1)
    seq_before = first.state.seq
    assert seq_before > 0

    # a new monitor over the same state dir starts where the log ends —
    # the crash-recovery path is the ordinary startup path
    second = _monitor(tmp_path, [{}], clock=FakeClock(start=100.0))
    assert second.state.seq == seq_before
    assert second.state.failures.links == ((1, 4), (4, 1))
    record = second.poll_once()  # observes the heal
    assert record is not None and "up" in record["delta"]
    assert record["seq"] > seq_before
    assert second.state_path.read_bytes() == canonical_state_bytes(
        replay_events(second.events_path)
    )


def test_monitor_validates_observations_before_logging(tmp_path, fake_clock):
    monitor = _monitor(
        tmp_path, [{"traffic": [["ghost", "a", "b", 1.0]]}], clock=fake_clock
    )
    with pytest.raises(SpecificationError, match="unknown use case"):
        monitor.poll_once()
    # nothing reached the log or the inbox
    assert not monitor.events_path.exists()
    assert list(monitor.inbox.glob("*.json")) == []


def test_monitor_recovers_enqueue_lost_in_crash_window(tmp_path, fake_clock):
    steps = [{"failures": {"links": [[1, 4], [4, 1]], "switches": []}}] * 2
    crashed = _monitor(tmp_path, steps, clock=fake_clock)

    # crash (or any exception) between logging the delta events and
    # logging the enqueue: the failure is durable, the repair is not
    def boom(now, delta, traffic_changes):
        raise RuntimeError("crashed before enqueue")

    crashed._enqueue_repair = boom
    with pytest.raises(RuntimeError):
        crashed.poll_once()
    assert crashed.state.last_type == "link_down"
    assert list(crashed.inbox.glob("monitor-*.json")) == []

    # a restarted monitor replays the log, sees it does not end on an
    # enqueue, and enqueues the owed repair before its first probe — even
    # though re-observing the known failure produces no delta
    restarted = _monitor(tmp_path, steps, clock=FakeClock(start=50.0))
    record = restarted.poll_once()
    assert record is not None
    assert record["delta"] == "recovered" and record["action"] == "repair"
    assert restarted.state.last_type == "enqueue"
    job, = load_jobs(restarted.inbox / record["file"])
    assert job.failures == FailureSet().mark_link_down(1, 4).to_dict()
    # the log (enqueue included) still replays byte-identically
    assert restarted.state_path.read_bytes() == canonical_state_bytes(
        replay_events(restarted.events_path)
    )
    # a complete log has nothing to recover
    assert restarted.recover() is None


def test_monitor_rejects_nonpositive_or_nonfinite_bandwidth(
    tmp_path, fake_clock
):
    design = _design()
    target = list(design)[0]
    flow = target.flows[0]
    for bad in (0.0, -1.0, float("inf"), float("nan")):
        observation = Observation(
            failures=FailureSet(),
            traffic=(TrafficEvent(
                target.name, flow.source, flow.destination, bad
            ),),
        )
        monitor = Monitor(
            tmp_path / f"inbox-{bad}", CallbackProbeSource(lambda now: observation),
            UseCaseSource(generator=dict(SPARSE8)),
            provision=(3, 3), clock=fake_clock,
        )
        with pytest.raises(SpecificationError, match="non-positive or "
                                                     "non-finite"):
            monitor.poll_once()
        # the bad reading never reached the log or the inbox
        assert not monitor.events_path.exists()
        assert list(monitor.inbox.glob("monitor-*.json")) == []


def test_probe_script_rejects_nonpositive_or_nonfinite_bandwidth(tmp_path):
    for index, bad in enumerate((0.0, -2.0, float("inf"), float("nan"))):
        with pytest.raises(SerializationError, match="positive and finite"):
            ScriptProbeSource(_write_script(
                tmp_path / f"bad-{index}.json",
                [{"traffic": [["uc", "a", "b", bad]]}],
            ))
    with pytest.raises(SerializationError, match="must be a number"):
        ScriptProbeSource(_write_script(
            tmp_path / "nonnumeric.json",
            [{"traffic": [["uc", "a", "b", "fast"]]}],
        ))


def test_monitor_treats_design_bandwidth_reading_as_no_override(
    tmp_path, fake_clock
):
    design = _design()
    target = list(design)[0]
    flow = target.flows[0]
    at_design = [target.name, flow.source, flow.destination, flow.bandwidth]
    scaled = [target.name, flow.source, flow.destination, flow.bandwidth * 1.5]
    monitor = _monitor(tmp_path, [
        {"traffic": [at_design]},  # at the design value: not an override
        {"traffic": [scaled]},     # a real re-characterisation
        {"traffic": [at_design]},  # back at the design value: revert
    ], clock=fake_clock)

    # a reading equal to the design bandwidth is a steady-state poll:
    # nothing logged, nothing stored, nothing enqueued
    assert monitor.poll_once() is None
    assert not monitor.events_path.exists()
    assert monitor.state.traffic == {}

    record = monitor.poll_once()
    assert record["traffic_changes"] == 1
    assert monitor.state.traffic == {
        (target.name, flow.source, flow.destination): flow.bandwidth * 1.5
    }

    # returning to the design value clears the override (a null-revert
    # traffic event), rather than storing a no-op override forever
    record = monitor.poll_once()
    assert record["traffic_changes"] == 1
    assert monitor.state.traffic == {}
    job, = load_jobs(monitor.inbox / record["file"])
    assert job.traffic == ()


def test_monitor_escalates_unrepairable_to_full_remap(tmp_path, fake_clock):
    # on the minimal 2x2 mesh a failed link is unsurvivable by
    # construction (pinned by test_failures); the monitor must escalate
    script = _write_script(tmp_path / "p.json", [
        {"failures": {"links": [[0, 1], [1, 0]], "switches": []}},
    ])
    monitor = Monitor(
        tmp_path / "inbox", ScriptProbeSource(script),
        UseCaseSource(generator={
            "kind": "spread", "use_case_count": 3, "core_count": 12, "seed": 1,
        }),
        clock=fake_clock,  # no provision: minimal mesh
    )
    record = monitor.poll_once()
    assert record["action"] == "remap"
    assert record["unrepairable"] == ["uc01"]
    job, = load_jobs(monitor.inbox / record["file"])
    assert job.compare_full_remap is True
    assert monitor.state.enqueued[-1]["action"] == "remap"


# --------------------------------------------------------------------- #
# event log robustness
# --------------------------------------------------------------------- #
def test_event_log_forgives_torn_tail_and_rejects_corruption(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.append("link_down", 1.0, {"source": 0, "destination": 1})
    log.append("link_down", 1.0, {"source": 1, "destination": 0})

    # a torn final line — the crashed-writer signature — is skipped
    intact = path.read_text()
    path.write_text(intact + '{"schema": "repro/events@1", "seq": 3, "t"')
    assert replay_events(path).seq == 2

    # mid-file corruption is an error, not a silent half-replay
    lines = intact.splitlines()
    path.write_text("garbage\n" + lines[1] + "\n")
    with pytest.raises(SerializationError, match="undecodable"):
        list(replay_events(path))

    # a sequence gap means lost events: refuse to pretend otherwise
    gapped = json.loads(lines[1])
    assert gapped["seq"] == 2
    path.write_text(json.dumps(gapped, sort_keys=True) + "\n")
    with pytest.raises(SerializationError, match="expected seq 1"):
        list(replay_events(path))

    # a foreign schema is rejected
    foreign = dict(json.loads(lines[0]), schema="other@9")
    path.write_text(json.dumps(foreign, sort_keys=True) + "\n")
    with pytest.raises(SerializationError, match="repro/events@1"):
        list(replay_events(path))

    # a missing file is an empty history
    assert replay_events(tmp_path / "absent.jsonl").seq == 0


def test_event_log_rejects_unknown_event_type(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    with pytest.raises(SerializationError, match="unknown monitor event"):
        log.append("explode", 0.0, {})


def test_event_log_mends_torn_tail_before_appending(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.append("link_down", 1.0, {"source": 0, "destination": 1})
    log.append("link_down", 1.0, {"source": 1, "destination": 0})
    intact = path.read_text()

    # a torn final line must be truncated on open, not appended onto —
    # otherwise the next event concatenates into one undecodable mid-file
    # line and every future replay raises
    path.write_text(intact + '{"schema": "repro/events@1", "seq": 3, "t"')
    reopened = EventLog(path)
    assert reopened.state.seq == 2
    assert path.read_text() == intact
    reopened.append("link_up", 2.0, {"source": 0, "destination": 1})
    reopened.append("link_up", 2.0, {"source": 1, "destination": 0})
    replayed = replay_events(path)
    assert replayed.seq == 4
    assert replayed.failures.is_empty
    assert canonical_state_bytes(replayed) == \
        canonical_state_bytes(reopened.state)


def test_event_log_terminates_valid_unterminated_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.append("link_down", 1.0, {"source": 0, "destination": 1})
    log.append("link_down", 1.0, {"source": 1, "destination": 0})
    intact = path.read_text()

    # the final event is complete JSON but lost its newline: it *was*
    # replayed, so it must be kept — terminated, not truncated
    path.write_text(intact.rstrip("\n"))
    reopened = EventLog(path)
    assert reopened.state.seq == 2
    assert path.read_text() == intact
    reopened.append("switch_down", 2.0, {"index": 5})
    assert replay_events(path).seq == 3


# --------------------------------------------------------------------- #
# traffic deltas splice only the affected groups
# --------------------------------------------------------------------- #
def test_traffic_delta_splices_only_groups_with_changed_use_cases():
    engine = MappingEngine()
    design = _design()
    baseline = engine.mapper.map_with_placement(
        design, Topology.mesh(3, 3), {}, validate=False
    )
    target = list(design)[0]
    flow = target.flows[0]
    updated, changed = apply_traffic(
        design,
        {(target.name, flow.source, flow.destination): flow.bandwidth * 1.5},
    )

    outcome = repair_mapping(
        engine, updated, baseline, FailureSet(), changed_use_cases=changed,
    )
    assert outcome.repaired is not None
    assert outcome.changed_use_cases == (target.name,)
    assert outcome.metrics()["changed_use_cases"] == [target.name]
    # exactly the groups containing the re-characterised use case re-ran
    affected = set(outcome.affected_group_ids)
    for gid, group in enumerate(baseline.groups):
        assert (target.name in group) == (gid in affected)
        if gid in affected:
            continue
        # everything else is spliced through verbatim
        for name in group:
            assert outcome.repaired.configurations[name] \
                is baseline.configurations[name]
    # and the spliced mapping validates clean against the *new* bandwidths
    assert validate_mapping(outcome.repaired, updated).ok


def test_repair_metrics_omit_changed_use_cases_when_empty():
    engine = MappingEngine()
    design = _design()
    baseline = engine.mapper.map_with_placement(
        design, Topology.mesh(3, 3), {}, validate=False
    )
    outcome = repair_mapping(
        engine, design, baseline, FailureSet().mark_link_down(1, 4)
    )
    # hash-stability: traffic-free repairs keep their historical metric shape
    assert "changed_use_cases" not in outcome.metrics()


# --------------------------------------------------------------------- #
# monitor-driven repair == directly-constructed RepairJob (satellite c)
# --------------------------------------------------------------------- #
def test_monitor_job_is_bit_identical_to_direct_repair_job(tmp_path, fake_clock):
    store = tmp_path / "store"
    monitor = _monitor(
        tmp_path,
        [{"failures": {"links": [[1, 4], [4, 1]], "switches": []}}],
        clock=fake_clock, store_path=store,
    )
    record = monitor.poll_once()
    enqueued, = load_jobs(monitor.inbox / record["file"])

    direct = RepairJob(
        use_cases=UseCaseSource(generator=dict(SPARSE8)),
        failures=FailureSet().mark_link_down(1, 4).to_dict(),
        provision=(3, 3),
    )
    # same dataclass, same serialized document, same content hash
    assert enqueued == direct
    assert enqueued.to_dict() == direct.to_dict()
    assert job_hash(enqueued) == job_hash(direct)
    assert monitor.state.enqueued[-1]["job_hash"] == job_hash(direct)

    # the monitor's local repairability probe populated the store, so the
    # serve-side execution of its job is fully warm...
    warm = execute_job(enqueued, store_path=store)
    assert warm.payload["mapped"] is True
    assert warm.stats["engine"]["evaluation_misses"] == 0
    # ...and bit-identical to a cold run of the directly-constructed job
    cold = execute_job(direct)
    assert warm.payload == cold.payload


# --------------------------------------------------------------------- #
# property: randomized sequences replay exactly and end schedulable
# --------------------------------------------------------------------- #
#: candidate failures chosen not to overlap (a downed switch's links are
#: implicitly unusable; keeping the pools disjoint keeps every random
#: combination a valid FailureSet for the 3x3 baseline)
_LINK_POOL = [(0, 1), (1, 4), (3, 4), (7, 8)]
_SWITCH_POOL = [2, 6]


def _random_steps(rng, design, polls):
    """Complete-state probe steps for a random fail/heal/traffic walk."""
    flows = [
        (use_case.name, flow.source, flow.destination, flow.bandwidth)
        for use_case in design for flow in use_case.flows
    ]
    steps = []
    for _ in range(polls):
        links = [pair for pair in _LINK_POOL if rng.random() < 0.4]
        switches = [index for index in _SWITCH_POOL if rng.random() < 0.25]
        overrides = [
            [name, source, destination, bandwidth * rng.uniform(1.05, 1.25)]
            for name, source, destination, bandwidth in rng.sample(flows, 2)
            if rng.random() < 0.6
        ]
        steps.append({
            "failures": {
                "links": [[a, b] for a, b in links]
                         + [[b, a] for a, b in links],
                "switches": switches,
            },
            "traffic": overrides,
        })
    # end on a known-repairable state so the final splice must validate
    steps.append({
        "failures": {"links": [[1, 4], [4, 1]], "switches": []},
        "traffic": steps[-1]["traffic"],
    })
    return steps


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_sequences_replay_byte_identically_and_validate(
    tmp_path, fake_clock, seed
):
    rng = random.Random(seed)
    design = _design()
    steps = _random_steps(rng, design, polls=5)
    monitor = _monitor(tmp_path, steps, clock=fake_clock)
    monitor.run(max_polls=len(steps))

    # replaying the log reconstructs the live monitor's state byte-for-byte
    replayed = replay_events(monitor.events_path)
    assert canonical_state_bytes(replayed) == canonical_state_bytes(monitor.state)
    assert canonical_state_bytes(replayed) == monitor.state_path.read_bytes()
    # and the replayed state matches the final scripted observation
    final = Observation.from_dict(steps[-1])
    assert replayed.failures.content_hash == final.failures.content_hash
    assert replayed.traffic == final.traffic_map()

    # the final spliced mapping fits the final degraded topology cleanly
    engine = MappingEngine()
    baseline = engine.mapper.map_with_placement(
        design, Topology.mesh(3, 3), {}, validate=False
    )
    current, changed = apply_traffic(design, replayed.traffic)
    outcome = repair_mapping(
        engine, current, baseline, replayed.failures,
        changed_use_cases=changed,
    )
    assert outcome.repaired is not None
    report = validate_mapping(outcome.repaired, current)
    assert report.ok, report.issues


# --------------------------------------------------------------------- #
# status surfaces and analysis sweep
# --------------------------------------------------------------------- #
def test_inbox_status_surfaces_monitor_section(tmp_path, fake_clock):
    monitor = _monitor(
        tmp_path,
        [{"failures": {"links": [[1, 4], [4, 1]], "switches": []}}],
        clock=fake_clock,
    )
    monitor.poll_once()

    status = inbox_status(monitor.inbox)
    section = status["monitor"]
    assert section["events"] == monitor.state.seq
    assert section["enqueued"] == 1
    assert section["failures"] == FailureSet().mark_link_down(1, 4).describe()
    assert section["last_enqueued"]["action"] == "repair"

    # a corrupt log degrades to an error string, not a crashed status call
    monitor.events_path.write_text("garbage\ngarbage\n")
    assert "undecodable" in inbox_status(monitor.inbox)["monitor"]["error"]

    # an inbox without a monitor directory has no section at all
    other = tmp_path / "plain-inbox"
    other.mkdir()
    assert "monitor" not in inbox_status(other)


def test_traffic_sweep_reports_headroom():
    from repro.analysis.failures import traffic_sweep

    design = _design()
    rows = traffic_sweep(design, scales=(1.0, 1.2), provision=(3, 3))
    control, scaled = rows
    assert control.scale == 1.0
    assert control.schedulable and control.repaired
    assert control.changed_use_cases == 0 and control.affected_groups == 0
    assert control.cost_delta == pytest.approx(0.0)
    # scaling every flow re-characterises every use case
    assert scaled.changed_use_cases == len(list(design))
    assert scaled.affected_groups == scaled.groups_total
    assert scaled.schedulable
    assert scaled.as_dict()["scale"] == 1.2
