"""Tests for the area/power models, DVS/DFS analysis and the analysis sweeps."""

import pytest

from repro import ConfigurationError, MapperConfig, NoCParameters, UnifiedMapper
from repro.analysis import (
    compare_methods,
    minimum_design_frequency,
    ablation_grouping,
    ablation_routing_policy,
    ablation_slot_table_size,
    ablation_flow_ordering,
    headline_summary,
    normalized_switch_count_study,
    parallel_use_case_study,
    use_case_count_sweep,
)
from repro.gen import generate_benchmark
from repro.noc.topology import Topology
from repro.power import (
    AreaModel,
    PowerModel,
    analyze_dvfs,
    area_frequency_tradeoff,
    noc_area,
    pareto_front,
)
from repro.power.dvfs import minimum_frequency_for_use_case
from repro.power.pareto import ParetoPoint
from repro.units import mhz


# --------------------------------------------------------------------------- #
# area model
# --------------------------------------------------------------------------- #
def test_switch_area_calibration_point():
    model = AreaModel()
    area = model.switch_area(6, mhz(500))
    assert 0.1 < area < 0.3  # ~0.17 mm² for a 6-port Æthereal-class switch


def test_switch_area_grows_with_ports_and_frequency():
    model = AreaModel()
    assert model.switch_area(6, mhz(500)) > model.switch_area(3, mhz(500))
    assert model.switch_area(5, mhz(1000)) > model.switch_area(5, mhz(500))


def test_switch_area_has_floor_at_low_frequency():
    model = AreaModel()
    assert model.switch_area(5, mhz(1)) >= model.minimum_scale * (
        model.base_mm2 + 5 * model.per_port_mm2 + 25 * model.per_port2_mm2
    ) * 0.999


def test_topology_area_sums_switches():
    model = AreaModel()
    mesh = Topology.mesh(2, 2)
    total = model.topology_area(mesh, mhz(500))
    assert total == pytest.approx(4 * model.switch_area(3, mhz(500)))


def test_noc_area_dispatch(figure5_mapping):
    direct = noc_area(figure5_mapping)
    via_topology = noc_area(figure5_mapping.topology, figure5_mapping.params.frequency_hz)
    assert direct == pytest.approx(via_topology)
    with pytest.raises(ConfigurationError):
        noc_area(figure5_mapping.topology)


def test_area_model_validation():
    with pytest.raises(ConfigurationError):
        AreaModel(base_mm2=-1)
    with pytest.raises(ConfigurationError):
        AreaModel(minimum_scale=0)
    with pytest.raises(ConfigurationError):
        AreaModel().switch_area(0, mhz(500))


# --------------------------------------------------------------------------- #
# power model and DVS/DFS
# --------------------------------------------------------------------------- #
def test_traffic_power_scales_with_voltage(figure5_mapping):
    model = PowerModel()
    configuration = figure5_mapping.configuration("uc1")
    nominal = model.traffic_power(configuration)
    half = model.traffic_power(configuration, frequency_hz=mhz(250))
    assert half == pytest.approx(nominal * 0.5)


def test_idle_power_scales_quadratically_with_frequency():
    model = PowerModel()
    mesh = Topology.mesh(2, 2)
    full = model.idle_power(mesh, mhz(500))
    half = model.idle_power(mesh, mhz(250))
    assert half == pytest.approx(full * 0.25)


def test_use_case_power_positive_and_monotonic(figure5_mapping):
    model = PowerModel()
    low = model.use_case_power(figure5_mapping, "uc1", mhz(200))
    high = model.use_case_power(figure5_mapping, "uc1", mhz(500))
    assert 0 < low < high


def test_minimum_frequency_for_use_case_below_design(figure5_mapping):
    frequency = minimum_frequency_for_use_case(figure5_mapping, "uc1")
    assert 0 < frequency <= figure5_mapping.params.frequency_hz


def test_dvfs_analysis_saves_power(figure5_mapping):
    result = analyze_dvfs(figure5_mapping)
    assert result.power_with_dvfs <= result.power_without_dvfs
    assert 0.0 <= result.savings <= 1.0
    assert result.savings_percent == pytest.approx(100 * result.savings)
    for name in figure5_mapping.use_case_names:
        assert result.frequency_of(name) <= figure5_mapping.params.frequency_hz


def test_dvfs_groups_share_frequency(figure5_use_cases):
    result = UnifiedMapper().map(figure5_use_cases, groups=[["uc1", "uc2"]])
    analysis = analyze_dvfs(result)
    assert analysis.frequency_of("uc1") == analysis.frequency_of("uc2")


def test_power_model_validation():
    with pytest.raises(ConfigurationError):
        PowerModel(switch_energy_per_byte=-1)
    with pytest.raises(ConfigurationError):
        PowerModel().voltage_scale(0)


# --------------------------------------------------------------------------- #
# area-frequency trade-off (Figure 7a)
# --------------------------------------------------------------------------- #
def test_area_frequency_tradeoff_shape(figure5_use_cases):
    points = area_frequency_tradeoff(
        figure5_use_cases,
        frequencies=[mhz(100), mhz(500), mhz(1000)],
        params=NoCParameters(max_cores_per_switch=2),
    )
    assert len(points) == 3
    feasible = [point for point in points if point.feasible]
    assert feasible, "expected at least one feasible operating point"
    # Area never increases as the frequency grows (fewer/cheaper... note the
    # area model grows with f, but the switch count shrinks or stays equal,
    # so the *switch count* is monotonically non-increasing).
    counts = [point.switch_count for point in feasible]
    assert counts == sorted(counts, reverse=True)


def test_pareto_front_removes_dominated_points():
    points = [
        ParetoPoint(mhz(100), True, 10, 5.0),
        ParetoPoint(mhz(200), True, 8, 4.0),
        ParetoPoint(mhz(300), True, 8, 4.5),   # dominated by the 200 MHz point
        ParetoPoint(mhz(400), False),
    ]
    front = pareto_front(points)
    assert ParetoPoint(mhz(200), True, 8, 4.0) in front
    assert all(point.feasible for point in front)
    assert not any(point.frequency_hz == mhz(300) for point in front)


# --------------------------------------------------------------------------- #
# analysis: comparisons, frequency search, sweeps
# --------------------------------------------------------------------------- #
def test_compare_methods_reports_ratio(figure5_use_cases):
    comparison = compare_methods(figure5_use_cases)
    assert comparison.unified_switches >= 1
    assert comparison.worst_case_switches >= comparison.unified_switches
    assert 0 < comparison.normalized_switch_count <= 1.0
    row = comparison.as_row()
    assert row["design"] == "figure5"
    assert row["unified_area_mm2"] > 0


def test_compare_methods_handles_worst_case_failure():
    from repro import Flow, UseCase, UseCaseSet
    from repro.units import mbps

    use_cases = UseCaseSet(
        [
            UseCase(f"u{i}", flows=[Flow(f"s{i}{j}", "hub", mbps(350)) for j in range(4)])
            for i in range(4)
        ],
        name="hub-heavy",
    )
    comparison = compare_methods(use_cases)
    assert comparison.unified is not None
    assert comparison.worst_case is None
    assert comparison.normalized_switch_count is None


def test_minimum_design_frequency_monotone(figure5_use_cases):
    low_traffic = minimum_design_frequency(
        figure5_use_cases, frequencies=[mhz(50), mhz(100), mhz(500)]
    )
    assert low_traffic is not None
    assert low_traffic <= mhz(500)


def test_minimum_design_frequency_returns_none_when_impossible(heavy_core_use_case):
    assert (
        minimum_design_frequency(heavy_core_use_case, frequencies=[mhz(100)]) is None
    )


def test_use_case_count_sweep_rows():
    rows = use_case_count_sweep("spread", use_case_counts=(2,), seed=3)
    assert len(rows) == 1
    row = rows[0].as_dict()
    assert row["use_cases"] == 2
    assert row["unified_switches"] >= 1


def test_normalized_switch_count_study_accepts_custom_designs(figure5_use_cases):
    rows = normalized_switch_count_study({"toy": figure5_use_cases})
    assert rows[0].label == "toy"
    assert rows[0]["unified_switches"] >= 1


def test_headline_summary_custom_designs(figure5_use_cases, video_use_cases):
    summary = headline_summary({"toy": figure5_use_cases, "video": video_use_cases})
    assert set(summary["designs"]) == {"toy", "video"}
    assert summary["average_dvfs_savings_percent"] is not None


def test_parallel_use_case_study_monotone_frequency():
    rows = parallel_use_case_study(parallelism_levels=(1, 2), use_case_count=4,
                                   core_count=12, seed=3)
    frequencies = [row["required_frequency_mhz"] for row in rows]
    assert all(f is not None for f in frequencies)
    assert frequencies[0] <= frequencies[1]


def test_ablation_grouping_shared_configuration_is_never_smaller(figure5_use_cases):
    rows = {row.label: row["switch_count"] for row in ablation_grouping(figure5_use_cases)}
    per_uc = rows["per-use-case-configuration"]
    shared = rows["single-shared-configuration"]
    assert per_uc is not None
    assert shared is None or shared >= per_uc


def test_ablation_routing_policy_rows(figure5_use_cases):
    rows = ablation_routing_policy(figure5_use_cases)
    assert {row.label for row in rows} == {"xy", "west_first", "minimal", "k_shortest"}
    assert all(row["switch_count"] is not None for row in rows)


def test_ablation_slot_table_size_smaller_tables_never_help(figure5_use_cases):
    rows = ablation_slot_table_size(figure5_use_cases, sizes=(8, 32))
    by_size = {row["slot_table_size"]: row["switch_count"] for row in rows}
    assert by_size[32] is not None
    if by_size[8] is not None:
        assert by_size[8] >= by_size[32]


def test_ablation_flow_ordering_rows(figure5_use_cases):
    rows = ablation_flow_ordering(figure5_use_cases)
    assert len(rows) == 2
    assert all(row["switch_count"] is not None for row in rows)
