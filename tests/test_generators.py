"""Tests for the benchmark generators (clusters, synthetic Sp/Bot, SoC designs)."""

import random

import pytest

from repro import SpecificationError, UnifiedMapper
from repro.gen import (
    BottleneckBenchmark,
    SpreadBenchmark,
    TrafficCluster,
    default_video_clusters,
    generate_benchmark,
    set_top_box_design,
    standard_designs,
    tv_processor_design,
)
from repro.gen.clusters import pick_cluster
from repro.units import mbps, to_mbps, us


# --------------------------------------------------------------------------- #
# clusters
# --------------------------------------------------------------------------- #
def test_default_clusters_cover_paper_classes():
    clusters = default_video_clusters()
    names = {cluster.name for cluster in clusters}
    assert {"hd_video", "sd_video", "audio", "control"} <= names
    bandwidths = sorted(cluster.bandwidth for cluster in clusters)
    assert bandwidths[0] < mbps(5)          # control / audio are light
    assert bandwidths[-1] >= mbps(100)      # HD video is heavy
    control = next(cluster for cluster in clusters if cluster.name == "control")
    assert control.latency <= us(10)        # control is latency critical


def test_cluster_sampling_within_deviation():
    cluster = TrafficCluster("x", bandwidth=mbps(100), deviation=0.2,
                             latency=us(100), weight=1.0)
    rng = random.Random(0)
    for _ in range(100):
        value = cluster.sample_bandwidth(rng)
        assert mbps(80) - 1 <= value <= mbps(120) + 1


def test_cluster_validation():
    with pytest.raises(SpecificationError):
        TrafficCluster("x", bandwidth=0, deviation=0.1, latency=us(1), weight=1)
    with pytest.raises(SpecificationError):
        TrafficCluster("x", bandwidth=1, deviation=1.5, latency=us(1), weight=1)
    with pytest.raises(SpecificationError):
        pick_cluster([], random.Random(0))


def test_pick_cluster_respects_weights():
    heavy = TrafficCluster("heavy", mbps(10), 0.1, us(1), weight=99.0)
    light = TrafficCluster("light", mbps(1), 0.1, us(1), weight=1.0)
    rng = random.Random(1)
    picks = [pick_cluster([heavy, light], rng).name for _ in range(200)]
    assert picks.count("heavy") > 150


# --------------------------------------------------------------------------- #
# synthetic benchmarks
# --------------------------------------------------------------------------- #
def test_spread_benchmark_structure():
    benchmark = SpreadBenchmark(core_count=20, use_case_count=3,
                                flows_per_use_case=(60, 100), seed=5)
    use_cases = benchmark.generate()
    assert len(use_cases) == 3
    assert len(use_cases.all_cores()) == 20
    for use_case in use_cases:
        assert 60 <= len(use_case) <= 100
        degree = {}
        for flow in use_case:
            degree[flow.source] = degree.get(flow.source, 0) + 1
        assert max(degree.values()) <= benchmark.max_partners


def test_spread_benchmark_is_deterministic():
    first = SpreadBenchmark(use_case_count=2, seed=7).generate()
    second = SpreadBenchmark(use_case_count=2, seed=7).generate()
    for name in first.names:
        assert set(f.pair for f in first[name]) == set(f.pair for f in second[name])
        assert first[name].total_bandwidth() == pytest.approx(second[name].total_bandwidth())


def test_spread_benchmark_seed_changes_traffic():
    first = SpreadBenchmark(use_case_count=2, seed=1).generate()
    second = SpreadBenchmark(use_case_count=2, seed=2).generate()
    pairs_first = {f.pair for f in first[first.names[0]]}
    pairs_second = {f.pair for f in second[second.names[0]]}
    assert pairs_first != pairs_second


def test_bottleneck_benchmark_hubs_attract_most_traffic():
    benchmark = BottleneckBenchmark(core_count=20, use_case_count=2, seed=5)
    use_cases = benchmark.generate()
    hubs = set(benchmark.hub_names())
    for use_case in use_cases:
        hub_flows = [flow for flow in use_case if set(flow.pair) & hubs]
        assert len(hub_flows) >= 0.5 * len(use_case)
    # Hub cores are labelled as memories.
    kinds = {core.name: core.kind for core in use_cases.all_cores()}
    assert all(kinds[name] == "memory" for name in hubs)


def test_per_core_load_respects_feasibility_cap():
    benchmark = BottleneckBenchmark(core_count=20, use_case_count=4, seed=9)
    use_cases = benchmark.generate()
    cap = benchmark.max_core_load
    for use_case in use_cases:
        egress, ingress = {}, {}
        for flow in use_case:
            egress[flow.source] = egress.get(flow.source, 0) + flow.bandwidth
            ingress[flow.destination] = ingress.get(flow.destination, 0) + flow.bandwidth
        assert max(egress.values()) <= cap * 1.0001
        assert max(ingress.values()) <= cap * 1.0001


def test_cluster_per_pair_is_stable_across_use_cases():
    benchmark = SpreadBenchmark(core_count=10, use_case_count=6,
                                flows_per_use_case=(30, 40), seed=11)
    use_cases = benchmark.generate()
    # A pair appearing in several use-cases keeps the same traffic class, so
    # its bandwidths stay within one cluster's range (max/min ratio bounded).
    by_pair = {}
    for use_case in use_cases:
        for flow in use_case:
            by_pair.setdefault(flow.pair, []).append(flow.bandwidth)
    multi = {pair: values for pair, values in by_pair.items() if len(values) >= 3}
    assert multi, "expected at least one recurring pair"
    for values in multi.values():
        assert max(values) / min(values) < 2.5


def test_generate_benchmark_kinds_and_validation():
    assert len(generate_benchmark("sp", 2, seed=1)) == 2
    assert len(generate_benchmark("bot", 2, seed=1)) == 2
    with pytest.raises(SpecificationError):
        generate_benchmark("unknown", 2)


def test_synthetic_benchmark_parameter_validation():
    with pytest.raises(SpecificationError):
        SpreadBenchmark(core_count=1)
    with pytest.raises(SpecificationError):
        SpreadBenchmark(use_case_count=0)
    with pytest.raises(SpecificationError):
        SpreadBenchmark(flows_per_use_case=(0, 10))
    with pytest.raises(SpecificationError):
        SpreadBenchmark(core_count=5, flows_per_use_case=(10, 100))
    with pytest.raises(SpecificationError):
        BottleneckBenchmark(hub_count=0)
    with pytest.raises(SpecificationError):
        BottleneckBenchmark(hub_fraction=0.0)


def test_synthetic_use_cases_are_individually_mappable():
    """Every generated use-case must be feasible on its own (paper's premise)."""
    use_cases = generate_benchmark("spread", 2, seed=13)
    single = use_cases.subset([use_cases.names[0]])
    result = UnifiedMapper().map(single)
    assert result.switch_count >= 1


# --------------------------------------------------------------------------- #
# SoC designs
# --------------------------------------------------------------------------- #
def test_standard_designs_match_paper_use_case_counts():
    designs = standard_designs()
    assert set(designs) == {"D1", "D2", "D3", "D4"}
    assert designs["D1"].use_case_count == 4
    assert designs["D2"].use_case_count == 20
    assert designs["D3"].use_case_count == 8
    assert designs["D4"].use_case_count == 20


def test_set_top_box_traffic_is_memory_centric():
    design = set_top_box_design(use_case_count=4)
    for use_case in design.use_cases:
        through_memory = sum(
            flow.bandwidth for flow in use_case if "ext_mem" in flow.pair
        )
        assert through_memory >= 0.6 * use_case.total_bandwidth()


def test_tv_processor_traffic_is_spread():
    design = tv_processor_design(use_case_count=8)
    for use_case in design.use_cases:
        egress, ingress = {}, {}
        for flow in use_case:
            egress[flow.source] = egress.get(flow.source, 0) + flow.bandwidth
            ingress[flow.destination] = ingress.get(flow.destination, 0) + flow.bandwidth
        heaviest = max(max(egress.values()), max(ingress.values()))
        # No single core dominates a TV-processor use-case the way the
        # external memory dominates the set-top box (where it exceeds 60 %).
        assert heaviest <= 0.8 * use_case.total_bandwidth()


def test_soc_designs_are_deterministic():
    first = set_top_box_design(use_case_count=6, seed=3)
    second = set_top_box_design(use_case_count=6, seed=3)
    for name in first.use_cases.names:
        assert first.use_cases[name].total_bandwidth() == pytest.approx(
            second.use_cases[name].total_bandwidth()
        )


def test_soc_design_properties():
    design = tv_processor_design(use_case_count=3)
    assert design.core_count == 20
    assert design.use_case_count == 3
    assert "tv" in design.description.lower() or "TV" in design.description


def test_soc_design_validation():
    with pytest.raises(SpecificationError):
        set_top_box_design(use_case_count=0)
    with pytest.raises(SpecificationError):
        tv_processor_design(use_case_count=0)


def test_soc_designs_are_mappable():
    design = set_top_box_design(use_case_count=4)
    result = UnifiedMapper().map(design.use_cases)
    assert result.switch_count >= 1
