"""Fault-injection hardening of the job-directory service.

Pins the robustness contracts of the ISSUE:

* deterministic :class:`FaultInjector` draws — the same (seed, file,
  attempt) always injects the same fault, and retries re-draw;
* transient faults (kills, corrupted results files) are absorbed by the
  bounded retry-with-backoff loop and the file still lands in ``done/``;
* persistent faults exhaust ``max_attempts`` and quarantine the file in
  ``failed/`` with the full per-attempt error history;
* randomized crash/corrupt injection over a 20-job inbox always converges:
  every file ends in ``done/`` or ``failed/``, with exactly one terminal
  manifest record each and a parseable results file per success;
* isolated mode (``job_timeout_s``) reaps hung executions in a child
  process and otherwise reproduces in-process results; and
* ``inbox_status`` / ``serve --status`` surface the new ``retries`` and
  ``quarantined`` sections.
"""

from __future__ import annotations

import json

import pytest

from repro.jobs import (
    DesignFlowJob,
    FaultInjector,
    JobDirectoryService,
    UseCaseSource,
    inbox_status,
    save_job,
)
from repro.jobs.cli import main as cli_main

#: cheap, deterministic workload — maps in ~10ms
SMALL = UseCaseSource(
    generator={"kind": "spread", "use_case_count": 3, "core_count": 12, "seed": 1}
)


def _submit(inbox, name="job.json", seed=1):
    inbox.mkdir(parents=True, exist_ok=True)
    source = UseCaseSource(generator={
        "kind": "spread", "use_case_count": 3, "core_count": 12, "seed": seed,
    })
    save_job(DesignFlowJob(use_cases=source), inbox / name)


def _find_seed(predicate, **rates):
    """The first injector seed whose attempt-1/2 actions match a scenario."""
    for seed in range(2000):
        injector = FaultInjector(seed=seed, **rates)
        if predicate(injector):
            return injector
    raise AssertionError("no seed matches the scenario")  # pragma: no cover


# --------------------------------------------------------------------- #
# the injector itself
# --------------------------------------------------------------------- #
def test_injector_draws_are_deterministic_and_per_attempt():
    injector = FaultInjector(kill_rate=0.3, hang_rate=0.2, corrupt_rate=0.1, seed=9)
    assert injector.draw("a.json:1") == injector.draw("a.json:1")
    assert injector.draw("a.json:1") != injector.draw("a.json:2")
    assert injector.action("a.json:1") in {"kill", "hang", "corrupt", None}

    counts = {"kill": 0, "hang": 0, "corrupt": 0, None: 0}
    for index in range(2000):
        counts[injector.action(f"f{index}.json:1")] += 1
    assert 450 < counts["kill"] < 750       # ~30% of 2000
    assert 280 < counts["hang"] < 530       # ~20%
    assert 110 < counts["corrupt"] < 310    # ~10%


def test_injector_from_env_and_validation():
    assert FaultInjector.from_env({}) is None
    assert FaultInjector.from_env({"REPRO_FAULT_KILL_RATE": "0"}) is None
    injector = FaultInjector.from_env({
        "REPRO_FAULT_KILL_RATE": "0.25",
        "REPRO_FAULT_CORRUPT_RATE": "0.5",
        "REPRO_FAULT_SEED": "4",
        "REPRO_FAULT_HANG_S": "0.1",
    })
    assert injector == FaultInjector(
        kill_rate=0.25, corrupt_rate=0.5, seed=4, hang_s=0.1
    )
    with pytest.raises(ValueError, match="sum to at most"):
        FaultInjector(kill_rate=0.8, corrupt_rate=0.4)


# --------------------------------------------------------------------- #
# retry and quarantine
# --------------------------------------------------------------------- #
def test_persistent_kill_quarantines_after_max_attempts(tmp_path, fake_clock):
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=3, retry_backoff_s=0.2,
        fault_injector=FaultInjector(kill_rate=1.0), clock=fake_clock,
    )
    records = service.run_once()

    # the real exponential backoff schedule ran — in virtual time
    assert fake_clock.sleeps == [0.2, 0.4]

    assert len(records) == 1
    record = records[0]
    assert record["status"] == "failed"
    assert record["attempts"] == 3
    assert record["quarantined"] is True
    assert len(record["attempt_errors"]) == 3
    assert all("InjectedFault" in error for error in record["attempt_errors"])
    assert (service.failed_dir / "job.json").exists()
    assert not list(service.results_dir.glob("*.json"))

    status = inbox_status(inbox)
    assert status["retries"] == {"files_retried": 1, "extra_attempts": 2}
    assert [entry["file"] for entry in status["quarantined"]] == ["job.json"]
    assert status["quarantined"][0]["attempts"] == 3


def test_transient_corruption_is_absorbed_by_retry(tmp_path):
    injector = _find_seed(
        lambda inj: inj.action("job.json:1") == "corrupt"
        and inj.action("job.json:2") is None,
        corrupt_rate=0.5,
    )
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=3, retry_backoff_s=0.0, fault_injector=injector
    )
    records = service.run_once()

    assert len(records) == 1
    record = records[0]
    assert record["status"] == "done"
    assert record["attempts"] == 2
    assert len(record["attempt_errors"]) == 1
    assert (service.done_dir / "job.json").exists()
    envelopes = json.loads((inbox / record["results"]).read_text())
    assert len(envelopes) == 1 and envelopes[0]["payload"]["mapped"]


def test_transient_kill_then_success(tmp_path):
    injector = _find_seed(
        lambda inj: inj.action("job.json:1") == "kill"
        and inj.action("job.json:2") is None,
        kill_rate=0.5,
    )
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=2, retry_backoff_s=0.0, fault_injector=injector
    )
    records = service.run_once()
    assert records[0]["status"] == "done"
    assert records[0]["attempts"] == 2
    assert "InjectedFault" in records[0]["attempt_errors"][0]


def test_deterministic_job_errors_never_retry(tmp_path):
    inbox = tmp_path / "inbox"
    inbox.mkdir(parents=True)
    (inbox / "bad.json").write_text(json.dumps({"kind": "no-such-kind"}))
    service = JobDirectoryService(
        inbox, max_attempts=3, retry_backoff_s=0.0,
        fault_injector=FaultInjector(corrupt_rate=1.0),
    )
    records = service.run_once()
    record = records[0]
    assert record["status"] == "failed"
    assert record["attempts"] == 1            # load errors are deterministic
    assert "quarantined" not in record
    assert "unknown job kind" in record["error"]


# --------------------------------------------------------------------- #
# randomized convergence (satellite d)
# --------------------------------------------------------------------- #
def test_randomized_injection_over_20_jobs_always_converges(tmp_path):
    inbox = tmp_path / "inbox"
    names = [f"job-{index:02d}.json" for index in range(20)]
    for index, name in enumerate(names):
        _submit(inbox, name=name, seed=index % 5)

    service = JobDirectoryService(
        inbox, max_attempts=3, retry_backoff_s=0.0,
        cache_dir=tmp_path / "cache",
        fault_injector=FaultInjector(kill_rate=0.3, corrupt_rate=0.2, seed=7),
    )
    records = service.run_once()

    # converged: nothing pending or stuck in running/
    assert service.pending() == []
    assert list(service.running_dir.glob("*.json")) == []

    # exactly one terminal manifest record per submitted file — no
    # duplicates, no losses
    assert sorted(record["file"] for record in records) == names
    manifest = [json.loads(line)
                for line in service.manifest_path.read_text().splitlines()]
    assert manifest == records

    done = {record["file"] for record in records if record["status"] == "done"}
    failed = {record["file"] for record in records if record["status"] == "failed"}
    assert done | failed == set(names) and not (done & failed)
    assert {path.name for path in service.done_dir.glob("*.json")} == done
    assert {path.name for path in service.failed_dir.glob("*.json")} == failed

    for record in records:
        if record["status"] == "done":
            envelopes = json.loads((inbox / record["results"]).read_text())
            assert len(envelopes) == 1
            assert envelopes[0]["payload"]["mapped"] is True
        else:
            assert record["quarantined"] is True
            assert record["attempts"] == 3

    # with kill 30% + corrupt 20% per attempt, three attempts make almost
    # every file converge to done; assert the split is not degenerate
    assert len(done) >= 10
    assert len(failed) >= 1


def test_in_process_hang_runs_in_virtual_time(tmp_path, fake_clock):
    # A persistent 45 s hang retried once with 0.5 s backoff is a ~90 s
    # scenario on the wall clock; on the fake clock it is instantaneous,
    # and the exact sleep schedule the service asked for is assertable.
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=2, retry_backoff_s=0.5,
        fault_injector=FaultInjector(hang_rate=1.0, hang_s=45.0),
        clock=fake_clock,
    )
    records = service.run_once()
    record = records[0]
    assert record["status"] == "failed"
    assert record["quarantined"] is True
    assert all("InjectedFault" in error for error in record["attempt_errors"])
    assert fake_clock.sleeps == [45.0, 0.5, 45.0]
    assert fake_clock.now() == 90.5


def test_fault_env_does_not_leak_between_tests(tmp_path):
    # Regression: REPRO_FAULT_* exported by a test (e.g. one whose forked
    # child was reaped on a timeout before cleanup) used to leak into every
    # later service construction.  The autouse _scoped_fault_env fixture
    # snapshots and clears them per test, so a service built here must see
    # a clean environment even though the previous test set the variables
    # via monkeypatch and this file's CLI test exports them for real.
    import os

    assert not [key for key in os.environ if key.startswith("REPRO_FAULT_")]
    service = JobDirectoryService(tmp_path / "inbox")
    assert service.fault_injector is None

    # variables set *during* a test are scrubbed by the fixture's teardown
    # even when the test never unsets them (the crash-on-timeout case)
    os.environ["REPRO_FAULT_KILL_RATE"] = "1.0"


def test_fault_env_was_scrubbed_after_previous_test(tmp_path):
    # Runs immediately after the test above, which deliberately left
    # REPRO_FAULT_KILL_RATE=1.0 exported without cleaning up.
    import os

    assert "REPRO_FAULT_KILL_RATE" not in os.environ
    assert JobDirectoryService(tmp_path / "inbox").fault_injector is None


# --------------------------------------------------------------------- #
# isolated mode (job_timeout_s)
# --------------------------------------------------------------------- #
def test_isolated_mode_reaps_hung_jobs(tmp_path):
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=2, retry_backoff_s=0.0, job_timeout_s=0.5,
        fault_injector=FaultInjector(hang_rate=1.0, hang_s=30.0),
    )
    records = service.run_once()
    record = records[0]
    assert record["status"] == "failed"
    assert record["attempts"] == 2
    assert record["quarantined"] is True
    assert all("TimeoutError" in error for error in record["attempt_errors"])
    # no half-written results leak
    assert list(service.results_dir.iterdir()) == []


def test_isolated_mode_clean_run_matches_in_process(tmp_path):
    _submit(tmp_path / "in-process")
    _submit(tmp_path / "isolated")
    plain = JobDirectoryService(tmp_path / "in-process")
    boxed = JobDirectoryService(tmp_path / "isolated", job_timeout_s=60.0)
    plain_record, = plain.run_once()
    boxed_record, = boxed.run_once()
    assert plain_record["status"] == boxed_record["status"] == "done"
    assert boxed_record["attempts"] == 1
    plain_env = json.loads((plain.inbox / plain_record["results"]).read_text())
    boxed_env = json.loads((boxed.inbox / boxed_record["results"]).read_text())
    assert plain_env[0]["payload"] == boxed_env[0]["payload"]


def test_isolated_mode_injected_kill_is_retried(tmp_path):
    injector = _find_seed(
        lambda inj: inj.action("job.json:1") == "kill"
        and inj.action("job.json:2") is None,
        kill_rate=0.5,
    )
    inbox = tmp_path / "inbox"
    _submit(inbox)
    service = JobDirectoryService(
        inbox, max_attempts=2, retry_backoff_s=0.0, job_timeout_s=60.0,
        fault_injector=injector,
    )
    records = service.run_once()
    assert records[0]["status"] == "done"
    assert records[0]["attempts"] == 2


# --------------------------------------------------------------------- #
# status surfaces (satellite b)
# --------------------------------------------------------------------- #
def test_serve_status_cli_prints_retries_and_quarantine(tmp_path, capsys):
    inbox = tmp_path / "inbox"
    _submit(inbox)
    JobDirectoryService(
        inbox, max_attempts=2, retry_backoff_s=0.0,
        fault_injector=FaultInjector(kill_rate=1.0),
    ).run_once()

    code = cli_main(["serve", str(inbox), "--status"])
    captured = capsys.readouterr()
    assert code == 0
    assert "retries: 1 file(s) retried, 1 extra attempt(s)" in captured.out
    assert "[quarantined] job.json" in captured.out


def test_serve_cli_picks_up_fault_env(tmp_path, capsys, monkeypatch):
    inbox = tmp_path / "inbox"
    _submit(inbox)
    monkeypatch.setenv("REPRO_FAULT_KILL_RATE", "1.0")
    monkeypatch.setenv("REPRO_FAULT_SEED", "3")
    code = cli_main([
        "serve", str(inbox), "--once", "--max-attempts", "2",
        "--retry-backoff", "0",
    ])
    captured = capsys.readouterr()
    assert code == 1  # failures happened
    assert "[quarantined] job.json" in captured.out
    assert "(2 attempt(s))" in captured.out
