"""Tests for the unified multi-use-case mapper (Algorithm 2) and the WC baseline."""

import pytest

from repro import (
    Flow,
    MapperConfig,
    MappingError,
    NoCParameters,
    SpecificationError,
    UnifiedMapper,
    UseCase,
    UseCaseSet,
    WorstCaseMapper,
    build_worst_case_use_case,
    map_use_cases,
)
from repro.core.mapping import GroupRequirement
from repro.core.switching import SwitchingGraph
from repro.units import mbps, mhz, us


# --------------------------------------------------------------------------- #
# GroupRequirement aggregation
# --------------------------------------------------------------------------- #
def test_group_requirement_takes_max_bandwidth_min_latency():
    uc1 = UseCase("u1", flows=[Flow("a", "b", mbps(10), latency=us(100))])
    uc2 = UseCase("u2", flows=[Flow("a", "b", mbps(40), latency=us(10)),
                               Flow("b", "c", mbps(5))])
    requirement = GroupRequirement(0, [uc1, uc2])
    req = requirement.requirement_for(("a", "b"))
    assert req.bandwidth == pytest.approx(mbps(40))
    assert req.latency == pytest.approx(us(10))
    assert requirement.requirement_for(("b", "c")) is not None
    assert requirement.requirement_for(("c", "a")) is None
    egress, ingress = requirement.core_loads()
    assert egress["a"] == pytest.approx(mbps(40))
    assert ingress["c"] == pytest.approx(mbps(5))


# --------------------------------------------------------------------------- #
# basic mapping behaviour
# --------------------------------------------------------------------------- #
def test_figure5_example_maps_and_covers_every_flow(figure5_mapping, figure5_use_cases):
    result = figure5_mapping
    assert result.method == "unified"
    assert result.switch_count >= 1
    assert set(result.core_mapping) == {"C1", "C2", "C3", "C4"}
    for use_case in figure5_use_cases:
        configuration = result.configuration(use_case.name)
        assert len(configuration) == len(use_case)
        for flow in use_case:
            allocation = configuration.allocation_for(flow.source, flow.destination)
            assert allocation is not None
            assert allocation.switch_path[0] == result.switch_of(flow.source)
            assert allocation.switch_path[-1] == result.switch_of(flow.destination)


def test_same_core_mapping_shared_across_use_cases(figure5_mapping):
    """The paper requires a single core-to-NoC mapping for all use-cases."""
    result = figure5_mapping
    for configuration in result.configurations.values():
        for allocation in configuration:
            assert result.switch_of(allocation.flow.source) == allocation.switch_path[0]
            assert result.switch_of(allocation.flow.destination) == allocation.switch_path[-1]


def test_mapping_grows_topology_when_switch_limit_is_tight(figure5_use_cases):
    params = NoCParameters(max_cores_per_switch=1)
    result = UnifiedMapper(params=params).map(figure5_use_cases)
    assert result.switch_count >= 4
    occupancy = {}
    for switch in result.core_mapping.values():
        occupancy[switch] = occupancy.get(switch, 0) + 1
    assert max(occupancy.values()) == 1


def test_attempted_topologies_recorded(figure5_use_cases):
    params = NoCParameters(max_cores_per_switch=2)
    result = UnifiedMapper(params=params).map(figure5_use_cases)
    assert result.attempted_topologies[-1] == result.topology.name
    assert len(result.attempted_topologies) >= 1


def test_isolated_cores_are_still_placed():
    uc = UseCase("u1", flows=[Flow("a", "b", mbps(10))])
    uc.add_core(__import__("repro").Core("idle"))
    result = map_use_cases(UseCaseSet([uc]))
    assert "idle" in result.core_mapping


def test_mapping_fails_when_single_flow_exceeds_link_capacity():
    uc = UseCase("u1", flows=[Flow("a", "b", mbps(3000))])  # > 2 GB/s link
    with pytest.raises(MappingError):
        map_use_cases(UseCaseSet([uc]))


def test_mapping_fails_when_core_oversubscribed_regardless_of_topology():
    flows = [Flow(f"s{i}", "hub", mbps(400)) for i in range(6)]  # 2.4 GB/s into hub
    with pytest.raises(MappingError) as error:
        map_use_cases(UseCaseSet([UseCase("u1", flows=flows)]))
    assert "hub" in str(error.value)


def test_quick_infeasibility_check_can_be_disabled():
    flows = [Flow(f"s{i}", "hub", mbps(400)) for i in range(6)]
    config = MapperConfig(enable_quick_infeasibility_check=False, max_switches=9)
    with pytest.raises(MappingError) as error:
        map_use_cases(UseCaseSet([UseCase("u1", flows=flows)]), config=config)
    # Without the quick check the mapper exhausts the topology schedule.
    assert error.value.largest_topology is not None


def test_latency_constraint_forces_short_paths():
    params = NoCParameters(max_cores_per_switch=1)
    tight = us(0.05)  # 25 cycles at 500 MHz: only a few hops are affordable
    uc = UseCase(
        "u1",
        flows=[
            Flow("a", "b", mbps(500), latency=tight),
            Flow("b", "c", mbps(400)),
            Flow("c", "d", mbps(300)),
        ],
    )
    result = map_use_cases(UseCaseSet([uc]), params=params)
    allocation = result.configuration("u1").allocation_for("a", "b")
    from repro.perf.latency import worst_case_latency

    bound = worst_case_latency(allocation.hop_count, max(allocation.slots_per_link, 1),
                               result.params)
    assert bound <= tight


def test_unsatisfiable_latency_raises():
    params = NoCParameters(frequency_hz=mhz(100))
    uc = UseCase("u1", flows=[Flow("a", "b", mbps(100), latency=1e-9)])
    with pytest.raises(MappingError):
        map_use_cases(UseCaseSet([uc]), params=params)


def test_groups_share_paths_and_slots(figure5_use_cases):
    graph = SwitchingGraph.from_use_case_set(figure5_use_cases)
    graph.require_smooth_switching("uc1", "uc2")
    result = UnifiedMapper().map(figure5_use_cases, switching_graph=graph)
    assert len(result.groups) == 1
    alloc1 = result.configuration("uc1").allocation_for("C3", "C4")
    alloc2 = result.configuration("uc2").allocation_for("C3", "C4")
    assert alloc1.switch_path == alloc2.switch_path
    assert dict(alloc1.link_slots) == dict(alloc2.link_slots)


def test_separate_groups_may_use_different_paths(figure5_use_cases):
    result = UnifiedMapper(params=NoCParameters(max_cores_per_switch=1)).map(
        figure5_use_cases
    )
    assert len(result.groups) == 2
    # Paths may differ between groups (no requirement that they do, but the
    # slot tables are accounted independently: no cross-group conflict check).
    assert result.reconfigurable_pairs() == 1


def test_explicit_groups_validated(figure5_use_cases):
    with pytest.raises(SpecificationError):
        UnifiedMapper().map(figure5_use_cases, groups=[["uc1", "nope"]])
    with pytest.raises(SpecificationError):
        UnifiedMapper().map(figure5_use_cases, groups=[["uc1"], ["uc1", "uc2"]])


def test_groups_and_switching_graph_are_mutually_exclusive(figure5_use_cases):
    graph = SwitchingGraph.from_use_case_set(figure5_use_cases)
    with pytest.raises(Exception):
        UnifiedMapper().map(figure5_use_cases, groups=[["uc1"]], switching_graph=graph)


def test_missing_use_cases_get_singleton_groups(figure5_use_cases):
    result = UnifiedMapper().map(figure5_use_cases, groups=[["uc1"]])
    assert frozenset({"uc2"}) in result.groups


def test_ring_topology_kind(figure5_use_cases):
    params = NoCParameters(topology_kind="ring", max_cores_per_switch=1)
    result = UnifiedMapper(params=params).map(figure5_use_cases)
    assert result.topology.kind == "ring"
    assert result.switch_count >= 4


def test_map_with_placement_roundtrip(figure5_use_cases, figure5_mapping):
    mapper = UnifiedMapper(params=figure5_mapping.params, config=figure5_mapping.config)
    replay = mapper.map_with_placement(
        figure5_use_cases,
        figure5_mapping.topology,
        figure5_mapping.core_mapping,
        groups=[list(group) for group in figure5_mapping.groups],
    )
    assert replay.core_mapping == figure5_mapping.core_mapping
    assert replay.switch_count == figure5_mapping.switch_count


def test_map_with_placement_rejects_infeasible_placement(figure5_use_cases):
    params = NoCParameters(max_cores_per_switch=1)
    mapper = UnifiedMapper(params=params)
    from repro.noc.topology import Topology

    topology = Topology.mesh(2, 2)
    placement = {"C1": 0, "C2": 0, "C3": 1, "C4": 2}  # violates the NI limit
    with pytest.raises(MappingError):
        mapper.map_with_placement(figure5_use_cases, topology, placement)


def test_mapping_is_deterministic(figure5_use_cases):
    first = UnifiedMapper().map(figure5_use_cases)
    second = UnifiedMapper().map(figure5_use_cases)
    assert first.core_mapping == second.core_mapping
    assert first.switch_count == second.switch_count


# --------------------------------------------------------------------------- #
# worst-case baseline
# --------------------------------------------------------------------------- #
def test_worst_case_use_case_takes_per_pair_maximum(figure5_use_cases):
    worst = build_worst_case_use_case(figure5_use_cases)
    assert len(worst) == 3
    assert worst.flow_between("C3", "C4").bandwidth == pytest.approx(mbps(100))
    assert worst.flow_between("C1", "C2").bandwidth == pytest.approx(mbps(42))
    assert worst.flow_between("C2", "C3").bandwidth == pytest.approx(mbps(75))


def test_worst_case_use_case_takes_min_latency():
    uc1 = UseCase("u1", flows=[Flow("a", "b", mbps(10), latency=us(100))])
    uc2 = UseCase("u2", flows=[Flow("a", "b", mbps(5), latency=us(10))])
    worst = build_worst_case_use_case(UseCaseSet([uc1, uc2]))
    assert worst.flow_between("a", "b").latency == pytest.approx(us(10))


def test_worst_case_mapper_never_beats_unified(figure5_use_cases):
    unified = UnifiedMapper().map(figure5_use_cases)
    worst = WorstCaseMapper().map(figure5_use_cases)
    assert worst.method == "worst_case"
    assert unified.switch_count <= worst.switch_count


def test_worst_case_fails_when_aggregate_exceeds_core_capacity():
    use_cases = UseCaseSet(
        [
            UseCase(f"u{i}", flows=[Flow(f"s{i}{j}", "hub", mbps(350)) for j in range(4)])
            for i in range(4)
        ]
    )
    # Each use-case alone needs 1.4 GB/s into the hub (feasible); the
    # worst-case union needs 5.6 GB/s (infeasible at any topology size).
    UnifiedMapper().map(use_cases)
    with pytest.raises(MappingError):
        WorstCaseMapper().map(use_cases)
