"""Tests for per-use-case resource state, routing and deadlock helpers."""

import pytest

from repro import MapperConfig, NoCParameters, ResourceError, RoutingError, TopologyError
from repro.noc.deadlock import (
    channel_dependency_graph,
    is_deadlock_free,
    is_west_first_path,
    is_xy_path,
)
from repro.noc.resources import INFEASIBLE_COST, ResourceState
from repro.noc.routing import PathSelector, mesh_minimal_paths, xy_path
from repro.noc.topology import Topology
from repro.units import mbps


@pytest.fixture
def mesh():
    return Topology.mesh(2, 2)


@pytest.fixture
def state(mesh, params):
    state = ResourceState(mesh, params, name="uc")
    state.attach_core("a", 0)
    state.attach_core("b", 3)
    state.attach_core("c", 1)
    return state


# --------------------------------------------------------------------------- #
# ResourceState
# --------------------------------------------------------------------------- #
def test_initial_residuals_equal_capacity(state, params):
    for link in state.topology.links:
        assert state.link_residual(link) == pytest.approx(params.link_capacity)
    assert state.ingress_residual("a") == pytest.approx(params.link_capacity)
    assert state.max_link_utilization() == 0.0


def test_attach_core_idempotent_and_conflicting(state):
    state.attach_core("a", 0)  # same switch: fine
    with pytest.raises(ResourceError):
        state.attach_core("a", 1)


def test_attach_core_respects_switch_limit(mesh):
    params = NoCParameters(max_cores_per_switch=1)
    state = ResourceState(mesh, params)
    state.attach_core("a", 0)
    with pytest.raises(ResourceError):
        state.attach_core("b", 0)


def test_attach_core_unknown_switch(state):
    with pytest.raises(TopologyError):
        state.attach_core("z", 99)


def test_reserve_replans_when_tables_mutated_after_can_reserve(state, params):
    # The can_reserve -> reserve plan cache must not hand out a stale
    # assignment when the live table was mutated in between through the
    # public slot_table() accessor.
    path = (0, 1, 3)
    bandwidth = params.link_capacity / params.slot_table_size * 2  # 2 slots
    assert state.can_reserve("a", "b", path, bandwidth)
    external = state.slot_table((0, 1)).reserve("ext", [0, 1])
    reservation = state.reserve("f1", "a", "b", path, bandwidth)
    # The external reservation survives untouched and f1 got different slots.
    assert state.slot_table((0, 1)).slots_owned_by("ext") == (0, 1)
    assert not set(reservation.link_slots[(0, 1)]) & {0, 1}
    state.slot_table((0, 1)).release(external)


def test_reserve_updates_residuals_and_slots(state, params):
    path = (0, 1, 3)
    reservation = state.reserve("f1", "a", "b", path, mbps(250))
    assert state.link_residual((0, 1)) == pytest.approx(params.link_capacity - mbps(250))
    assert state.ingress_residual("a") == pytest.approx(params.link_capacity - mbps(250))
    assert state.egress_residual("b") == pytest.approx(params.link_capacity - mbps(250))
    expected_slots = state.slots_for_bandwidth(mbps(250))
    assert reservation.slots_per_link == expected_slots
    assert state.slot_table((0, 1)).used_count == expected_slots
    # Pipelined: the second link's slots are the first's shifted by one.
    size = params.slot_table_size
    first = reservation.link_slots[(0, 1)]
    second = reservation.link_slots[(1, 3)]
    assert sorted((slot + 1) % size for slot in first) == sorted(second)


def test_release_restores_everything(state, params):
    reservation = state.reserve("f1", "a", "b", (0, 1, 3), mbps(500))
    state.release(reservation)
    assert state.link_residual((0, 1)) == pytest.approx(params.link_capacity)
    assert state.slot_table((0, 1)).free_count == params.slot_table_size
    assert state.ingress_residual("a") == pytest.approx(params.link_capacity)
    with pytest.raises(ResourceError):
        state.release(reservation)


def test_release_accepts_copied_and_equal_reservations(state, params):
    # O(1) identity release must keep the historical equality semantics: a
    # reservation carried into a copy (same object) and an equal-but-distinct
    # record both release fine; a never-held one still raises.
    reservation = state.reserve("f1", "a", "b", (0, 1, 3), mbps(500))
    duplicate = state.copy("dup")
    duplicate.release(reservation)  # same object held by the copy
    assert duplicate.link_residual((0, 1)) == pytest.approx(params.link_capacity)

    from repro.noc.resources import PathReservation

    equal = PathReservation(
        flow_id=reservation.flow_id,
        source_core=reservation.source_core,
        destination_core=reservation.destination_core,
        switch_path=reservation.switch_path,
        bandwidth=reservation.bandwidth,
        link_slots=dict(reservation.link_slots),
        guaranteed=reservation.guaranteed,
    )
    state.release(equal)  # equality fallback
    assert state.link_residual((0, 1)) == pytest.approx(params.link_capacity)
    with pytest.raises(ResourceError):
        state.release(equal)


def test_release_is_constant_time_under_many_reservations(state):
    # Smoke-check the dict-backed bookkeeping: release from the middle of a
    # large reservation population and confirm exact accounting.
    held = [
        state.reserve(f"f{i}", "a", "b", (0, 1, 3), mbps(1), guaranteed=False)
        for i in range(200)
    ]
    for reservation in held[50:150]:
        state.release(reservation)
    assert len(state.reservations) == 100


def test_reserve_unrecorded_matches_reserve(mesh, params):
    recorded = ResourceState(mesh, params, name="recorded")
    unrecorded = ResourceState(mesh, params, name="unrecorded")
    for s in (recorded, unrecorded):
        s.attach_core("a", 0)
        s.attach_core("b", 3)
    reservation = recorded.reserve("f1", "a", "b", (0, 1, 3), mbps(500))
    assignment = unrecorded.reserve_unrecorded("f1", "a", "b", (0, 1, 3), mbps(500))
    assert assignment == dict(reservation.link_slots)
    for link in mesh.links:
        assert unrecorded.link_residual(link) == recorded.link_residual(link)
        assert (unrecorded.slot_table(link).free_mask
                == recorded.slot_table(link).free_mask)
    # Infeasible: None instead of raising, state untouched.
    assert unrecorded.reserve_unrecorded(
        "f2", "a", "b", (0, 1, 3), params.link_capacity
    ) is None
    assert len(unrecorded.reservations) == 0  # never recorded


def test_same_switch_reservation_uses_no_links(state):
    state.attach_core("d", 0)
    reservation = state.reserve("f1", "a", "d", (0,), mbps(100))
    assert reservation.hop_count == 0
    assert reservation.link_slots == {}
    assert state.max_link_utilization() == 0.0


def test_reserve_rejects_overcommitted_bandwidth(state, params):
    state.reserve("f1", "a", "b", (0, 1, 3), params.link_capacity * 0.9)
    assert not state.can_reserve("a", "b", (0, 1, 3), params.link_capacity * 0.2)
    with pytest.raises(ResourceError):
        state.reserve("f2", "a", "b", (0, 1, 3), params.link_capacity * 0.2)


def test_reserve_checks_endpoint_switches(state):
    # Path must start/end at the cores' switches.
    assert not state.can_reserve("a", "b", (1, 3), mbps(10))
    assert not state.can_reserve("a", "b", (0, 2), mbps(10))


def test_reserve_best_effort_skips_slot_tables(state):
    reservation = state.reserve("f1", "a", "b", (0, 1, 3), mbps(300), guaranteed=False)
    assert reservation.link_slots == {}
    assert state.slot_table((0, 1)).used_count == 0
    # Bandwidth is still accounted for.
    assert state.link_residual((0, 1)) < state.params.link_capacity


def test_path_cost_prefers_short_and_unloaded_paths(state, config):
    short = state.path_cost((0, 1, 3), mbps(100), config)
    long = state.path_cost((0, 2, 3), mbps(100), config)
    assert short == pytest.approx(long)  # both 2 hops, both empty
    state.reserve("f1", "a", "b", (0, 1, 3), mbps(900))
    assert state.path_cost((0, 1, 3), mbps(100), config) > state.path_cost(
        (0, 2, 3), mbps(100), config
    )


def test_path_cost_infeasible_when_bandwidth_missing(state, config, params):
    state.reserve("f1", "a", "b", (0, 1, 3), params.link_capacity)
    assert state.path_cost((0, 1, 3), mbps(10), config) == INFEASIBLE_COST


def test_required_slots_reservation(state, params):
    # Force specific starting slots (group-shared configuration replay).
    # 50 MB/s fits in a single 62.5 MB/s slot at the reference operating point.
    reservation = state.reserve("f1", "a", "b", (0, 1, 3), mbps(50), required_slots=(5,))
    assert reservation.link_slots[(0, 1)] == (5,)
    assert reservation.link_slots[(1, 3)] == ((5 + 1) % params.slot_table_size,)


def test_copy_is_independent(state):
    duplicate = state.copy("copy")
    state.reserve("f1", "a", "b", (0, 1, 3), mbps(100))
    assert duplicate.slot_table((0, 1)).used_count == 0
    assert len(duplicate.reservations) == 0


def test_link_loads_and_total_reserved(state):
    state.reserve("f1", "a", "b", (0, 1, 3), mbps(100))
    loads = state.link_loads()
    assert loads[(0, 1)] == pytest.approx(mbps(100))
    assert state.total_reserved_bandwidth() == pytest.approx(mbps(200))  # two links


# --------------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------------- #
def test_xy_path_is_dimension_ordered():
    mesh = Topology.mesh(3, 3)
    path = xy_path(mesh, 0, 8)
    assert path == (0, 1, 2, 5, 8)
    assert is_xy_path(mesh, path)


def test_xy_path_same_switch():
    mesh = Topology.mesh(3, 3)
    assert xy_path(mesh, 4, 4) == (4,)


def test_mesh_minimal_paths_count_and_length():
    mesh = Topology.mesh(3, 3)
    paths = mesh_minimal_paths(mesh, 0, 8, limit=16)
    assert len(paths) == 6  # C(4,2) monotone staircase paths
    assert all(len(path) - 1 == 4 for path in paths)
    assert all(path[0] == 0 and path[-1] == 8 for path in paths)


def test_mesh_minimal_paths_respects_limit():
    mesh = Topology.mesh(4, 4)
    assert len(mesh_minimal_paths(mesh, 0, 15, limit=3)) == 3


def _reference_mesh_minimal_paths(topology, source, destination, limit):
    """The seed's recursive enumeration, kept as the order reference."""
    src = topology.switch(source)
    dst = topology.switch(destination)
    _, cols = topology.dimensions
    row_step = 1 if dst.row >= src.row else -1
    col_step = 1 if dst.col >= src.col else -1
    paths = []

    def extend(row, col, acc):
        if len(paths) >= limit:
            return
        if row == dst.row and col == dst.col:
            paths.append(tuple(acc))
            return
        if col != dst.col:
            extend(row, col + col_step, acc + [row * cols + (col + col_step)])
        if row != dst.row:
            extend(row + row_step, col, acc + [(row + row_step) * cols + col])

    extend(src.row, src.col, [source])
    return paths


def test_mesh_minimal_paths_match_recursive_reference_in_order():
    # The iterative walk (plus relative-offset cache) must reproduce the
    # historical recursion exactly, including enumeration order — the
    # ``limit`` cap truncates by that order.
    mesh = Topology.mesh(5, 6)
    for source in (0, 7, 17, 29):
        for destination in (0, 5, 12, 24, 29):
            if source == destination:
                continue
            for limit in (1, 3, 8, 100):
                assert mesh_minimal_paths(mesh, source, destination, limit) == (
                    _reference_mesh_minimal_paths(mesh, source, destination, limit)
                )


def test_mesh_minimal_paths_deep_on_large_mesh():
    # 20x20 corner-to-corner would recurse ~40 deep with huge branching in
    # the old implementation; the iterative walk handles it with any limit.
    mesh = Topology.mesh(20, 20)
    paths = mesh_minimal_paths(mesh, 0, 399, limit=8)
    assert len(paths) == 8
    assert all(len(path) - 1 == 38 for path in paths)
    assert all(path[0] == 0 and path[-1] == 399 for path in paths)


def test_path_selector_candidates_cached_and_valid(config):
    mesh = Topology.mesh(3, 3)
    selector = PathSelector(mesh, config)
    first = selector.candidate_paths(0, 8)
    second = selector.candidate_paths(0, 8)
    assert first is second  # cached
    for path in first:
        for here, there in zip(path, path[1:]):
            assert mesh.has_link(here, there)


def test_path_selector_same_switch(config):
    mesh = Topology.mesh(2, 2)
    selector = PathSelector(mesh, config)
    assert selector.candidate_paths(1, 1) == ((1,),)


def test_path_selector_xy_policy_single_path():
    mesh = Topology.mesh(3, 3)
    selector = PathSelector(mesh, MapperConfig(routing_policy="xy"))
    assert selector.candidate_paths(0, 8) == (xy_path(mesh, 0, 8),)


def test_path_selector_west_first_policy_filters():
    mesh = Topology.mesh(3, 3)
    selector = PathSelector(mesh, MapperConfig(routing_policy="west_first"))
    for path in selector.candidate_paths(2, 6):  # destination is to the west
        assert is_west_first_path(mesh, path)


def test_path_selector_k_shortest_allows_detours():
    mesh = Topology.mesh(3, 3)
    selector = PathSelector(
        mesh, MapperConfig(routing_policy="k_shortest", max_detour_hops=2,
                           max_paths_per_pair=32)
    )
    lengths = {len(path) - 1 for path in selector.candidate_paths(0, 1)}
    assert 1 in lengths
    assert any(length > 1 for length in lengths)


def test_select_least_cost_requires_mapped_cores(state, config):
    selector = PathSelector(state.topology, config)
    with pytest.raises(RoutingError):
        selector.select_least_cost(state, "a", "unmapped", mbps(10))


def test_select_least_cost_avoids_congested_path(state, config, params):
    selector = PathSelector(state.topology, config)
    # Congest the (1, 3) link with traffic from core c (on switch 1) to b.
    state.reserve("hot", "c", "b", (1, 3), params.link_capacity * 0.55)
    selection = selector.select_least_cost(state, "a", "b", mbps(200))
    assert selection is not None
    path, _ = selection
    assert path == (0, 2, 3)


def test_select_least_cost_respects_max_hops(state, config):
    selector = PathSelector(state.topology, config)
    assert selector.select_least_cost(state, "a", "b", mbps(10), max_hops=1) is None
    assert selector.select_least_cost(state, "a", "c", mbps(10), max_hops=1) is not None


# --------------------------------------------------------------------------- #
# deadlock helpers
# --------------------------------------------------------------------------- #
def test_is_xy_path_detects_violations():
    mesh = Topology.mesh(3, 3)
    assert is_xy_path(mesh, (0, 1, 4))       # X then Y
    assert not is_xy_path(mesh, (0, 3, 4))   # Y then X


def test_west_first_forbids_turning_into_west():
    mesh = Topology.mesh(3, 3)
    assert is_west_first_path(mesh, (2, 1, 0, 3))   # west first, then south
    assert not is_west_first_path(mesh, (5, 8, 7))  # south then west


def test_channel_dependency_graph_cycle_detection():
    square = [(0, 1, 2), (2, 3, 0)]       # no cycle
    assert is_deadlock_free(square)
    cycle = [(0, 1, 2), (1, 2, 3), (2, 3, 0), (3, 0, 1)]
    assert not is_deadlock_free(cycle)
    cdg = channel_dependency_graph(cycle)
    # Four distinct channels: (0,1), (1,2), (2,3) and (3,0).
    assert cdg.number_of_nodes() == 4
    assert cdg.number_of_edges() == 4


def test_xy_paths_on_mesh_are_deadlock_free(config):
    mesh = Topology.mesh(3, 3)
    paths = [xy_path(mesh, src, dst) for src in range(9) for dst in range(9) if src != dst]
    assert is_deadlock_free(paths)
