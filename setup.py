"""Setuptools packaging for the repro library.

``pip install .`` (or ``-e .``) installs the ``repro`` package from ``src/``
and a ``repro`` console script — the same entry point as ``python -m repro``
— so installed environments get the jobs CLI on their ``PATH``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Methodology for Mapping Multiple Use-Cases onto "
        "Networks on Chips' (Murali et al., DATE 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        # the exact (ILP/CBC) mapping backend; without it the backend's
        # pure-Python branch-and-bound solver is used
        "ilp": ["pulp"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.jobs.cli:main",
        ],
    },
)
