#!/usr/bin/env python3
"""Parallel use-cases: how the required NoC frequency grows with parallelism.

Reproduces the designer-facing trade-off of the paper's Figure 7(c): take a
20-core, 10-use-case spread benchmark, let 1-4 of its use-cases run in
parallel (compound modes generated automatically) and find the lowest NoC
clock that still supports the design on a fixed-size mesh.

The study is expressed as one declarative :class:`~repro.jobs.SweepJob` and
executed through the :class:`~repro.jobs.JobRunner` — the same job could be
saved to JSON (``save_job``) and run from the shell with ``python -m repro
run``, or farmed out with ``--workers``/``--cache-dir`` next to other jobs.

Run with:  python examples/parallel_use_cases.py
"""

from repro import JobRunner, SweepJob
from repro.io import format_rows


def main() -> None:
    job = SweepJob(study="parallel_use_cases", parallelism_levels=(1, 2, 3, 4))
    result = JobRunner().run(job)
    print(format_rows(
        result.payload["rows"],
        columns=["parallel_use_cases", "required_frequency_mhz"],
        title="Required NoC frequency vs. number of parallel use-cases",
    ))
    print()
    print("Reading the table: every additional concurrently-running use-case adds")
    print("its traffic to the compound mode, so the NoC needs a faster clock (or a")
    print("larger topology) to keep satisfying all bandwidth and latency constraints.")


if __name__ == "__main__":
    main()
