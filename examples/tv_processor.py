#!/usr/bin/env python3
"""TV-processor SoC walkthrough: many picture modes, area-frequency trade-offs.

The TV processor's picture modes activate very different processing pipelines,
which is exactly the situation where designing for a single worst-case
use-case over-provisions the NoC.  This example maps the 8-mode design,
compares against the worst-case baseline and sweeps the operating frequency
to draw the area-frequency Pareto curve (paper Figure 7a, applied to D3).

Run with:  python examples/tv_processor.py
"""

from repro import MappingError, UnifiedMapper, WorstCaseMapper
from repro.gen import tv_processor_design
from repro.power import area_frequency_tradeoff, pareto_front
from repro.units import mhz


def main() -> None:
    design = tv_processor_design(use_case_count=8)
    use_cases = design.use_cases
    print(f"design: {design.name} — {design.description}")
    print(f"cores: {design.core_count}, use-cases: {design.use_case_count}")
    print()

    unified = UnifiedMapper().map(use_cases)
    print(f"proposed method : {unified.topology.name} ({unified.switch_count} switches)")
    try:
        worst = WorstCaseMapper().map(use_cases)
        print(f"worst-case      : {worst.topology.name} ({worst.switch_count} switches)")
        ratio = unified.switch_count / worst.switch_count
        print(f"normalised size : {ratio:.2f}")
    except MappingError:
        print("worst-case      : no feasible mapping within the topology limit")

    print()
    print("area-frequency trade-off (proposed method):")
    points = area_frequency_tradeoff(
        use_cases,
        frequencies=[mhz(f) for f in (200, 300, 400, 500, 750, 1000, 1500, 2000)],
    )
    for point in points:
        if point.feasible:
            print(f"  {point.frequency_mhz:6.0f} MHz  {point.switch_count:3d} switches  "
                  f"{point.area_mm2:6.2f} mm²")
        else:
            print(f"  {point.frequency_mhz:6.0f} MHz  infeasible")
    knee = pareto_front(points)
    print()
    print("Pareto-optimal operating points:")
    for point in knee:
        print(f"  {point.frequency_mhz:6.0f} MHz  {point.area_mm2:6.2f} mm²")


if __name__ == "__main__":
    main()
