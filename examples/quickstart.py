#!/usr/bin/env python3
"""Quickstart: map a small two-use-case design onto a NoC.

This walks the public API end to end on the paper's Figure 5 example:

1. describe cores, flows and use-cases,
2. run the full design flow (compound-mode generation, grouping, unified
   mapping, analytical verification), and
3. inspect the resulting NoC: topology, core placement, per-use-case paths
   and TDMA slots.

Run with:  python examples/quickstart.py
"""

from repro import DesignFlow, Flow, UseCase, UseCaseSet
from repro.units import mbps, to_mbps, us


def build_design() -> UseCaseSet:
    """The paper's Figure 5 example: 4 cores, 2 use-cases."""
    uc1 = UseCase(
        "uc1",
        flows=[
            Flow("C1", "C2", mbps(10), latency=us(500)),
            Flow("C2", "C3", mbps(75), latency=us(200)),
            Flow("C3", "C4", mbps(100), latency=us(200)),
        ],
    )
    uc2 = UseCase(
        "uc2",
        flows=[
            Flow("C1", "C2", mbps(42), latency=us(500)),
            Flow("C2", "C3", mbps(11), latency=us(500)),
            Flow("C3", "C4", mbps(52), latency=us(200)),
        ],
    )
    return UseCaseSet([uc1, uc2], name="figure5-example")


def main() -> None:
    design = build_design()

    # Phases 1-4 of the methodology with the default 500 MHz / 32-bit NoC.
    outcome = DesignFlow().run(design)
    mapping = outcome.mapping

    print(f"design            : {design.name}")
    print(f"topology          : {mapping.topology.name} ({mapping.switch_count} switches)")
    print(f"configuration     : {len(outcome.groups)} group(s), "
          f"{mapping.reconfigurable_pairs()} re-configurable switching pair(s)")
    print(f"verification      : {'passed' if outcome.verification.passed else 'FAILED'}")
    print()
    print("core placement:")
    for core, switch in sorted(mapping.core_mapping.items()):
        print(f"  {core:4s} -> switch {switch}")
    print()
    for name in mapping.use_case_names:
        print(f"paths and slots for {name}:")
        for allocation in mapping.configuration(name):
            path = " -> ".join(str(s) for s in allocation.switch_path)
            print(
                f"  {allocation.flow.source}->{allocation.flow.destination}: "
                f"{to_mbps(allocation.flow.bandwidth):6.1f} MB/s  "
                f"path [{path}]  slots/link {allocation.slots_per_link}"
            )
        print()


if __name__ == "__main__":
    main()
