#!/usr/bin/env python3
"""Quickstart: map a small two-use-case design via the declarative jobs API.

This walks the public API end to end on the paper's Figure 5 example:

1. describe cores, flows and use-cases,
2. wrap the design in a :class:`~repro.jobs.DesignFlowJob` — the serializable
   unit of work the runner, the persistent cache and the ``python -m repro``
   CLI all share — and execute it with a :class:`~repro.jobs.JobRunner`, and
3. inspect the resulting NoC: topology, core placement, per-use-case paths
   and TDMA slots, loaded back into a rich :class:`~repro.MappingResult`.

The same job, written to JSON with ``save_job`` (see
``examples/jobs/quickstart_job.json``), runs unchanged from the shell:

    python -m repro run examples/jobs/quickstart_job.json --workers 2

Run with:  python examples/quickstart.py
"""

from repro import DesignFlowJob, Flow, JobRunner, UseCase, UseCaseSet, UseCaseSource
from repro.io import mapping_result_from_dict
from repro.units import mbps, to_mbps, us


def build_design() -> UseCaseSet:
    """The paper's Figure 5 example: 4 cores, 2 use-cases."""
    uc1 = UseCase(
        "uc1",
        flows=[
            Flow("C1", "C2", mbps(10), latency=us(500)),
            Flow("C2", "C3", mbps(75), latency=us(200)),
            Flow("C3", "C4", mbps(100), latency=us(200)),
        ],
    )
    uc2 = UseCase(
        "uc2",
        flows=[
            Flow("C1", "C2", mbps(42), latency=us(500)),
            Flow("C2", "C3", mbps(11), latency=us(500)),
            Flow("C3", "C4", mbps(52), latency=us(200)),
        ],
    )
    return UseCaseSet([uc1, uc2], name="figure5-example")


def main() -> None:
    design = build_design()

    # One declarative job = phases 1-4 of the methodology on one design at
    # the default 500 MHz / 32-bit operating point.
    job = DesignFlowJob(use_cases=UseCaseSource.from_value(design))
    result = JobRunner().run(job)

    # The payload is plain JSON-ready data (what the CLI writes with --out);
    # the full mapping loads back into a rich MappingResult for inspection.
    payload = result.payload
    mapping = mapping_result_from_dict(payload["mapping"])

    print(f"design            : {design.name}")
    print(f"job spec hash     : {result.spec_hash[:16]}...")
    print(f"topology          : {mapping.topology.name} ({mapping.switch_count} switches)")
    print(f"configuration     : {len(mapping.groups)} group(s), "
          f"{mapping.reconfigurable_pairs()} re-configurable switching pair(s)")
    print(f"verification      : "
          f"{'passed' if payload['verification_passed'] else 'FAILED'}")
    print()
    print("core placement:")
    for core, switch in sorted(mapping.core_mapping.items()):
        print(f"  {core:4s} -> switch {switch}")
    print()
    for name in mapping.use_case_names:
        print(f"paths and slots for {name}:")
        for allocation in mapping.configuration(name):
            path = " -> ".join(str(s) for s in allocation.switch_path)
            print(
                f"  {allocation.flow.source}->{allocation.flow.destination}: "
                f"{to_mbps(allocation.flow.bandwidth):6.1f} MB/s  "
                f"path [{path}]  slots/link {allocation.slots_per_link}"
            )
        print()


if __name__ == "__main__":
    main()
