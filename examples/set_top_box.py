#!/usr/bin/env python3
"""Set-top-box SoC walkthrough: compound modes, grouping, DVS/DFS and export.

Models the paper's motivating scenario (a Viper2-style set-top box): video
display and recording can run in parallel (a *compound mode*), the transition
into that mode must be smooth, and between the other use-cases the NoC can be
re-configured and frequency/voltage scaled.

Run with:  python examples/set_top_box.py
"""

from repro import CompoundModeSpec, DesignFlow, WorstCaseMapper, MappingError
from repro.gen import set_top_box_design
from repro.io import export_design
from repro.power import analyze_dvfs, noc_area
from repro.units import to_mhz


def main() -> None:
    design = set_top_box_design(use_case_count=4)
    use_cases = design.use_cases
    print(f"design: {design.name} — {design.description}")
    print(f"cores: {design.core_count}, use-cases: {design.use_case_count}")
    print()

    # Video playback ("hd_playback") and recording ("sd_playback_record") can
    # run concurrently; the transition into the compound mode must be smooth.
    flow = DesignFlow()
    outcome = flow.run(
        use_cases,
        parallel_modes=[CompoundModeSpec(["hd_playback", "sd_playback_record"],
                                         name="playback+record")],
        smooth_switching=[("pip_browsing", "file_services")],
    )
    mapping = outcome.mapping

    print(f"generated compound modes : {[uc.name for uc in outcome.generated_compound_modes]}")
    print(f"configuration groups     : {[sorted(g) for g in outcome.groups]}")
    print(f"NoC                      : {mapping.topology.name} "
          f"({mapping.switch_count} switches, {noc_area(mapping):.2f} mm²)")
    print(f"verification             : {'passed' if outcome.verification.passed else 'FAILED'}")

    # Compare against the worst-case baseline.
    try:
        worst = WorstCaseMapper().map(outcome.use_cases)
        print(f"worst-case baseline      : {worst.topology.name} "
              f"({worst.switch_count} switches, {noc_area(worst):.2f} mm²)")
    except MappingError as error:
        print(f"worst-case baseline      : failed ({error})")

    # DVS/DFS: run every use-case at its own minimum frequency.
    dvfs = analyze_dvfs(mapping)
    print()
    print("per-use-case DVS/DFS operating points:")
    for name in sorted(mapping.use_case_names):
        print(f"  {name:20s} {to_mhz(dvfs.frequency_of(name)):7.0f} MHz")
    print(f"power without DVS/DFS    : {dvfs.power_without_dvfs * 1e3:.1f} mW")
    print(f"power with DVS/DFS       : {dvfs.power_with_dvfs * 1e3:.1f} mW")
    print(f"saving                   : {dvfs.savings_percent:.1f} %")

    # Structural export (the stand-in for SystemC/VHDL generation).
    netlist = export_design(mapping)
    print()
    print("structural export (first lines):")
    for line in netlist.splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
