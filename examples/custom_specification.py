#!/usr/bin/env python3
"""Author a design in JSON, load it, map it and save the NoC configuration.

Shows the interchange format: a use-case specification written as JSON (the
kind of file an architecture team would keep in version control), loaded with
:func:`repro.load_use_case_set`, mapped, simulated, and the resulting NoC
configuration saved back to JSON.

Run with:  python examples/custom_specification.py
"""

import json
import tempfile
from pathlib import Path

from repro import TdmaSimulator, UnifiedMapper, load_use_case_set, verify_mapping
from repro.io import save_mapping_result

SPECIFICATION = {
    "name": "camera-soc",
    "use_cases": [
        {
            "name": "preview",
            "flows": [
                {"source": "sensor", "destination": "isp", "bandwidth_mbps": 300, "latency_us": 100},
                {"source": "isp", "destination": "display", "bandwidth_mbps": 250, "latency_us": 50},
                {"source": "cpu", "destination": "isp", "bandwidth_mbps": 2, "latency_us": 5},
            ],
        },
        {
            "name": "capture",
            "flows": [
                {"source": "sensor", "destination": "isp", "bandwidth_mbps": 600, "latency_us": 100},
                {"source": "isp", "destination": "encoder", "bandwidth_mbps": 500, "latency_us": 100},
                {"source": "encoder", "destination": "storage", "bandwidth_mbps": 120, "latency_us": 400},
                {"source": "cpu", "destination": "encoder", "bandwidth_mbps": 2, "latency_us": 5},
            ],
        },
    ],
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-example-"))
    spec_path = workdir / "camera_soc.json"
    spec_path.write_text(json.dumps(SPECIFICATION, indent=2))
    print(f"wrote specification to {spec_path}")

    design = load_use_case_set(spec_path)
    result = UnifiedMapper().map(design)
    report = verify_mapping(result, design, simulate=True, frames=64)
    print(f"mapped onto {result.topology.name} ({result.switch_count} switches); "
          f"verification {'passed' if report.passed else 'FAILED'}")

    simulation = TdmaSimulator(result, "capture").run(frames=64)
    print(f"simulated 'capture': worst flit latency "
          f"{simulation.worst_latency_cycles()} cycles, "
          f"bandwidth satisfied: {simulation.all_bandwidth_satisfied()}")

    out_path = save_mapping_result(result, workdir / "camera_soc_noc.json")
    print(f"saved NoC configuration to {out_path}")


if __name__ == "__main__":
    main()
