"""Analytical worst-case latency bounds for guaranteed-throughput flows.

Æthereal GT connections are scheduled on TDMA slot tables, so their
worst-case latency is fully analytical (no simulation required, which is why
the paper can "verify the NoC performance for the GT connections
analytically"):

* a packet that arrives just after the flow's reserved slot has passed waits
  at most one full revolution of the slot table before its next slot comes
  around; when the flow owns ``k`` (roughly evenly spaced) slots out of
  ``S`` the worst-case wait shrinks to ``ceil(S / k)`` slots;
* once injected, the packet advances exactly one hop per slot (pipelined
  reservations), taking ``hops`` further slots to reach the destination
  switch; and
* NI packetisation/depacketisation adds a small constant overhead at each
  end.

All bounds are expressed in seconds for the given operating point.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.params import NoCParameters

__all__ = ["worst_case_latency", "latency_hop_budget", "NI_OVERHEAD_CYCLES"]

#: Cycles charged for network-interface packetisation at the source plus
#: depacketisation at the destination.
NI_OVERHEAD_CYCLES = 4


def worst_case_latency(
    hops: int,
    slots_owned: int,
    params: NoCParameters,
) -> float:
    """Worst-case packet latency (seconds) of a GT flow.

    Parameters
    ----------
    hops:
        Number of inter-switch links the flow traverses (0 when source and
        destination cores attach to the same switch).
    slots_owned:
        Number of TDMA slots the flow owns on each link of its path.  Must
        be at least 1 for flows that traverse links; same-switch flows may
        pass 0.
    params:
        The NoC operating point (frequency and slot-table size).
    """
    if hops < 0:
        raise ConfigurationError(f"hop count must be non-negative, got {hops}")
    if hops == 0:
        return NI_OVERHEAD_CYCLES * params.cycle_time
    if slots_owned <= 0:
        raise ConfigurationError(
            f"a GT flow crossing {hops} links must own at least one slot"
        )
    slot_wait = math.ceil(params.slot_table_size / slots_owned)
    total_cycles = slot_wait + hops + NI_OVERHEAD_CYCLES
    return total_cycles * params.slot_duration


def latency_hop_budget(
    latency_constraint: float,
    slots_owned: int,
    params: NoCParameters,
) -> int:
    """Largest hop count whose worst-case latency still meets a constraint.

    This is the inverse of :func:`worst_case_latency`; the mapper uses it to
    prune candidate paths that are too long for a latency-critical flow
    before evaluating their cost.  Returns ``-1`` when even a same-switch
    placement cannot meet the constraint (the constraint is tighter than the
    NI overhead alone), which the mapper treats as infeasible.
    """
    if latency_constraint <= 0:
        raise ConfigurationError(
            f"latency constraint must be positive, got {latency_constraint}"
        )
    if slots_owned <= 0:
        raise ConfigurationError(f"slots_owned must be positive, got {slots_owned}")
    budget_cycles = latency_constraint / params.slot_duration
    slot_wait = math.ceil(params.slot_table_size / slots_owned)
    hops = math.floor(budget_cycles - slot_wait - NI_OVERHEAD_CYCLES)
    if hops >= 0:
        return hops
    # A same-switch placement only pays the NI overhead; allow it when that
    # alone fits the constraint.
    if NI_OVERHEAD_CYCLES * params.cycle_time <= latency_constraint:
        return 0
    return -1
