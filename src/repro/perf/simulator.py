"""Cycle-level TDMA NoC simulator.

The paper's final design-flow phase simulates the generated SystemC/RTL NoC.
We cannot ship the Æthereal RTL, so this module provides the closest
behavioural equivalent: a discrete, cycle-accurate replay of the TDMA slot
tables produced by the mapper.

The model is intentionally faithful to how the guaranteed-throughput service
works:

* time advances in slots (one slot = one cycle = one flit transfer per link);
* every flow's source NI accumulates ``bandwidth x cycle_time`` bytes per
  cycle and packs them into flits of ``link_width_bits / 8`` bytes;
* a flit may only leave the source NI in a cycle whose slot index (modulo
  the slot-table size) is reserved for the flow on the first link of its
  path; it then advances exactly one hop per cycle (the pipelined slot
  reservation guarantees the downstream slots are free for it);
* flows whose source and destination share a switch bypass the slot tables
  and only pay the NI overhead.

The simulator reports delivered bandwidth and observed worst-case latency
per flow, which the verification module compares against the analytical
bounds and the original constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.result import FlowAllocation, MappingResult
from repro.exceptions import SpecificationError
from repro.perf.latency import NI_OVERHEAD_CYCLES

__all__ = ["FlowTrafficStats", "SimulationReport", "TdmaSimulator"]


@dataclass
class FlowTrafficStats:
    """Measured behaviour of one flow over a simulation run."""

    use_case: str
    source: str
    destination: str
    required_bandwidth: float
    offered_bytes: float = 0.0
    delivered_bytes: float = 0.0
    flits_sent: int = 0
    max_latency_cycles: int = 0
    total_latency_cycles: int = 0
    max_queue_flits: int = 0

    @property
    def mean_latency_cycles(self) -> float:
        """Average flit latency in cycles (0 when nothing was sent)."""
        if self.flits_sent == 0:
            return 0.0
        return self.total_latency_cycles / self.flits_sent

    def delivered_bandwidth(self, duration_seconds: float) -> float:
        """Delivered bandwidth in bytes/s over the simulated duration."""
        if duration_seconds <= 0:
            return 0.0
        return self.delivered_bytes / duration_seconds


@dataclass
class SimulationReport:
    """Aggregate result of one simulation run for one use-case."""

    use_case: str
    cycles: int
    cycle_time: float
    flit_bytes: float = 4.0
    flows: Dict[Tuple[str, str], FlowTrafficStats] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        """Simulated wall-clock time."""
        return self.cycles * self.cycle_time

    def stats_for(self, source: str, destination: str) -> FlowTrafficStats:
        """The measured statistics of one flow."""
        try:
            return self.flows[(source, destination)]
        except KeyError:
            raise SpecificationError(
                f"simulation of {self.use_case!r} has no flow {source}->{destination}"
            ) from None

    def all_bandwidth_satisfied(self, tolerance: float = 0.05) -> bool:
        """Whether every flow delivered at least (1 - tolerance) x required bandwidth.

        A small relative tolerance plus one flit of absolute slack absorbs
        the start-up transient of the first frame and the flit quantisation
        of low-bandwidth flows over short runs.
        """
        duration = self.duration_seconds
        for stats in self.flows.values():
            if stats.required_bandwidth <= 0:
                continue
            expected_bytes = stats.required_bandwidth * duration * (1.0 - tolerance)
            if stats.delivered_bytes + self.flit_bytes < expected_bytes:
                return False
        return True

    def worst_latency_cycles(self) -> int:
        """The largest flit latency observed across all flows."""
        return max((stats.max_latency_cycles for stats in self.flows.values()), default=0)


class TdmaSimulator:
    """Replays one use-case's slot-table configuration cycle by cycle."""

    def __init__(self, mapping: MappingResult, use_case: str) -> None:
        self.mapping = mapping
        self.use_case = use_case
        self.configuration = mapping.configuration(use_case)
        self.params = mapping.params
        self._flit_bytes = self.params.link_width_bits / 8.0

    def run(self, frames: int = 64) -> SimulationReport:
        """Simulate ``frames`` revolutions of the TDMA slot table.

        Returns a :class:`SimulationReport` with per-flow delivered bandwidth
        and latency statistics.
        """
        if frames <= 0:
            raise SpecificationError(f"frame count must be positive, got {frames}")
        slot_table_size = self.params.slot_table_size
        cycles = frames * slot_table_size
        report = SimulationReport(
            use_case=self.use_case,
            cycles=cycles,
            cycle_time=self.params.cycle_time,
            flit_bytes=self._flit_bytes,
        )
        runners = [
            _FlowRunner(allocation, self.params.cycle_time, self._flit_bytes, slot_table_size)
            for allocation in self.configuration
        ]
        for runner in runners:
            report.flows[runner.pair] = runner.stats
        for cycle in range(cycles):
            for runner in runners:
                runner.step(cycle)
        return report


class _FlowRunner:
    """Per-flow injection queue and slot-table gate used by the simulator."""

    def __init__(
        self,
        allocation: FlowAllocation,
        cycle_time: float,
        flit_bytes: float,
        slot_table_size: int,
    ) -> None:
        flow = allocation.flow
        self.pair = flow.pair
        self.stats = FlowTrafficStats(
            use_case=allocation.use_case,
            source=flow.source,
            destination=flow.destination,
            required_bandwidth=flow.bandwidth,
        )
        self._bytes_per_cycle = flow.bandwidth * cycle_time
        self._flit_bytes = flit_bytes
        self._slot_table_size = slot_table_size
        self._accumulated = 0.0
        self._queue: List[int] = []  # enqueue cycle of each waiting flit
        self._hops = allocation.hop_count
        if self._hops == 0:
            self._injection_slots: Optional[frozenset] = None
        else:
            first_link = allocation.links[0]
            self._injection_slots = frozenset(allocation.link_slots.get(first_link, ()))

    def step(self, cycle: int) -> None:
        """Advance the flow by one cycle."""
        # Traffic generation: accumulate bytes, enqueue whole flits.
        self._accumulated += self._bytes_per_cycle
        self.stats.offered_bytes += self._bytes_per_cycle
        while self._accumulated >= self._flit_bytes:
            self._accumulated -= self._flit_bytes
            self._queue.append(cycle)
        self.stats.max_queue_flits = max(self.stats.max_queue_flits, len(self._queue))
        if not self._queue:
            return
        # Injection gate: same-switch flows send every cycle, routed flows
        # only in their reserved slots on the first link.
        if self._injection_slots is not None:
            slot = cycle % self._slot_table_size
            if slot not in self._injection_slots:
                return
        enqueue_cycle = self._queue.pop(0)
        latency = (cycle - enqueue_cycle) + self._hops + NI_OVERHEAD_CYCLES
        self.stats.flits_sent += 1
        self.stats.delivered_bytes += self._flit_bytes
        self.stats.total_latency_cycles += latency
        self.stats.max_latency_cycles = max(self.stats.max_latency_cycles, latency)
