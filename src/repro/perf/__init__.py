"""Performance analysis: analytical latency bounds, simulation and verification.

* :mod:`repro.perf.latency` — worst-case latency bounds for guaranteed-
  throughput flows under pipelined TDMA scheduling.
* :mod:`repro.perf.simulator` — a cycle-level TDMA NoC simulator that
  replays a mapping's slot tables and measures delivered bandwidth and
  packet latency (our stand-in for the paper's SystemC/RTL simulation
  phase).
* :mod:`repro.perf.verification` — re-checks a finished mapping against the
  original constraints, analytically and (optionally) by simulation.
"""

from repro.perf.latency import worst_case_latency, latency_hop_budget
from repro.perf.simulator import SimulationReport, TdmaSimulator, FlowTrafficStats
from repro.perf.verification import VerificationReport, verify_mapping

__all__ = [
    "worst_case_latency",
    "latency_hop_budget",
    "SimulationReport",
    "TdmaSimulator",
    "FlowTrafficStats",
    "VerificationReport",
    "verify_mapping",
]
