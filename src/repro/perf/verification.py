"""Verification of finished mappings against the original constraints.

Phase 4 of the paper's design flow verifies the NoC performance of the
guaranteed-throughput connections analytically (and by SystemC simulation).
:func:`verify_mapping` performs the analytical part on a
:class:`~repro.core.result.MappingResult`:

* every flow of every use-case has an allocation;
* allocated paths are contiguous, start at the source core's switch and end
  at the destination core's switch;
* the TDMA slots reserved on each link provide at least the required
  bandwidth;
* no two flows of the *same configuration group* own the same slot on the
  same link (flows of different groups may — the NoC is re-configured
  between them);
* per-core NI injection/ejection bandwidth and per-link bandwidth are not
  over-committed within any use-case; and
* the analytical worst-case latency of every GT flow meets its constraint.

Optionally the cycle-level simulator is run per use-case as an additional
(dynamic) check that the slot tables actually deliver the bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.result import MappingResult
from repro.core.usecase import TrafficClass, UseCaseSet
from repro.perf.latency import worst_case_latency
from repro.perf.simulator import TdmaSimulator

__all__ = ["Violation", "VerificationReport", "verify_mapping"]


@dataclass(frozen=True)
class Violation:
    """One verification failure."""

    use_case: str
    source: str
    destination: str
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.kind}] {self.use_case}: {self.source}->{self.destination}: {self.detail}"


@dataclass
class VerificationReport:
    """Outcome of verifying one mapping result."""

    violations: List[Violation] = field(default_factory=list)
    checked_flows: int = 0
    simulated_use_cases: int = 0

    @property
    def passed(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def violations_of_kind(self, kind: str) -> Tuple[Violation, ...]:
        """All violations of one kind (``"missing"``, ``"latency"``, ...)."""
        return tuple(v for v in self.violations if v.kind == kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "passed" if self.passed else f"{len(self.violations)} violation(s)"
        return f"VerificationReport({status}, checked_flows={self.checked_flows})"


def verify_mapping(
    mapping: MappingResult,
    use_cases: UseCaseSet,
    simulate: bool = False,
    frames: int = 32,
) -> VerificationReport:
    """Re-check a mapping result against the use-case constraints.

    Parameters
    ----------
    mapping:
        The result to verify.
    use_cases:
        The use-case set it was produced from.  For worst-case baseline
        results (which contain a single synthetic configuration) pass the
        singleton set holding the synthetic use-case.
    simulate:
        Additionally run the cycle-level TDMA simulator for every use-case
        and flag flows whose delivered bandwidth falls short.
    frames:
        Number of slot-table revolutions to simulate per use-case.
    """
    report = VerificationReport()
    params = mapping.params
    capacity = params.link_capacity
    slot_bandwidth = params.slot_bandwidth

    for use_case in use_cases:
        if use_case.name not in mapping.configurations:
            for flow in use_case.flows:
                report.violations.append(
                    Violation(use_case.name, flow.source, flow.destination,
                              "missing", "use-case has no configuration in the result")
                )
            continue
        configuration = mapping.configuration(use_case.name)
        for flow in use_case.flows:
            report.checked_flows += 1
            allocation = configuration.allocation_for(flow.source, flow.destination)
            if allocation is None:
                report.violations.append(
                    Violation(use_case.name, flow.source, flow.destination,
                              "missing", "flow has no allocation")
                )
                continue
            _check_path(mapping, use_case.name, flow, allocation, report)
            _check_bandwidth(flow, allocation, slot_bandwidth, report)
            _check_latency(params, use_case.name, flow, allocation, report)
        _check_capacity(mapping, use_case.name, configuration, capacity, report)

    _check_slot_conflicts(mapping, report)

    if simulate:
        for name in mapping.configurations:
            simulator = TdmaSimulator(mapping, name)
            sim_report = simulator.run(frames=frames)
            report.simulated_use_cases += 1
            duration = sim_report.duration_seconds
            for stats in sim_report.flows.values():
                if stats.required_bandwidth <= 0:
                    continue
                expected_bytes = stats.required_bandwidth * duration * 0.95
                if stats.delivered_bytes + sim_report.flit_bytes < expected_bytes:
                    report.violations.append(
                        Violation(name, stats.source, stats.destination, "simulation",
                                  f"delivered {stats.delivered_bandwidth(duration):.3g} B/s "
                                  f"of required {stats.required_bandwidth:.3g} B/s")
                    )
    return report


def _check_path(mapping, use_case, flow, allocation, report) -> None:
    """Path contiguity and endpoint consistency with the shared core mapping."""
    path = allocation.switch_path
    topology = mapping.topology
    expected_source = mapping.core_mapping.get(flow.source)
    expected_destination = mapping.core_mapping.get(flow.destination)
    if expected_source is None or path[0] != expected_source:
        report.violations.append(
            Violation(use_case, flow.source, flow.destination, "path",
                      f"path starts at switch {path[0]} but core {flow.source!r} "
                      f"is mapped to {expected_source}")
        )
    if expected_destination is None or path[-1] != expected_destination:
        report.violations.append(
            Violation(use_case, flow.source, flow.destination, "path",
                      f"path ends at switch {path[-1]} but core {flow.destination!r} "
                      f"is mapped to {expected_destination}")
        )
    for here, there in zip(path, path[1:]):
        if not topology.has_link(here, there):
            report.violations.append(
                Violation(use_case, flow.source, flow.destination, "path",
                          f"path uses missing link ({here}, {there})")
            )


def _check_bandwidth(flow, allocation, slot_bandwidth, report) -> None:
    """Slot reservations must cover the flow bandwidth on every traversed link."""
    if flow.traffic_class != TrafficClass.GUARANTEED or allocation.hop_count == 0:
        return
    for link in allocation.links:
        slots = allocation.link_slots.get(link, ())
        provided = len(slots) * slot_bandwidth
        if provided + 1e-9 < flow.bandwidth:
            report.violations.append(
                Violation(allocation.use_case, flow.source, flow.destination, "bandwidth",
                          f"link {link} provides {provided:.3g} B/s over {len(slots)} slot(s) "
                          f"but the flow needs {flow.bandwidth:.3g} B/s")
            )


def _check_latency(params, use_case, flow, allocation, report) -> None:
    """Analytical worst-case latency must meet the flow's constraint."""
    if flow.traffic_class != TrafficClass.GUARANTEED:
        return
    slots = allocation.slots_per_link
    if allocation.hop_count > 0 and slots == 0:
        report.violations.append(
            Violation(use_case, flow.source, flow.destination, "slots",
                      "GT flow traverses links but owns no slots")
        )
        return
    bound = worst_case_latency(allocation.hop_count, max(slots, 1), params)
    if bound > flow.latency + 1e-12:
        report.violations.append(
            Violation(use_case, flow.source, flow.destination, "latency",
                      f"worst-case latency {bound:.3g} s exceeds the constraint "
                      f"{flow.latency:.3g} s")
        )


def _check_capacity(mapping, use_case, configuration, capacity, report) -> None:
    """Per-link and per-core aggregate bandwidth within one use-case."""
    for link, load in configuration.link_loads().items():
        if load > capacity + 1e-6:
            report.violations.append(
                Violation(use_case, "*", "*", "capacity",
                          f"link {link} carries {load:.3g} B/s which exceeds the "
                          f"capacity {capacity:.3g} B/s")
            )
    egress, ingress = configuration.core_loads()
    for core, load in egress.items():
        if load > capacity + 1e-6:
            report.violations.append(
                Violation(use_case, core, "*", "capacity",
                          f"core {core!r} sources {load:.3g} B/s which exceeds its NI "
                          f"injection capacity {capacity:.3g} B/s")
            )
    for core, load in ingress.items():
        if load > capacity + 1e-6:
            report.violations.append(
                Violation(use_case, "*", core, "capacity",
                          f"core {core!r} sinks {load:.3g} B/s which exceeds its NI "
                          f"ejection capacity {capacity:.3g} B/s")
            )


def _check_slot_conflicts(mapping, report) -> None:
    """No two flows of one configuration group may own the same slot on a link."""
    group_of = {}
    for index, group in enumerate(mapping.groups):
        for name in group:
            group_of[name] = index
    # (group, link, slot) -> flow key
    owners: Dict[Tuple[int, tuple, int], Tuple[str, str, str]] = {}
    for name, configuration in mapping.configurations.items():
        group_id = group_of.get(name, -1)
        for allocation in configuration:
            flow_key = (name, allocation.flow.source, allocation.flow.destination)
            for link, slots in allocation.link_slots.items():
                for slot in slots:
                    key = (group_id, link, slot)
                    existing = owners.get(key)
                    if existing is None:
                        owners[key] = flow_key
                        continue
                    # Same core pair shared across group members is the
                    # intended configuration sharing, not a conflict.
                    if existing[1:] == flow_key[1:]:
                        continue
                    report.violations.append(
                        Violation(name, allocation.flow.source, allocation.flow.destination,
                                  "slot-conflict",
                                  f"slot {slot} on link {link} is owned by both "
                                  f"{existing} and {flow_key} within group {group_id}")
                    )
