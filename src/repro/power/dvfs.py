"""Dynamic voltage and frequency scaling (DVS/DFS) analysis — paper §6.4.

When the switching time between use-cases is long (milliseconds), the NoC
frequency — and with it the supply voltage — can be re-scaled to match the
active use-case's communication needs.  The paper uses a conservative
voltage-scaling model in which the square of the supply voltage scales
linearly with the frequency, and reports an average power reduction of 54 %
across the SoC designs compared to always running at the design frequency.

This module computes, for a finished :class:`MappingResult`:

* the minimum NoC frequency at which each use-case's configuration still
  meets its bandwidth requirements (by default, from the configuration's
  worst link / NI utilisation at the design point, quantised to a frequency
  step as a real clock generator would); and
* the NoC power with and without per-use-case DVS/DFS, and the saving.

Use-cases in the same smooth-switching group share one NoC configuration
*and* one operating point (no re-configuration happens between them), so the
group runs at the maximum of its members' minimum frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.result import MappingResult
from repro.exceptions import ConfigurationError
from repro.power.energy import PowerModel
from repro.units import mhz

__all__ = ["DvfsResult", "DvfsAnalysis", "analyze_dvfs", "minimum_frequency_for_use_case"]


def minimum_frequency_for_use_case(
    result: MappingResult,
    use_case: str,
    frequency_step_hz: float = mhz(25),
    frequency_floor_hz: float = mhz(50),
    headroom: float = 1.05,
) -> float:
    """Minimum NoC frequency (Hz) at which one use-case's configuration fits.

    The configuration (paths and relative slot shares) is kept; scaling the
    clock scales every link's capacity proportionally, so the minimum
    frequency is the design frequency times the worst link or NI-access
    utilisation, padded by ``headroom`` for slot-granularity effects and
    rounded up to the next ``frequency_step_hz`` (clock generators produce
    discrete frequencies).
    """
    if frequency_step_hz <= 0 or frequency_floor_hz <= 0:
        raise ConfigurationError("frequency step and floor must be positive")
    if headroom < 1.0:
        raise ConfigurationError(f"headroom must be >= 1, got {headroom}")
    utilization = result.max_utilization(use_case)
    design_frequency = result.params.frequency_hz
    required = design_frequency * utilization * headroom
    required = max(required, frequency_floor_hz)
    steps = math.ceil(required / frequency_step_hz - 1e-9)
    return min(design_frequency, steps * frequency_step_hz)


@dataclass
class DvfsResult:
    """Outcome of the DVS/DFS analysis of one mapping result."""

    design_frequency_hz: float
    use_case_frequencies: Dict[str, float] = field(default_factory=dict)
    power_without_dvfs: float = 0.0
    power_with_dvfs: float = 0.0

    @property
    def savings(self) -> float:
        """Fractional power saving of DVS/DFS (0.0 - 1.0)."""
        if self.power_without_dvfs <= 0:
            return 0.0
        return 1.0 - self.power_with_dvfs / self.power_without_dvfs

    @property
    def savings_percent(self) -> float:
        """Power saving in percent, as the paper reports it."""
        return 100.0 * self.savings

    def frequency_of(self, use_case: str) -> float:
        """The frequency (Hz) the NoC runs at while the use-case is active."""
        return self.use_case_frequencies[use_case]


class DvfsAnalysis:
    """Per-use-case frequency selection and power comparison."""

    def __init__(
        self,
        power_model: Optional[PowerModel] = None,
        frequency_step_hz: float = mhz(25),
        frequency_floor_hz: float = mhz(50),
        headroom: float = 1.05,
    ) -> None:
        self.power_model = power_model or PowerModel()
        self.frequency_step_hz = frequency_step_hz
        self.frequency_floor_hz = frequency_floor_hz
        self.headroom = headroom

    def use_case_frequencies(self, result: MappingResult) -> Dict[str, float]:
        """Minimum feasible frequency per use-case, shared within each group."""
        individual = {
            name: minimum_frequency_for_use_case(
                result,
                name,
                frequency_step_hz=self.frequency_step_hz,
                frequency_floor_hz=self.frequency_floor_hz,
                headroom=self.headroom,
            )
            for name in result.configurations
        }
        # Use-cases in one smooth-switching group keep a single configuration
        # and operating point: run the group at its most demanding member.
        shared: Dict[str, float] = {}
        for group in result.groups:
            members = [name for name in group if name in individual]
            if not members:
                continue
            group_frequency = max(individual[name] for name in members)
            for name in members:
                shared[name] = group_frequency
        for name, frequency in individual.items():
            shared.setdefault(name, frequency)
        return shared

    def analyze(self, result: MappingResult) -> DvfsResult:
        """Compare NoC power with and without per-use-case DVS/DFS."""
        frequencies = self.use_case_frequencies(result)
        without = self.power_model.average_power(result, frequencies=None)
        with_dvfs = self.power_model.average_power(result, frequencies=frequencies)
        return DvfsResult(
            design_frequency_hz=result.params.frequency_hz,
            use_case_frequencies=frequencies,
            power_without_dvfs=without,
            power_with_dvfs=with_dvfs,
        )


def analyze_dvfs(
    result: MappingResult,
    power_model: Optional[PowerModel] = None,
    **kwargs,
) -> DvfsResult:
    """Convenience wrapper around :class:`DvfsAnalysis`."""
    return DvfsAnalysis(power_model=power_model, **kwargs).analyze(result)
