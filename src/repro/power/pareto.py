"""Area-frequency trade-off sweeps (paper §6.3, Figure 7a).

Raising the NoC clock frequency raises every link's bandwidth, so a smaller
network (fewer switches) can satisfy the same set of use-cases — at the
price of higher power and harder timing closure.  Lowering the frequency
forces a larger network (or makes the design infeasible once a single NI
link can no longer carry a single core's traffic).

:func:`area_frequency_tradeoff` sweeps the operating frequency, re-runs the
multi-use-case mapper at each point and records the resulting switch count
and total switch area; :func:`pareto_front` extracts the Pareto-optimal
(frequency, area) points a designer would choose from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.mapping import UnifiedMapper
from repro.core.usecase import UseCaseSet
from repro.exceptions import MappingError
from repro.params import MapperConfig, NoCParameters
from repro.power.area import AreaModel
from repro.units import mhz

__all__ = ["ParetoPoint", "area_frequency_tradeoff", "pareto_front", "default_frequency_sweep"]


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the area-frequency trade-off curve."""

    frequency_hz: float
    feasible: bool
    switch_count: int = 0
    area_mm2: float = float("inf")
    mesh_dimensions: Optional[Tuple[int, int]] = None

    @property
    def frequency_mhz(self) -> float:
        """Frequency in MHz for reporting."""
        return self.frequency_hz / 1e6


def default_frequency_sweep() -> Tuple[float, ...]:
    """The frequency grid of Figure 7a (roughly 100 MHz to 2 GHz)."""
    return tuple(
        mhz(value)
        for value in (100, 150, 200, 250, 300, 350, 400, 500, 650, 800, 1000, 1250, 1500, 1750, 2000)
    )


def area_frequency_tradeoff(
    use_cases: UseCaseSet,
    frequencies: Sequence[float] | None = None,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    groups=None,
    area_model: AreaModel | None = None,
) -> List[ParetoPoint]:
    """Map a design at every frequency of the sweep and record area/size.

    Infeasible operating points (no topology within the configured limit can
    satisfy the constraints, typically because a single link is too slow for
    the largest flow or the busiest NI) are recorded with
    ``feasible=False`` so the curve shows where the design space ends.
    """
    base_params = params or NoCParameters()
    mapper_config = config or MapperConfig()
    model = area_model or AreaModel()
    points: List[ParetoPoint] = []
    for frequency in frequencies or default_frequency_sweep():
        point_params = replace(base_params, frequency_hz=frequency)
        mapper = UnifiedMapper(params=point_params, config=mapper_config)
        try:
            result = mapper.map(use_cases, groups=groups)
        except MappingError:
            points.append(ParetoPoint(frequency_hz=frequency, feasible=False))
            continue
        points.append(
            ParetoPoint(
                frequency_hz=frequency,
                feasible=True,
                switch_count=result.switch_count,
                area_mm2=model.mapping_area(result),
                mesh_dimensions=result.mesh_dimensions,
            )
        )
    return points


def pareto_front(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The Pareto-optimal subset: no other point has both lower frequency and lower area."""
    feasible = [point for point in points if point.feasible]
    front: List[ParetoPoint] = []
    for candidate in feasible:
        dominated = any(
            other.frequency_hz <= candidate.frequency_hz
            and other.area_mm2 <= candidate.area_mm2
            and (other.frequency_hz, other.area_mm2)
            != (candidate.frequency_hz, candidate.area_mm2)
            for other in feasible
        )
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda point: point.frequency_hz)
    return front
