"""Area and power models, DVS/DFS analysis and area-frequency trade-offs.

* :mod:`repro.power.area` — parametric 0.13 µm switch/NI area model (the
  stand-in for the paper's layout-back-annotated numbers).
* :mod:`repro.power.energy` — bit-energy power model for switches and links.
* :mod:`repro.power.dvfs` — dynamic voltage/frequency scaling analysis
  (paper §6.4): per-use-case minimum frequency and the resulting power
  savings under the conservative V² ∝ f scaling model.
* :mod:`repro.power.pareto` — area-frequency trade-off sweeps (paper §6.3).
"""

from repro.power.area import AreaModel, noc_area, switch_area
from repro.power.energy import PowerModel, noc_power
from repro.power.dvfs import DvfsAnalysis, DvfsResult, analyze_dvfs
from repro.power.pareto import ParetoPoint, area_frequency_tradeoff, pareto_front

__all__ = [
    "AreaModel",
    "switch_area",
    "noc_area",
    "PowerModel",
    "noc_power",
    "DvfsAnalysis",
    "DvfsResult",
    "analyze_dvfs",
    "ParetoPoint",
    "area_frequency_tradeoff",
    "pareto_front",
]
