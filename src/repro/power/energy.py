"""Bit-energy power model for the NoC.

The NoC power has two components:

* **traffic (dynamic) power** — every byte moved through a switch or over a
  link costs energy.  For a flow of bandwidth ``bw`` traversing ``h``
  inter-switch links the model charges
  ``bw * (h+1) * E_switch + bw * h * E_link`` (it crosses ``h+1`` switches
  and ``h`` links; same-switch flows cross one switch).
* **clock / idle power** — slot tables, arbiters and clock trees burn power
  whether or not traffic flows; this scales with the number of switch ports
  and the clock frequency.

Voltage enters through the paper's conservative DVS model (V² ∝ f): traffic
energy per byte scales with V² (∝ f / f_nominal) and idle power scales with
f·V² (∝ f² / f_nominal²).  The absolute coefficients are calibrated to the
0.13 µm Æthereal class (a few mW per switch of idle power at 500 MHz, a few
pJ per byte per hop); only relative numbers matter for reproducing the
paper's savings percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.result import MappingResult, UseCaseConfiguration
from repro.exceptions import ConfigurationError
from repro.noc.topology import Topology
from repro.units import mhz

__all__ = ["PowerModel", "noc_power"]


@dataclass(frozen=True)
class PowerModel:
    """Coefficients of the NoC power model."""

    #: Energy per byte through one switch at the nominal voltage (joules).
    switch_energy_per_byte: float = 6.0e-12
    #: Energy per byte over one inter-switch link at nominal voltage (joules).
    link_energy_per_byte: float = 3.0e-12
    #: Idle/clock power per switch port at the nominal operating point (watts).
    idle_power_per_port: float = 1.2e-3
    #: Nominal frequency the idle power is quoted at.
    nominal_frequency_hz: float = mhz(500)

    def __post_init__(self) -> None:
        if min(self.switch_energy_per_byte, self.link_energy_per_byte,
               self.idle_power_per_port) < 0:
            raise ConfigurationError("power coefficients must be non-negative")
        if self.nominal_frequency_hz <= 0:
            raise ConfigurationError("nominal frequency must be positive")

    # ------------------------------------------------------------------ #
    # scaling laws
    # ------------------------------------------------------------------ #
    def voltage_scale(self, frequency_hz: float) -> float:
        """V² relative to nominal, under the paper's V² ∝ f scaling."""
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        return frequency_hz / self.nominal_frequency_hz

    def traffic_power(
        self,
        configuration: UseCaseConfiguration,
        frequency_hz: Optional[float] = None,
    ) -> float:
        """Dynamic power (W) of one use-case's traffic at nominal voltage/frequency.

        When ``frequency_hz`` is given, the traffic energy per byte is scaled
        by V²(f)/V²(nominal) — the data moved per second is fixed by the
        use-case, only the energy per byte changes with the voltage.
        """
        scale = 1.0 if frequency_hz is None else self.voltage_scale(frequency_hz)
        power = 0.0
        for allocation in configuration:
            bandwidth = allocation.flow.bandwidth
            hops = allocation.hop_count
            power += bandwidth * (hops + 1) * self.switch_energy_per_byte
            power += bandwidth * hops * self.link_energy_per_byte
        return power * scale

    def idle_power(self, topology: Topology, frequency_hz: float) -> float:
        """Clock/idle power (W) of the whole NoC at a given frequency.

        Scales with f · V² ∝ f² under the conservative DVS model.
        """
        ports = sum(topology.port_count(sw.index) for sw in topology.switches)
        ratio = frequency_hz / self.nominal_frequency_hz
        return self.idle_power_per_port * ports * ratio * self.voltage_scale(frequency_hz)

    def use_case_power(
        self,
        result: MappingResult,
        use_case: str,
        frequency_hz: Optional[float] = None,
    ) -> float:
        """Total NoC power (W) while one use-case runs at the given frequency."""
        frequency = frequency_hz or result.params.frequency_hz
        configuration = result.configuration(use_case)
        return self.traffic_power(configuration, frequency) + self.idle_power(
            result.topology, frequency
        )

    def average_power(
        self,
        result: MappingResult,
        frequencies: Optional[dict] = None,
    ) -> float:
        """Average NoC power (W) over all use-cases (equal dwell time each).

        ``frequencies`` optionally maps use-case name to the frequency the
        NoC runs at while that use-case is active (the DVS/DFS scenario);
        without it every use-case runs at the design frequency.
        """
        names = list(result.configurations)
        if not names:
            return 0.0
        total = 0.0
        for name in names:
            frequency = None if frequencies is None else frequencies.get(name)
            total += self.use_case_power(result, name, frequency)
        return total / len(names)


#: Module-level default model used by the convenience function below.
DEFAULT_POWER_MODEL = PowerModel()


def noc_power(
    result: MappingResult,
    use_case: str,
    frequency_hz: Optional[float] = None,
    model: PowerModel | None = None,
) -> float:
    """Power (W) of the NoC while one use-case runs (default model)."""
    return (model or DEFAULT_POWER_MODEL).use_case_power(result, use_case, frequency_hz)
