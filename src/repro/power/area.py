"""Parametric switch / NoC area model (0.13 µm class).

The paper takes switch areas "from layouts with back-annotated worst-case
timing in 0.13 µm technology" and reports the NoC area as the sum of the
switch areas (network-interface area is counted as part of the core area).
We cannot reproduce the layouts, so this module provides a parametric model
calibrated to the published Æthereal figures for that technology node:
a 6-port guaranteed-throughput switch occupies roughly 0.17-0.20 mm² at
500 MHz.

The model captures the two first-order effects the Pareto study (Figure 7a)
relies on:

* area grows super-linearly with the switch port count (the crossbar is
  O(ports²), buffering and slot tables are O(ports)); and
* area grows with the target clock frequency (deeper pipelining, larger
  drivers, more buffering to close timing), roughly linearly over the
  100 MHz - 2 GHz range of interest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import MappingResult
from repro.exceptions import ConfigurationError
from repro.noc.topology import Topology
from repro.units import mhz

__all__ = ["AreaModel", "switch_area", "noc_area"]


@dataclass(frozen=True)
class AreaModel:
    """Coefficients of the parametric switch area model.

    ``area(ports, f) = (base + linear*ports + quadratic*ports²) * (1 + slope*(f - f_ref)/f_ref)``

    with all areas in mm² and frequencies in Hz.  The defaults are calibrated
    so that a 6-port switch at the 500 MHz reference point costs ~0.17 mm²,
    matching the published Æthereal 0.13 µm figures.
    """

    base_mm2: float = 0.010
    per_port_mm2: float = 0.009
    per_port2_mm2: float = 0.003
    frequency_slope: float = 0.55
    reference_frequency_hz: float = mhz(500)
    minimum_scale: float = 0.45

    def __post_init__(self) -> None:
        if min(self.base_mm2, self.per_port_mm2, self.per_port2_mm2) < 0:
            raise ConfigurationError("area coefficients must be non-negative")
        if self.reference_frequency_hz <= 0:
            raise ConfigurationError("reference frequency must be positive")
        if not 0 < self.minimum_scale <= 1:
            raise ConfigurationError("minimum_scale must be in (0, 1]")

    def switch_area(self, ports: int, frequency_hz: float) -> float:
        """Area (mm²) of one switch with ``ports`` ports at ``frequency_hz``."""
        if ports <= 0:
            raise ConfigurationError(f"port count must be positive, got {ports}")
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        structural = (
            self.base_mm2
            + self.per_port_mm2 * ports
            + self.per_port2_mm2 * ports * ports
        )
        relative = (frequency_hz - self.reference_frequency_hz) / self.reference_frequency_hz
        scale = max(self.minimum_scale, 1.0 + self.frequency_slope * relative)
        return structural * scale

    def topology_area(self, topology: Topology, frequency_hz: float) -> float:
        """Total switch area (mm²) of a topology at one operating frequency."""
        return sum(
            self.switch_area(topology.port_count(switch.index), frequency_hz)
            for switch in topology.switches
        )

    def mapping_area(self, result: MappingResult) -> float:
        """Total switch area (mm²) of a mapping result at its own frequency."""
        return self.topology_area(result.topology, result.params.frequency_hz)


#: Module-level default model used by the convenience functions below.
DEFAULT_AREA_MODEL = AreaModel()


def switch_area(ports: int, frequency_hz: float, model: AreaModel | None = None) -> float:
    """Area (mm²) of a single switch under the default (or given) area model."""
    return (model or DEFAULT_AREA_MODEL).switch_area(ports, frequency_hz)


def noc_area(
    topology_or_result: Topology | MappingResult,
    frequency_hz: float | None = None,
    model: AreaModel | None = None,
) -> float:
    """Total NoC switch area (mm²) of a topology or mapping result.

    When a :class:`MappingResult` is given its own operating frequency is
    used unless ``frequency_hz`` overrides it.
    """
    chosen = model or DEFAULT_AREA_MODEL
    if isinstance(topology_or_result, MappingResult):
        frequency = frequency_hz or topology_or_result.params.frequency_hz
        return chosen.topology_area(topology_or_result.topology, frequency)
    if frequency_hz is None:
        raise ConfigurationError("frequency_hz is required when passing a bare topology")
    return chosen.topology_area(topology_or_result, frequency_hz)
