"""Input/output: JSON serialisation, structural export and text reports.

* :mod:`repro.io.serialization` — JSON round-trip for use-case sets and
  mapping results (the library's interchange format).
* :mod:`repro.io.export` — structural export of a finished NoC design (our
  stand-in for the paper's SystemC/VHDL generation step).
* :mod:`repro.io.report` — plain-text tables for the experiment sweeps, in
  the shape the paper's figures report them.
"""

from repro.io.serialization import (
    use_case_set_to_dict,
    use_case_set_from_dict,
    save_use_case_set,
    load_use_case_set,
    mapping_result_to_dict,
    mapping_result_from_dict,
    save_mapping_result,
    load_mapping_result,
    mapping_fingerprint,
)
from repro.io.export import export_design, design_to_dict
from repro.io.report import format_rows, format_summary

__all__ = [
    "use_case_set_to_dict",
    "use_case_set_from_dict",
    "save_use_case_set",
    "load_use_case_set",
    "mapping_result_to_dict",
    "mapping_result_from_dict",
    "save_mapping_result",
    "load_mapping_result",
    "mapping_fingerprint",
    "export_design",
    "design_to_dict",
    "format_rows",
    "format_summary",
]
