"""JSON serialisation of use-case sets and mapping results.

The on-disk format is deliberately plain JSON so specifications can be
written by hand, produced by other tools, or diffed in version control:

.. code-block:: json

    {
      "name": "my-design",
      "use_cases": [
        {
          "name": "video",
          "cores": [{"name": "cpu", "kind": "processor"}],
          "flows": [
            {"source": "cpu", "destination": "mem",
             "bandwidth_mbps": 200.0, "latency_us": 100.0,
             "traffic_class": "GT"}
          ]
        }
      ]
    }

Bandwidths are stored in MB/s and latencies in microseconds (the paper's
units) and converted to the library's internal base units on load.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

from repro.core.result import MappingResult, UseCaseConfiguration, FlowAllocation
from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SerializationError
from repro.noc.topology import Switch, Topology
from repro.params import MapperConfig, NoCParameters
from repro.units import mbps, to_mbps, us

__all__ = [
    "use_case_set_to_dict",
    "use_case_set_from_dict",
    "save_use_case_set",
    "load_use_case_set",
    "document_fingerprint",
    "topology_to_dict",
    "topology_fingerprint",
    "mapping_result_to_dict",
    "mapping_result_from_dict",
    "save_mapping_result",
    "load_mapping_result",
    "mapping_fingerprint",
]

_MICROSECOND = 1e-6


def use_case_set_to_dict(use_cases: UseCaseSet) -> Dict:
    """Convert a use-case set to its JSON-ready dictionary form."""
    return {
        "name": use_cases.name,
        "use_cases": [
            {
                "name": use_case.name,
                "parents": list(use_case.parents),
                "cores": [
                    {"name": core.name, "kind": core.kind} for core in use_case.cores
                ],
                "flows": [
                    {
                        "source": flow.source,
                        "destination": flow.destination,
                        "bandwidth_mbps": to_mbps(flow.bandwidth),
                        "latency_us": flow.latency / _MICROSECOND,
                        "traffic_class": flow.traffic_class,
                    }
                    for flow in use_case.flows
                ],
            }
            for use_case in use_cases
        ],
    }


def use_case_set_from_dict(document: Dict) -> UseCaseSet:
    """Reconstruct a use-case set from its dictionary form."""
    try:
        name = document["name"]
        entries = document["use_cases"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed use-case document: missing {exc}") from None
    use_cases = []
    for entry in entries:
        try:
            cores = [Core(core["name"], core.get("kind", "core")) for core in entry.get("cores", [])]
            flows = [
                Flow(
                    source=flow["source"],
                    destination=flow["destination"],
                    bandwidth=mbps(flow["bandwidth_mbps"]),
                    latency=us(flow.get("latency_us", 1e3)),
                    traffic_class=flow.get("traffic_class", "GT"),
                )
                for flow in entry.get("flows", [])
            ]
            use_cases.append(
                UseCase(
                    entry["name"],
                    flows=flows,
                    cores=cores,
                    parents=tuple(entry.get("parents", ())),
                )
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed use-case entry {entry.get('name', '?')!r}: {exc}"
            ) from None
    return UseCaseSet(use_cases, name=name)


def save_use_case_set(use_cases: UseCaseSet, path: Union[str, Path]) -> Path:
    """Write a use-case set to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(use_case_set_to_dict(use_cases), indent=2))
    return target


def load_use_case_set(path: Union[str, Path]) -> UseCaseSet:
    """Load a use-case set from a JSON file."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read use-case set from {source}: {exc}") from exc
    return use_case_set_from_dict(document)


def topology_to_dict(topology: Topology) -> Dict:
    """Convert a topology to its JSON-ready dictionary form.

    The canonical topology document: everything :func:`_topology_from_dict`
    needs to rebuild an equivalent :class:`Topology` (name, kind, switch
    count, grid dimensions, per-switch positions and the directed link
    list).  Shared by :func:`mapping_result_to_dict` and the engine-state
    store's evaluation keys (:func:`topology_fingerprint`).
    """
    document = {
        "name": topology.name,
        "kind": topology.kind,
        "switch_count": topology.switch_count,
        "dimensions": None
        if topology.dimensions is None
        else list(topology.dimensions),
        "positions": [
            None if switch.position is None else list(switch.position)
            for switch in topology.switches
        ],
        "links": [list(link) for link in topology.links],
    }
    if topology.has_failures:
        # Emitted only for degraded topologies so the canonical document —
        # and every fingerprint derived from it — of a pristine topology is
        # byte-identical to what it was before failures existed.
        document["failures"] = topology.failures.to_dict()
    return document


def document_fingerprint(document) -> str:
    """Stable SHA-256 over a JSON-ready document's canonical form.

    THE content-key primitive of the code base: every store key and
    topology fingerprint is this exact ``sort_keys`` JSON + SHA-256
    recipe, so writers and readers that derive keys independently — the
    engine-state store, the engines' seed indexes — always agree
    byte-for-byte.
    """
    blob = json.dumps(document, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def topology_fingerprint(topology: Topology) -> str:
    """Stable SHA-256 over a topology's canonical dictionary form.

    Two topologies with equal fingerprints are structurally identical
    (same switches, positions and links), so content-keyed caches — the
    :class:`~repro.jobs.store.EngineStateStore` evaluation contexts — can
    use the fingerprint where an object identity would not survive
    serialisation.
    """
    return document_fingerprint(topology_to_dict(topology))


def mapping_result_to_dict(result: MappingResult) -> Dict:
    """Convert a mapping result to a JSON-ready dictionary.

    The dictionary contains everything needed to configure a NoC instance —
    topology, core placement, groups and, per use-case, every flow's path
    and TDMA slots — plus the full operating point and mapper configuration,
    so :func:`mapping_result_from_dict` can rebuild an equivalent
    :class:`MappingResult` (the persistent job cache relies on this round
    trip).
    """
    return {
        "method": result.method,
        "topology": topology_to_dict(result.topology),
        "parameters": {
            "frequency_mhz": result.params.frequency_hz / 1e6,
            "link_width_bits": result.params.link_width_bits,
            "slot_table_size": result.params.slot_table_size,
        },
        "params": result.params.to_dict(),
        "config": result.config.to_dict(),
        "attempted_topologies": list(result.attempted_topologies),
        "core_mapping": dict(result.core_mapping),
        "groups": [sorted(group) for group in result.groups],
        "use_cases": {
            name: [
                {
                    "source": allocation.flow.source,
                    "destination": allocation.flow.destination,
                    "bandwidth_mbps": to_mbps(allocation.flow.bandwidth),
                    "latency_us": allocation.flow.latency / _MICROSECOND,
                    "traffic_class": allocation.flow.traffic_class,
                    "path": list(allocation.switch_path),
                    "slots": {
                        f"{link[0]}->{link[1]}": list(slots)
                        for link, slots in allocation.link_slots.items()
                    },
                }
                for allocation in configuration
            ]
            for name, configuration in result.configurations.items()
        },
    }


def _topology_from_dict(document: Dict) -> Topology:
    """Rebuild a topology from its dictionary form."""
    dimensions = document.get("dimensions")
    if dimensions is not None:
        dimensions = tuple(dimensions)
    positions = document.get("positions")
    count = int(document["switch_count"])
    switches = []
    for index in range(count):
        if positions is not None:
            stored = positions[index]
            position = None if stored is None else tuple(stored)
        elif dimensions is not None:
            # Older documents lack positions; meshes/tori number switches
            # row-major, so the grid coordinate is recoverable.
            position = (index // dimensions[1], index % dimensions[1])
        else:
            position = None
        switches.append(Switch(index=index, position=position))
    failures = document.get("failures")
    if failures is not None:
        from repro.noc.failures import FailureSet

        failures = FailureSet.from_dict(failures)
    return Topology(
        name=document["name"],
        switches=switches,
        links=[tuple(link) for link in document.get("links", [])],
        kind=document.get("kind", "custom"),
        dimensions=dimensions,
        failures=failures,
    )


def mapping_result_from_dict(document: Dict) -> MappingResult:
    """Reconstruct a :class:`MappingResult` from its dictionary form.

    The inverse of :func:`mapping_result_to_dict`: topology, placement,
    groups and every flow allocation (paths and TDMA slots) come back as
    live objects.  Documents written before the round trip existed (without
    ``params``/``config`` blocks) load with defaults for the missing fields.
    """
    try:
        topology = _topology_from_dict(document["topology"])
        groups = tuple(frozenset(group) for group in document["groups"])
        core_mapping = dict(document["core_mapping"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed mapping-result document: {exc}") from None

    if "params" in document:
        params = NoCParameters.from_dict(document["params"])
    else:
        legacy = document.get("parameters", {})
        params = NoCParameters.from_dict(
            {key: legacy[key] for key in ("frequency_mhz", "link_width_bits",
                                          "slot_table_size") if key in legacy}
        )
    config = MapperConfig.from_dict(document.get("config", {}))

    def group_id_of(use_case: str) -> int:
        for index, group in enumerate(groups):
            if use_case in group:
                return index
        raise SerializationError(
            f"use-case {use_case!r} appears in no configuration group"
        )

    configurations: Dict[str, UseCaseConfiguration] = {}
    try:
        for name, entries in document.get("use_cases", {}).items():
            configuration = UseCaseConfiguration(name, group_id_of(name))
            for entry in entries:
                flow = Flow(
                    source=entry["source"],
                    destination=entry["destination"],
                    bandwidth=mbps(entry["bandwidth_mbps"]),
                    latency=us(entry.get("latency_us", 1e3)),
                    traffic_class=entry.get("traffic_class", "GT"),
                )
                link_slots = {}
                for key, slots in entry.get("slots", {}).items():
                    source_switch, _, destination_switch = key.partition("->")
                    link_slots[(int(source_switch), int(destination_switch))] = tuple(slots)
                configuration.add(
                    FlowAllocation(
                        use_case=name,
                        flow=flow,
                        switch_path=tuple(entry["path"]),
                        link_slots=link_slots,
                    )
                )
            configurations[name] = configuration
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed flow allocation in document: {exc}") from None

    return MappingResult(
        method=document.get("method", "unified"),
        topology=topology,
        params=params,
        config=config,
        core_mapping=core_mapping,
        groups=groups,
        configurations=configurations,
        attempted_topologies=tuple(document.get("attempted_topologies", ())),
    )


def save_mapping_result(result: MappingResult, path: Union[str, Path]) -> Path:
    """Write a mapping result to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(mapping_result_to_dict(result), indent=2))
    return target


def load_mapping_result(path: Union[str, Path]) -> MappingResult:
    """Load a mapping result back from a JSON file."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read mapping result from {source}: {exc}") from exc
    return mapping_result_from_dict(document)


def mapping_fingerprint(result: MappingResult) -> str:
    """Stable SHA-256 over every observable decision of a mapping result.

    Covers the final topology, the core placement and, per use-case, every
    flow's switch path and TDMA slot assignment — exactly the quantities the
    regression suite pins against the seed implementation.  Two results with
    equal fingerprints configure identical NoCs, which is how the job runner
    proves parallel execution bit-identical to serial.
    """
    slots: Dict[str, list] = {}
    for name, configuration in sorted(result.configurations.items()):
        for allocation in configuration:
            key = f"{name}:{allocation.flow.source}->{allocation.flow.destination}"
            slots[key] = [
                list(allocation.switch_path),
                sorted(
                    (str(link), list(indices))
                    for link, indices in allocation.link_slots.items()
                ),
            ]
    blob = json.dumps(
        [result.topology.name, sorted(result.core_mapping.items()), slots],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()
