"""JSON serialisation of use-case sets and mapping results.

The on-disk format is deliberately plain JSON so specifications can be
written by hand, produced by other tools, or diffed in version control:

.. code-block:: json

    {
      "name": "my-design",
      "use_cases": [
        {
          "name": "video",
          "cores": [{"name": "cpu", "kind": "processor"}],
          "flows": [
            {"source": "cpu", "destination": "mem",
             "bandwidth_mbps": 200.0, "latency_us": 100.0,
             "traffic_class": "GT"}
          ]
        }
      ]
    }

Bandwidths are stored in MB/s and latencies in microseconds (the paper's
units) and converted to the library's internal base units on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.result import MappingResult
from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SerializationError
from repro.units import mbps, to_mbps, us

__all__ = [
    "use_case_set_to_dict",
    "use_case_set_from_dict",
    "save_use_case_set",
    "load_use_case_set",
    "mapping_result_to_dict",
    "save_mapping_result",
]

_MICROSECOND = 1e-6


def use_case_set_to_dict(use_cases: UseCaseSet) -> Dict:
    """Convert a use-case set to its JSON-ready dictionary form."""
    return {
        "name": use_cases.name,
        "use_cases": [
            {
                "name": use_case.name,
                "parents": list(use_case.parents),
                "cores": [
                    {"name": core.name, "kind": core.kind} for core in use_case.cores
                ],
                "flows": [
                    {
                        "source": flow.source,
                        "destination": flow.destination,
                        "bandwidth_mbps": to_mbps(flow.bandwidth),
                        "latency_us": flow.latency / _MICROSECOND,
                        "traffic_class": flow.traffic_class,
                    }
                    for flow in use_case.flows
                ],
            }
            for use_case in use_cases
        ],
    }


def use_case_set_from_dict(document: Dict) -> UseCaseSet:
    """Reconstruct a use-case set from its dictionary form."""
    try:
        name = document["name"]
        entries = document["use_cases"]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed use-case document: missing {exc}") from None
    use_cases = []
    for entry in entries:
        try:
            cores = [Core(core["name"], core.get("kind", "core")) for core in entry.get("cores", [])]
            flows = [
                Flow(
                    source=flow["source"],
                    destination=flow["destination"],
                    bandwidth=mbps(flow["bandwidth_mbps"]),
                    latency=us(flow.get("latency_us", 1e3)),
                    traffic_class=flow.get("traffic_class", "GT"),
                )
                for flow in entry.get("flows", [])
            ]
            use_cases.append(
                UseCase(
                    entry["name"],
                    flows=flows,
                    cores=cores,
                    parents=tuple(entry.get("parents", ())),
                )
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed use-case entry {entry.get('name', '?')!r}: {exc}"
            ) from None
    return UseCaseSet(use_cases, name=name)


def save_use_case_set(use_cases: UseCaseSet, path: Union[str, Path]) -> Path:
    """Write a use-case set to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(use_case_set_to_dict(use_cases), indent=2))
    return target


def load_use_case_set(path: Union[str, Path]) -> UseCaseSet:
    """Load a use-case set from a JSON file."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read use-case set from {source}: {exc}") from exc
    return use_case_set_from_dict(document)


def mapping_result_to_dict(result: MappingResult) -> Dict:
    """Convert a mapping result to a JSON-ready dictionary.

    The dictionary contains everything needed to configure a NoC instance:
    topology, core placement, groups and, per use-case, every flow's path
    and TDMA slots.  (Loading a result back into live objects is not
    supported — re-run the mapper on the loaded use-case set instead; the
    algorithms are deterministic.)
    """
    return {
        "method": result.method,
        "topology": {
            "name": result.topology.name,
            "kind": result.topology.kind,
            "switch_count": result.topology.switch_count,
            "dimensions": result.topology.dimensions,
            "links": [list(link) for link in result.topology.links],
        },
        "parameters": {
            "frequency_mhz": result.params.frequency_hz / 1e6,
            "link_width_bits": result.params.link_width_bits,
            "slot_table_size": result.params.slot_table_size,
        },
        "core_mapping": dict(result.core_mapping),
        "groups": [sorted(group) for group in result.groups],
        "use_cases": {
            name: [
                {
                    "source": allocation.flow.source,
                    "destination": allocation.flow.destination,
                    "bandwidth_mbps": to_mbps(allocation.flow.bandwidth),
                    "path": list(allocation.switch_path),
                    "slots": {
                        f"{link[0]}->{link[1]}": list(slots)
                        for link, slots in allocation.link_slots.items()
                    },
                }
                for allocation in configuration
            ]
            for name, configuration in result.configurations.items()
        },
    }


def save_mapping_result(result: MappingResult, path: Union[str, Path]) -> Path:
    """Write a mapping result to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(mapping_result_to_dict(result), indent=2))
    return target
