"""Structural export of a finished NoC design.

The last phase of the paper's flow emits SystemC and RTL VHDL for the
configured Æthereal instance.  Shipping an RTL generator is outside the
scope of a Python reproduction, so this module exports the same
*information* in two forms:

* :func:`design_to_dict` — a hierarchical description of every switch, NI,
  link and per-use-case slot-table programming, suitable for driving an
  external generator; and
* :func:`export_design` — a human-readable structural netlist (text) listing
  the instances and their connections, which serves as the hand-off document
  to a hardware team.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.result import MappingResult
from repro.units import to_mbps

__all__ = ["design_to_dict", "export_design"]


def design_to_dict(result: MappingResult) -> Dict:
    """Hierarchical structural description of the configured NoC."""
    topology = result.topology
    switches = []
    for switch in topology.switches:
        switches.append(
            {
                "name": f"switch_{switch.index}",
                "index": switch.index,
                "position": switch.position,
                "ports": topology.port_count(switch.index),
                "attached_cores": list(result.cores_on_switch(switch.index)),
            }
        )
    network_interfaces = [
        {
            "name": f"ni_{core}",
            "core": core,
            "switch": switch_index,
        }
        for core, switch_index in sorted(result.core_mapping.items())
    ]
    links = [
        {"name": f"link_{src}_{dst}", "source": src, "destination": dst}
        for src, dst in topology.links
    ]
    slot_tables: Dict[str, Dict[str, Dict[str, list]]] = {}
    for name, configuration in result.configurations.items():
        per_link: Dict[str, Dict[str, list]] = {}
        for allocation in configuration:
            for link, slots in allocation.link_slots.items():
                link_name = f"link_{link[0]}_{link[1]}"
                per_link.setdefault(link_name, {})[
                    f"{allocation.flow.source}->{allocation.flow.destination}"
                ] = list(slots)
        slot_tables[name] = per_link
    return {
        "design": result.method,
        "topology": topology.name,
        "frequency_mhz": result.params.frequency_hz / 1e6,
        "link_width_bits": result.params.link_width_bits,
        "slot_table_size": result.params.slot_table_size,
        "switches": switches,
        "network_interfaces": network_interfaces,
        "links": links,
        "configurations": slot_tables,
    }


def export_design(result: MappingResult, path: Optional[Union[str, Path]] = None) -> str:
    """Render the structural netlist as text (and optionally write it to a file)."""
    description = design_to_dict(result)
    lines = [
        f"// NoC design exported by repro ({result.method} method)",
        f"// topology: {description['topology']}  "
        f"frequency: {description['frequency_mhz']:.0f} MHz  "
        f"link width: {description['link_width_bits']} bits  "
        f"slots: {description['slot_table_size']}",
        "",
    ]
    for switch in description["switches"]:
        cores = ", ".join(switch["attached_cores"]) or "-"
        lines.append(
            f"switch {switch['name']} ports={switch['ports']} "
            f"position={switch['position']} cores=[{cores}]"
        )
    lines.append("")
    for ni in description["network_interfaces"]:
        lines.append(f"ni {ni['name']} core={ni['core']} switch=switch_{ni['switch']}")
    lines.append("")
    for link in description["links"]:
        lines.append(
            f"link {link['name']} switch_{link['source']} -> switch_{link['destination']}"
        )
    lines.append("")
    for use_case, configuration in sorted(result.configurations.items()):
        lines.append(f"configuration {use_case}:")
        for allocation in configuration:
            path_text = " -> ".join(str(index) for index in allocation.switch_path)
            lines.append(
                f"  flow {allocation.flow.source}->{allocation.flow.destination} "
                f"bw={to_mbps(allocation.flow.bandwidth):.1f}MB/s path=[{path_text}] "
                f"slots/link={allocation.slots_per_link}"
            )
        lines.append("")
    text = "\n".join(lines)
    if path is not None:
        Path(path).write_text(text)
    return text
