"""Plain-text tables for experiment results.

The benchmark harness prints the rows produced by
:mod:`repro.analysis.sweeps` through these helpers, so the console output of
``pytest benchmarks/ --benchmark-only`` doubles as the regenerated data of
every figure in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_rows", "format_summary"]


def _format_value(value: object) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return "/".join(str(item) for item in value)
    return str(value)


def format_rows(rows: Sequence, columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render sweep rows (or plain dicts) as an aligned text table."""
    dicts: List[Dict[str, object]] = []
    for row in rows:
        dicts.append(row.as_dict() if hasattr(row, "as_dict") else dict(row))
    if not dicts:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(dicts[0].keys())
    header = [str(column) for column in columns]
    body = [[_format_value(entry.get(column)) for column in columns] for entry in dicts]
    widths = [
        max(len(header[i]), max(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_summary(summary: Mapping[str, object], title: str = "") -> str:
    """Render a nested summary dictionary (e.g. the headline study) as text."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in summary.items():
        if isinstance(value, Mapping):
            lines.append(f"{key}:")
            for inner_key, inner_value in value.items():
                if isinstance(inner_value, Mapping):
                    rendered = ", ".join(
                        f"{k}={_format_value(v)}" for k, v in inner_value.items()
                    )
                    lines.append(f"  {inner_key}: {rendered}")
                else:
                    lines.append(f"  {inner_key}: {_format_value(inner_value)}")
        else:
            lines.append(f"{key}: {_format_value(value)}")
    return "\n".join(lines)
