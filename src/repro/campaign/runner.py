"""Campaign execution: fan the matrix out, settle cells, reduce, resume.

The :class:`CampaignRunner` owns one *campaign directory* and drives a
:class:`~repro.campaign.spec.CampaignSpec` to a ranked report through the
existing job fabric::

    OUT/cells/<job_hash>.json   one settled record per completed cell
    OUT/cache/                  the JobRunner's JobCache + EngineStateStore
                                (unless an external cache_dir is given)
    OUT/report.json             deterministic ranked report (byte-stable)
    OUT/report.md               markdown digest (wall-clock included)
    OUT/trajectory.jsonl        append-only history, one line per run

Resumability is content-addressed twice over.  A cell's record file is
named by its :func:`~repro.jobs.spec.job_hash`, so a re-run (after a crash,
a ``--max-cells`` slice, or a farm drain) loads settled cells from disk and
executes **zero** of them again; and the cells that do execute run through
the :class:`~repro.jobs.runner.JobRunner` with a persistent cache, so even
a cell whose *record* was lost is answered from the job cache without
recomputing.  Records are written cell by cell, immediately after each
batch settles — a crash loses at most the batch in flight.

Farm execution splits the same flow in two: :meth:`submit` drops every
unsettled cell's job spec into a ``repro serve`` inbox (one file per cell,
named after the campaign and cell hashes), and :meth:`collect` folds the
service's result envelopes back into cell records.  ``run`` afterwards
executes whatever the farm has not answered and reduces as usual.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.campaign.report import (
    append_trajectory,
    build_report,
    cell_outcome,
    dump_report,
    render_digest,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, campaign_hash
from repro.exceptions import ReproError
from repro.jobs.runner import JobRunner
from repro.jobs.spec import job_hash, job_to_dict, save_job

__all__ = ["CampaignRunner"]


class CampaignRunner:
    """Executes campaigns against one campaign directory, resumably.

    Parameters
    ----------
    out_dir:
        The campaign directory (created if missing).  Everything the run
        produces — cell records, the default cache, the report artifacts,
        the trajectory — lives under it.
    workers:
        Process-pool width for cell execution; cells are independent jobs,
        so batches of up to ``workers`` cells run concurrently.
    cache_dir:
        Result cache handed to the :class:`JobRunner`; defaults to
        ``out_dir / "cache"``.  Sharing one cache directory across
        campaigns lets overlapping matrices answer each other's cells.
    seed_engines:
        Warm-start executions from the cache's engine-state store
        (default on — campaigns are exactly the sibling-heavy traffic the
        store exists for).
    trajectory_path:
        Where the per-run history line is appended; defaults to
        ``out_dir / "trajectory.jsonl"``.  Point several campaigns at one
        file to maintain a single tracked trajectory next to
        ``BENCH_mapper.json``.
    """

    def __init__(
        self,
        out_dir: Union[str, Path],
        workers: int = 1,
        cache_dir: Union[str, Path, None] = None,
        seed_engines: bool = True,
        trajectory_path: Union[str, Path, None] = None,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.cells_dir = self.out_dir / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir = Path(cache_dir) if cache_dir else self.out_dir / "cache"
        self.workers = max(1, int(workers))
        self.seed_engines = seed_engines
        self.trajectory_path = (
            Path(trajectory_path) if trajectory_path
            else self.out_dir / "trajectory.jsonl"
        )
        self.report_path = self.out_dir / "report.json"
        self.digest_path = self.out_dir / "report.md"

    # ------------------------------------------------------------------ #
    # cell settlement
    # ------------------------------------------------------------------ #
    def _record_path(self, spec_hash: str) -> Path:
        return self.cells_dir / f"{spec_hash}.json"

    def _load_record(self, spec_hash: str) -> Optional[Dict]:
        try:
            record = json.loads(self._record_path(spec_hash).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def _settle(self, cell: CampaignCell, spec_hash: str, result) -> Dict:
        """Write one cell's settled record (atomic publish via temp+rename)."""
        record = {
            "cell_id": cell.cell_id,
            "workload": cell.workload,
            "method": cell.method,
            "parameter_set": cell.parameter_set,
            "seed": cell.seed,
            "kind": cell.job.KIND,
            "job_hash": spec_hash,
            "outcome": cell_outcome(cell.job.KIND, result.payload),
            # volatile diagnostics (digest/trajectory only, never report.json)
            "elapsed_s": round(result.elapsed_s, 6),
            "cached": bool(result.cached),
        }
        target = self._record_path(spec_hash)
        scratch = target.with_suffix(".tmp")
        scratch.write_text(json.dumps(record, indent=2, sort_keys=True))
        scratch.replace(target)
        return record

    def _expanded(self, spec: CampaignSpec) -> List[Tuple[CampaignCell, str]]:
        cells = spec.expand()
        return [(cell, job_hash(cell.job)) for cell in cells]

    # ------------------------------------------------------------------ #
    # local execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: CampaignSpec,
        max_cells: Optional[int] = None,
    ) -> Dict:
        """Execute (or resume) a campaign and reduce it into the report.

        ``max_cells`` bounds the number of cells *executed* this call (the
        smoke/CI knob); settled cells never count against it.  Returns a
        summary dictionary with the executed/resumed split and the report
        paths; ``report.json`` is only written when every cell is settled,
        so a partial run never publishes a partial report as final.
        """
        work = self._expanded(spec)
        chash = campaign_hash(spec)
        records: Dict[str, Dict] = {}
        pending: List[Tuple[CampaignCell, str]] = []
        for cell, spec_hash in work:
            record = self._load_record(spec_hash)
            if record is not None:
                records[spec_hash] = record
            else:
                pending.append((cell, spec_hash))

        resumed = len(records)
        budget = len(pending) if max_cells is None else min(max_cells, len(pending))
        executed = 0
        runner = JobRunner(
            workers=self.workers,
            cache_dir=self.cache_dir,
            seed_engines=self.seed_engines,
        )
        # Batches of `workers` cells: wide enough to use the pool, narrow
        # enough that a crash between batches loses almost nothing.
        while executed < budget:
            batch = pending[executed:min(budget, executed + self.workers)]
            results = runner.run_many([cell.job for cell, _ in batch])
            for (cell, spec_hash), result in zip(batch, results):
                records[spec_hash] = self._settle(cell, spec_hash, result)
            executed += len(batch)

        summary = {
            "campaign": spec.name,
            "campaign_hash": chash,
            "cells": len(work),
            "executed": executed,
            "resumed": resumed,
            "pending": len(work) - len(records),
            "out_dir": str(self.out_dir),
        }
        if not summary["pending"]:
            summary.update(self.reduce(spec, executed=executed, resumed=resumed))
        return summary

    # ------------------------------------------------------------------ #
    # reduction
    # ------------------------------------------------------------------ #
    def reduce(
        self,
        spec: CampaignSpec,
        executed: int = 0,
        resumed: int = 0,
        write_trajectory: bool = True,
    ) -> Dict:
        """Build and publish the report artifacts from the settled records.

        Tolerates missing cells (they are listed in the report's
        ``missing_cells``), so ``campaign report`` can render progress
        while a farm is still executing; the trajectory line is only
        appended for complete campaigns — history should track finished
        runs, not partial drains.
        """
        work = self._expanded(spec)
        records, missing = [], []
        for cell, spec_hash in work:
            record = self._load_record(spec_hash)
            if record is None:
                missing.append(cell.cell_id)
            else:
                records.append(record)
        header = {
            "name": spec.name,
            "hash": campaign_hash(spec),
            "workloads": [workload.label for workload in spec.workloads],
            "methods": [method.label for method in spec.methods],
            "parameter_sets": [pset.label for pset in spec.parameter_sets],
            "seeds": list(spec.seeds),
        }
        report = build_report(header, records, missing)
        self.report_path.write_text(dump_report(report))
        self.digest_path.write_text(render_digest(report, records))
        outcome = {
            "report": str(self.report_path),
            "digest": str(self.digest_path),
            "missing": len(missing),
        }
        if write_trajectory and not missing:
            entry = append_trajectory(
                self.trajectory_path, report, records, executed, resumed
            )
            outcome["trajectory"] = str(self.trajectory_path)
            outcome["trajectory_entry"] = entry
        return outcome

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #
    def status(self, spec: CampaignSpec) -> Dict:
        """Read-only progress view: which cells are settled, which are not."""
        work = self._expanded(spec)
        done, pending = [], []
        for cell, spec_hash in work:
            (done if self._load_record(spec_hash) is not None else pending).append(
                cell.cell_id
            )
        by_method: Dict[str, Dict[str, int]] = {}
        for cell, spec_hash in work:
            slot = by_method.setdefault(cell.method, {"done": 0, "pending": 0})
            slot["done" if self._load_record(spec_hash) is not None else "pending"] += 1
        return {
            "campaign": spec.name,
            "campaign_hash": campaign_hash(spec),
            "cells": len(work),
            "done": len(done),
            "pending": len(pending),
            "pending_cells": pending,
            "by_method": by_method,
            "report_written": self.report_path.exists(),
        }

    # ------------------------------------------------------------------ #
    # farm integration (repro serve)
    # ------------------------------------------------------------------ #
    def submit(self, spec: CampaignSpec, inbox: Union[str, Path]) -> List[Path]:
        """Drop every unsettled cell's job spec into a service inbox.

        One file per cell, named ``campaign-<chash8>-<index>-<jhash8>.json``
        so a drained inbox remains traceable back to its campaign, and
        resubmitting an unchanged campaign re-creates files a previous
        submit already named (the service's cache answers those for free).
        Returns the paths written.
        """
        target = Path(inbox)
        target.mkdir(parents=True, exist_ok=True)
        chash = campaign_hash(spec)[:8]
        submitted: List[Path] = []
        for index, (cell, spec_hash) in enumerate(self._expanded(spec)):
            if self._load_record(spec_hash) is not None:
                continue
            path = target / f"campaign-{chash}-{index:04d}-{spec_hash[:8]}.json"
            save_job(cell.job, path)
            submitted.append(path)
        return submitted

    def collect(self, spec: CampaignSpec, inbox: Union[str, Path]) -> Dict:
        """Fold a service inbox's result envelopes into settled cell records.

        Scans ``INBOX/results/*.json`` for envelopes whose ``spec_hash``
        matches an unsettled cell and settles those cells from the stored
        envelope — the farm half of resumability.  Returns
        ``{"collected": n, "pending": m}``.
        """
        from repro.jobs.runner import JobResult

        results_dir = Path(inbox) / "results"
        if not results_dir.is_dir():
            raise ReproError(f"{inbox} has no results/ directory — not a serve inbox")
        wanted: Dict[str, CampaignCell] = {}
        for cell, spec_hash in self._expanded(spec):
            if self._load_record(spec_hash) is None:
                wanted[spec_hash] = cell
        collected = 0
        for path in sorted(results_dir.glob("*.json")):
            if not wanted:
                break
            try:
                envelopes = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(envelopes, list):
                continue
            for document in envelopes:
                if not isinstance(document, dict):
                    continue
                spec_hash = document.get("spec_hash")
                cell = wanted.pop(spec_hash, None)
                if cell is None:
                    continue
                self._settle(cell, spec_hash, JobResult.from_dict(document))
                collected += 1
        return {"collected": collected, "pending": len(wanted)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignRunner({str(self.out_dir)!r})"


# job_to_dict is re-exported through the campaign CLI's --show path
_ = job_to_dict
