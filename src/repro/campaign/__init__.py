"""Campaign subsystem: declarative study matrices over the job fabric.

A campaign declares a benchmark study — workloads x methods x parameter
sets (x seeds) — as frozen, JSON-round-tripping data
(:class:`~repro.campaign.spec.CampaignSpec`), expands it deterministically
into ordinary :mod:`repro.jobs` specs, executes the cells resumably
through the existing runner/cache/engine-state machinery
(:class:`~repro.campaign.runner.CampaignRunner`), and reduces the settled
cells into a ranked, byte-deterministic ``report.json`` plus a markdown
digest and an append-only ``trajectory.jsonl``
(:mod:`~repro.campaign.report`).

The CLI front door is ``python -m repro campaign run|report|status``.
"""

from repro.campaign.report import (
    append_trajectory,
    build_report,
    cell_outcome,
    dump_report,
    mapping_cost,
    render_digest,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import (
    METHOD_KINDS,
    CampaignCell,
    CampaignMethod,
    CampaignSpec,
    CampaignWorkload,
    ParameterSet,
    campaign_hash,
    load_campaign,
    save_campaign,
)

__all__ = [
    "CampaignSpec",
    "CampaignWorkload",
    "CampaignMethod",
    "ParameterSet",
    "CampaignCell",
    "CampaignRunner",
    "METHOD_KINDS",
    "campaign_hash",
    "save_campaign",
    "load_campaign",
    "build_report",
    "dump_report",
    "render_digest",
    "append_trajectory",
    "cell_outcome",
    "mapping_cost",
]
