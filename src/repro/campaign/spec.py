"""Declarative study matrices: the :class:`CampaignSpec` and its expansion.

A *campaign* declares a benchmark study as the cross product of three axes —

* **workloads** — what gets mapped: a named recipe from
  :mod:`repro.gen.recipes` or an explicit generator document, optionally
  forced onto a ``(rows, cols)`` mesh, optionally replicated over a list of
  generator ``seeds``;
* **methods** — how it gets mapped: the default design flow, the
  worst-case baseline, annealing/tabu refinement, a portfolio of
  diversified chains, or repair-under-failures;
* **parameter sets** — the operating point and mapper configuration
  overrides each cell runs under.

A campaign is *frozen data*: it round-trips losslessly through JSON
(:meth:`CampaignSpec.to_dict` / :meth:`CampaignSpec.from_dict` /
:func:`load_campaign`), hashes stably over its content
(:func:`campaign_hash` — the key the trajectory history is tracked under),
and :meth:`CampaignSpec.expand` turns it deterministically into concrete
:class:`CampaignCell`\\ s, each wrapping one ordinary :mod:`repro.jobs`
spec.  Because cells are plain jobs, everything the jobs layer already
guarantees — content-hashed caching, bit-identical parallel execution,
engine-state warm starts, ``repro serve`` inbox submission — applies to
campaign cells with no new machinery: the campaign's resumability *is* the
per-cell :func:`repro.jobs.spec.job_hash`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import (
    ConfigurationError,
    SerializationError,
    SpecificationError,
)
from repro.io.serialization import document_fingerprint
from repro.jobs.spec import (
    DesignFlowJob,
    JobSpec,
    PortfolioRefineJob,
    RefineJob,
    GapJob,
    RepairJob,
    UseCaseSource,
    WorstCaseJob,
)
from repro.params import MapperConfig, NoCParameters

__all__ = [
    "CampaignWorkload",
    "CampaignMethod",
    "ParameterSet",
    "CampaignSpec",
    "CampaignCell",
    "METHOD_KINDS",
    "campaign_hash",
    "save_campaign",
    "load_campaign",
]


#: method kinds a campaign cell may use (the mapping-producing job kinds;
#: analysis sweeps have their own front door and no per-cell cost to rank)
METHOD_KINDS = (
    "design_flow", "worst_case", "refine", "portfolio_refine", "repair", "ilp",
)

#: method knobs forwarded verbatim to the underlying job constructors
_METHOD_KNOBS = {
    "design_flow": ("verify",),
    "worst_case": (),
    "refine": ("method", "iterations", "seed", "initial_temperature"),
    "portfolio_refine": (
        "method", "iterations", "seed", "chains", "temperature_factor", "workers",
    ),
    "repair": ("failures", "compare_full_remap"),
    "ilp": ("solver", "refine_iterations", "seed", "node_limit"),
}


def _require(document: Dict, key: str, context: str):
    try:
        return document[key]
    except (KeyError, TypeError):
        raise SerializationError(
            f"{context} document is missing its {key!r} field"
        ) from None


def _label_of(document: Dict, context: str) -> str:
    label = _require(document, "label", context)
    if not isinstance(label, str) or not label or any(c in label for c in "|/\n"):
        raise SerializationError(
            f"{context} label must be a non-empty string without '|', '/' or "
            f"newlines, got {label!r}"
        )
    return label


# --------------------------------------------------------------------------- #
# the three axes
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignWorkload:
    """One workload axis entry: a generator recipe plus its target mesh.

    Built either from an explicit ``generator`` document (the
    :func:`repro.gen.synthetic.generate_benchmark` recipe shape) or from a
    named recipe (``{"recipe": "mesh8x8_spread120"}``), which is resolved
    at construction so the spec — and its content hash — never depends on
    registry drift.
    """

    label: str
    generator: Dict
    mesh: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.generator, dict) or "kind" not in self.generator:
            raise SpecificationError(
                f"workload {self.label!r} needs a generator document with a "
                f"'kind' (e.g. 'spread'), got {self.generator!r}"
            )
        if self.mesh is not None:
            rows, cols = self.mesh
            if rows < 1 or cols < 1:
                raise SpecificationError(
                    f"workload {self.label!r} mesh sides must be positive, "
                    f"got {self.mesh}"
                )

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "generator": self.generator,
            "mesh": None if self.mesh is None else list(self.mesh),
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "CampaignWorkload":
        if not isinstance(document, dict):
            raise SerializationError(
                f"workload entry must be a mapping, got {type(document).__name__}"
            )
        recipe_name = document.get("recipe")
        if recipe_name is not None:
            from repro.gen.recipes import workload_recipe

            generator, mesh = workload_recipe(recipe_name)
            generator.update(document.get("generator", {}))
            if document.get("mesh") is not None:
                mesh = tuple(int(side) for side in document["mesh"])
            return cls(
                label=document.get("label", recipe_name),
                generator=generator,
                mesh=mesh,
            )
        mesh = document.get("mesh")
        return cls(
            label=_label_of(document, "workload"),
            generator=_require(document, "generator", "workload"),
            mesh=None if mesh is None else tuple(int(side) for side in mesh),
        )


@dataclass(frozen=True)
class CampaignMethod:
    """One method axis entry: a job kind plus its kind-specific knobs."""

    label: str
    kind: str = "refine"
    knobs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in METHOD_KINDS:
            raise SpecificationError(
                f"method {self.label!r}: unknown kind {self.kind!r}; expected "
                f"one of {list(METHOD_KINDS)}"
            )
        allowed = set(_METHOD_KNOBS[self.kind])
        unknown = set(self.knobs) - allowed
        if unknown:
            raise SpecificationError(
                f"method {self.label!r}: unknown knob(s) {sorted(unknown)} for "
                f"kind {self.kind!r}; allowed: {sorted(allowed)}"
            )
        if self.kind == "repair" and "failures" not in self.knobs:
            raise SpecificationError(
                f"method {self.label!r}: repair methods need a 'failures' knob "
                "(the FailureSet document shape)"
            )

    def to_dict(self) -> Dict:
        return {"label": self.label, "kind": self.kind, "knobs": self.knobs}

    @classmethod
    def from_dict(cls, document: Dict) -> "CampaignMethod":
        if not isinstance(document, dict):
            raise SerializationError(
                f"method entry must be a mapping, got {type(document).__name__}"
            )
        knobs = document.get("knobs", {})
        if not isinstance(knobs, dict):
            raise SerializationError(
                f"method knobs must be a mapping, got {type(knobs).__name__}"
            )
        return cls(
            label=_label_of(document, "method"),
            kind=document.get("kind", "refine"),
            knobs=knobs,
        )


@dataclass(frozen=True)
class ParameterSet:
    """One parameter axis entry: operating-point and config overrides.

    ``params``/``config`` are override documents in the
    :meth:`NoCParameters.to_dict` / :meth:`MapperConfig.to_dict` shapes;
    they are validated eagerly (a typo should fail at load time, not after
    an hour of mapping).
    """

    label: str = "base"
    params: Dict = field(default_factory=dict)
    config: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.build_params()
        self.build_config()

    def build_params(self) -> NoCParameters:
        try:
            return NoCParameters.from_dict(self.params)
        except (TypeError, ValueError, KeyError, ConfigurationError) as exc:
            raise SpecificationError(
                f"parameter set {self.label!r}: invalid params: {exc}"
            ) from exc

    def build_config(self) -> MapperConfig:
        try:
            return MapperConfig.from_dict(self.config)
        except (TypeError, ValueError, KeyError, ConfigurationError) as exc:
            raise SpecificationError(
                f"parameter set {self.label!r}: invalid config: {exc}"
            ) from exc

    def to_dict(self) -> Dict:
        return {"label": self.label, "params": self.params, "config": self.config}

    @classmethod
    def from_dict(cls, document: Dict) -> "ParameterSet":
        if not isinstance(document, dict):
            raise SerializationError(
                f"parameter-set entry must be a mapping, got {type(document).__name__}"
            )
        return cls(
            label=_label_of(document, "parameter set"),
            params=document.get("params", {}),
            config=document.get("config", {}),
        )


# --------------------------------------------------------------------------- #
# cells
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignCell:
    """One expanded cell: axis coordinates plus the concrete job to run."""

    workload: str
    method: str
    parameter_set: str
    job: JobSpec
    #: generator seed override from the campaign's ``seeds`` axis (``None``
    #: when the campaign runs each workload at its recipe's own seed)
    seed: Optional[int] = None

    @property
    def cell_id(self) -> str:
        """Stable human-readable coordinate: ``workload[@sN]|method|pset``."""
        workload = self.workload
        if self.seed is not None:
            workload = f"{workload}@s{self.seed}"
        return f"{workload}|{self.method}|{self.parameter_set}"


# --------------------------------------------------------------------------- #
# the campaign
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative study matrix: workloads × methods × parameter sets.

    ``seeds`` optionally replicates every workload once per listed seed
    (overriding the generator's own): a 2-workload, 3-method, 2-seed
    campaign expands into 12 cells.  Expansion order is the document order
    of the axes (workloads outermost, parameter sets innermost), so cell
    lists — and everything derived from them — are deterministic.
    """

    name: str
    workloads: Tuple[CampaignWorkload, ...]
    methods: Tuple[CampaignMethod, ...]
    parameter_sets: Tuple[ParameterSet, ...] = (ParameterSet(),)
    seeds: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError("a campaign needs a non-empty name")
        for axis, entries in (
            ("workloads", self.workloads),
            ("methods", self.methods),
            ("parameter_sets", self.parameter_sets),
        ):
            if not entries:
                raise SpecificationError(f"campaign {self.name!r}: empty {axis} axis")
            labels = [entry.label for entry in entries]
            if len(set(labels)) != len(labels):
                raise SpecificationError(
                    f"campaign {self.name!r}: duplicate labels on the {axis} "
                    f"axis: {labels}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise SpecificationError(
                f"campaign {self.name!r}: duplicate seeds {list(self.seeds)}"
            )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "workloads": [workload.to_dict() for workload in self.workloads],
            "methods": [method.to_dict() for method in self.methods],
            "parameter_sets": [pset.to_dict() for pset in self.parameter_sets],
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "CampaignSpec":
        if not isinstance(document, dict):
            raise SerializationError(
                f"campaign document must be a mapping, got {type(document).__name__}"
            )
        try:
            psets = document.get("parameter_sets")
            return cls(
                name=_require(document, "name", "campaign"),
                workloads=tuple(
                    CampaignWorkload.from_dict(entry)
                    for entry in _require(document, "workloads", "campaign")
                ),
                methods=tuple(
                    CampaignMethod.from_dict(entry)
                    for entry in _require(document, "methods", "campaign")
                ),
                parameter_sets=(ParameterSet(),) if not psets else tuple(
                    ParameterSet.from_dict(entry) for entry in psets
                ),
                seeds=tuple(int(seed) for seed in document.get("seeds", ())),
            )
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"malformed campaign document: {exc!r}") from exc

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def cell_count(self) -> int:
        seeds = max(1, len(self.seeds))
        return len(self.workloads) * seeds * len(self.methods) * len(self.parameter_sets)

    def expand(self) -> List[CampaignCell]:
        """The campaign's concrete cells, in deterministic axis order."""
        cells: List[CampaignCell] = []
        seeds: Tuple[Optional[int], ...] = self.seeds or (None,)
        for workload in self.workloads:
            for seed in seeds:
                for method in self.methods:
                    for pset in self.parameter_sets:
                        cells.append(CampaignCell(
                            workload=workload.label,
                            method=method.label,
                            parameter_set=pset.label,
                            seed=seed,
                            job=_build_job(workload, method, pset, seed),
                        ))
        return cells


def _build_job(
    workload: CampaignWorkload,
    method: CampaignMethod,
    pset: ParameterSet,
    seed: Optional[int],
) -> JobSpec:
    """The concrete :mod:`repro.jobs` spec of one cell."""
    recipe = dict(workload.generator)
    if seed is not None:
        recipe["seed"] = seed
    source = UseCaseSource(generator=recipe)
    params = pset.build_params()
    config = pset.build_config()
    knobs = method.knobs
    if method.kind == "design_flow":
        return DesignFlowJob(
            use_cases=source, params=params, config=config,
            verify=bool(knobs.get("verify", True)),
        )
    if method.kind == "worst_case":
        return WorstCaseJob(use_cases=source, params=params, config=config)
    if method.kind == "refine":
        temperature = knobs.get("initial_temperature")
        return RefineJob(
            use_cases=source, params=params, config=config,
            method=knobs.get("method", "annealing"),
            iterations=int(knobs.get("iterations", 200)),
            seed=int(knobs.get("seed", 0)),
            initial_temperature=None if temperature is None else float(temperature),
            mesh=workload.mesh,
        )
    if method.kind == "portfolio_refine":
        return PortfolioRefineJob(
            use_cases=source, params=params, config=config,
            method=knobs.get("method", "annealing"),
            iterations=int(knobs.get("iterations", 200)),
            seed=int(knobs.get("seed", 0)),
            chains=int(knobs.get("chains", 4)),
            temperature_factor=float(knobs.get("temperature_factor", 1.6)),
            workers=int(knobs.get("workers", 0)),
            mesh=workload.mesh,
        )
    if method.kind == "ilp":
        limit = knobs.get("node_limit")
        return GapJob(
            use_cases=source, params=params, config=config,
            solver=knobs.get("solver", "auto"),
            refine_iterations=int(knobs.get("refine_iterations", 0)),
            seed=int(knobs.get("seed", 0)),
            node_limit=None if limit is None else int(limit),
        )
    # repair — CampaignMethod validated the kind, so this is the last one
    return RepairJob(
        use_cases=source, params=params, config=config,
        failures=knobs["failures"],
        provision=workload.mesh,
        compare_full_remap=bool(knobs.get("compare_full_remap", False)),
    )


# --------------------------------------------------------------------------- #
# registry-level helpers
# --------------------------------------------------------------------------- #
def campaign_hash(spec: CampaignSpec) -> str:
    """Content hash of a campaign: the key its trajectory is tracked under."""
    return document_fingerprint(spec.to_dict())


def save_campaign(spec: CampaignSpec, path: Union[str, Path]) -> Path:
    """Write one campaign spec to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(spec.to_dict(), indent=2) + "\n")
    return target


def load_campaign(path: Union[str, Path]) -> CampaignSpec:
    """Load a campaign spec from a JSON file (one-line diagnostics on junk)."""
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read campaign from {source}: {exc}") from exc
    return CampaignSpec.from_dict(document)
