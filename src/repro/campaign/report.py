"""Campaign reduction: ranked ``report.json``, markdown digest, trajectory.

The reduction consumes the per-cell records the
:class:`~repro.campaign.runner.CampaignRunner` settled on disk and produces
three artifacts with deliberately different determinism contracts:

* ``report.json`` (:func:`build_report`) — **byte-deterministic**: every
  field is a pure function of the campaign spec and the cell *payloads*
  (which are themselves pure functions of the cell jobs), serialised with
  sorted keys.  Two runs of the same campaign — on different machines, in
  different directories, with or without a warm cache — produce identical
  bytes.  Wall-clock therefore lives elsewhere.
* the markdown digest (:func:`render_digest`) — the human front door:
  ranked tables plus the volatile wall-clock/cache columns the JSON
  deliberately excludes.
* ``trajectory.jsonl`` (:func:`append_trajectory`) — the tracked history:
  one appended line per campaign run, carrying the campaign hash, a
  timestamp, executed/resumed counts, total wall-clock and the best-known
  costs, so successive runs of a campaign become a perf trajectory
  alongside ``BENCH_mapper.json``.

The comparison metric is ``cost``: the bandwidth-weighted hop count of the
final mapping (sum over every flow of ``bandwidth_mbps * (path_length - 1)``,
use cases in sorted order), recomputed here from the serialized mapping so
*every* mapped cell — design flow, worst case, refinement, repair — is
ranked on the same scale.  Refinement cells additionally carry their
refiner-internal ``refined_cost`` for reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "cell_outcome",
    "mapping_cost",
    "build_report",
    "render_digest",
    "append_trajectory",
    "dump_report",
]

#: per-cell record fields that vary run to run and are excluded from
#: ``report.json`` (they appear in the digest and the trajectory instead)
VOLATILE_FIELDS = ("elapsed_s", "cached")


def mapping_cost(mapping: Dict) -> float:
    """Bandwidth-weighted hop count of a serialized mapping result.

    Deterministic for a fixed mapping document: use cases are visited in
    sorted-name order and flows in their stored order, so float summation
    order never varies.
    """
    total = 0.0
    for name in sorted(mapping.get("use_cases", {})):
        for flow in mapping["use_cases"][name]:
            hops = max(0, len(flow.get("path", ())) - 1)
            total += flow.get("bandwidth_mbps", 0.0) * hops
    return round(total, 6)


def cell_outcome(kind: str, payload: Dict) -> Dict:
    """The deterministic, rankable extract of one cell's job payload."""
    outcome: Dict = {"mapped": bool(payload.get("mapped"))}
    if not outcome["mapped"]:
        outcome["error"] = payload.get("error")
        if "unrepairable" in payload:
            outcome["unrepairable"] = payload["unrepairable"]
        return outcome
    summary = payload.get("summary", {})
    outcome.update({
        "topology": summary.get("topology"),
        "switch_count": summary.get("switch_count"),
        "groups": summary.get("groups"),
        "max_utilization": summary.get("max_utilization"),
        "fingerprint": payload.get("fingerprint"),
        "cost": mapping_cost(payload.get("mapping", {})),
    })
    if "refined_cost" in payload:
        outcome["refined_cost"] = payload["refined_cost"]
        outcome["improvement"] = payload.get("improvement")
    if "portfolio" in payload:
        outcome["best_chain"] = payload["portfolio"].get("best_chain")
    if "repair" in payload:
        repair = payload["repair"]
        outcome["groups_remapped"] = repair.get("groups_remapped")
        outcome["repaired"] = repair.get("repaired")
    if "gap" in payload:
        # ilp cells: the ranked mapping/cost above are the exact optimum;
        # surface how far the heuristic (and optional refinement) fell short.
        gap = payload["gap"]
        outcome["solver"] = gap.get("solver")
        for label in ("heuristic", "refined"):
            entry = gap.get(label) or {}
            if "gap_relative" in entry:
                outcome[f"{label}_gap"] = entry["gap_relative"]
    return outcome


def _rank_key(record: Dict):
    """Sort key of one cell inside a ranking: schedulable first, then cost."""
    outcome = record["outcome"]
    if not outcome.get("mapped"):
        return (1, 0.0, record["method"])
    return (0, outcome.get("cost", 0.0), record["method"])


def build_report(
    campaign: Dict,
    records: Sequence[Dict],
    missing: Sequence[str] = (),
) -> Dict:
    """The deterministic ranked report of a campaign's cell records.

    ``campaign`` is the ``{"name": ..., "hash": ..., "spec": ...}`` header
    the runner assembles; ``records`` are completed cell records (any
    order — they are re-sorted by ``cell_id`` here); ``missing`` names
    cells that have no record yet (a partial ``campaign report`` while the
    farm is still chewing).  Volatile fields are stripped from every
    record, so the result is byte-stable across reruns.
    """
    cells = []
    for record in sorted(records, key=lambda entry: entry["cell_id"]):
        cells.append({
            key: value for key, value in record.items()
            if key not in VOLATILE_FIELDS
        })

    # Rankings: within each (workload, parameter_set) coordinate, methods
    # ordered best-first on the shared cost scale.
    rankings: Dict[str, List[Dict]] = {}
    groups: Dict[str, List[Dict]] = {}
    for record in cells:
        coordinate = f"{record['workload']}|{record['parameter_set']}"
        if record.get("seed") is not None:
            coordinate = f"{record['workload']}@s{record['seed']}|{record['parameter_set']}"
        groups.setdefault(coordinate, []).append(record)
    for coordinate in sorted(groups):
        ranked = sorted(groups[coordinate], key=_rank_key)
        rankings[coordinate] = [
            {
                "rank": position + 1,
                "method": record["method"],
                "mapped": record["outcome"].get("mapped", False),
                "cost": record["outcome"].get("cost"),
            }
            for position, record in enumerate(ranked)
        ]

    # Method-vs-method win matrix: a strict cost win per shared coordinate.
    methods = sorted({record["method"] for record in cells})
    win_matrix: Dict[str, Dict[str, int]] = {
        method: {other: 0 for other in methods if other != method}
        for method in methods
    }
    for ranked in groups.values():
        for record in ranked:
            for other in ranked:
                if record["method"] == other["method"]:
                    continue
                mine = record["outcome"]
                theirs = other["outcome"]
                if not mine.get("mapped"):
                    continue
                if not theirs.get("mapped") or mine["cost"] < theirs["cost"]:
                    win_matrix[record["method"]][other["method"]] += 1

    # Best-known cost per workload coordinate (across methods and psets).
    best_known: Dict[str, Dict] = {}
    for record in cells:
        outcome = record["outcome"]
        if not outcome.get("mapped"):
            continue
        workload = record["workload"]
        if record.get("seed") is not None:
            workload = f"{workload}@s{record['seed']}"
        best = best_known.get(workload)
        if best is None or outcome["cost"] < best["cost"]:
            best_known[workload] = {
                "cost": outcome["cost"],
                "method": record["method"],
                "parameter_set": record["parameter_set"],
                "topology": outcome.get("topology"),
                "fingerprint": outcome.get("fingerprint"),
            }

    schedulable = sum(1 for r in cells if r["outcome"].get("mapped"))
    return {
        "campaign": campaign,
        "cells": cells,
        "totals": {
            "cells": len(cells) + len(missing),
            "completed": len(cells),
            "missing": len(missing),
            "schedulable": schedulable,
            "unschedulable": len(cells) - schedulable,
        },
        "missing_cells": sorted(missing),
        "rankings": rankings,
        "win_matrix": win_matrix,
        "best_known": dict(sorted(best_known.items())),
    }


def dump_report(report: Dict) -> str:
    """The canonical byte form of a report (what ``report.json`` holds)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


# --------------------------------------------------------------------------- #
# the markdown digest
# --------------------------------------------------------------------------- #
def _format_cost(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:,.0f}"


def render_digest(report: Dict, records: Sequence[Dict]) -> str:
    """Human-readable markdown digest, wall-clock columns included."""
    campaign = report["campaign"]
    totals = report["totals"]
    elapsed = {record["cell_id"]: record.get("elapsed_s") for record in records}
    cached = {record["cell_id"]: record.get("cached") for record in records}
    lines = [
        f"# Campaign digest: {campaign['name']}",
        "",
        f"- campaign hash: `{campaign['hash'][:16]}`",
        f"- cells: {totals['completed']}/{totals['cells']} completed, "
        f"{totals['schedulable']} schedulable, "
        f"{totals['unschedulable']} unschedulable"
        + (f", {totals['missing']} missing" if totals["missing"] else ""),
        "",
        "## Rankings (cost = bandwidth-weighted hops; lower is better)",
        "",
        "| workload | parameter set | rank | method | cost | wallclock | cached |",
        "|---|---|---|---|---|---|---|",
    ]
    for coordinate, ranked in report["rankings"].items():
        workload, _, pset = coordinate.rpartition("|")
        for entry in ranked:
            cell_id = f"{workload}|{entry['method']}|{pset}"
            seconds = elapsed.get(cell_id)
            lines.append(
                f"| {workload} | {pset} | {entry['rank']} | {entry['method']} | "
                f"{_format_cost(entry['cost']) if entry['mapped'] else 'UNSCHEDULABLE'} | "
                f"{'-' if seconds is None else f'{seconds:.2f}s'} | "
                f"{'yes' if cached.get(cell_id) else 'no'} |"
            )
    lines += ["", "## Method-vs-method wins (row beats column)", ""]
    methods = sorted(report["win_matrix"])
    lines.append("| | " + " | ".join(methods) + " |")
    lines.append("|---|" + "---|" * len(methods))
    for method in methods:
        row = [
            "-" if other == method else str(report["win_matrix"][method][other])
            for other in methods
        ]
        lines.append(f"| **{method}** | " + " | ".join(row) + " |")
    lines += ["", "## Best known cost per workload", ""]
    lines.append("| workload | cost | method | parameter set | topology |")
    lines.append("|---|---|---|---|---|")
    for workload, best in report["best_known"].items():
        lines.append(
            f"| {workload} | {_format_cost(best['cost'])} | {best['method']} | "
            f"{best['parameter_set']} | {best['topology']} |"
        )
    if report["missing_cells"]:
        lines += ["", "## Missing cells", ""]
        lines += [f"- `{cell}`" for cell in report["missing_cells"]]
    lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# the trajectory
# --------------------------------------------------------------------------- #
def append_trajectory(
    path: Union[str, Path],
    report: Dict,
    records: Sequence[Dict],
    executed: int,
    resumed: int,
) -> Dict:
    """Append one campaign-run entry to the append-only trajectory log.

    Returns the entry written.  The trajectory is *history*, not a report:
    entries carry timestamps and wall-clock and are never rewritten, so
    diffing successive lines shows how the tracked workloads' best-known
    costs and campaign wall-times move over time.
    """
    entry = {
        "unix_time": round(time.time(), 3),
        "campaign": report["campaign"]["name"],
        "campaign_hash": report["campaign"]["hash"],
        "cells": report["totals"]["cells"],
        "executed": executed,
        "resumed": resumed,
        "schedulable": report["totals"]["schedulable"],
        "wallclock_s": round(
            sum(record.get("elapsed_s") or 0.0 for record in records), 6
        ),
        "best_known": {
            workload: {"cost": best["cost"], "method": best["method"]}
            for workload, best in report["best_known"].items()
        },
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as trajectory:
        trajectory.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry
