"""Per-use-case NoC resource state: residual bandwidth and TDMA slots.

The heart of the paper's improvement over the worst-case baseline is that
*each use-case maintains separate data structures that represent the
available bandwidth and TDMA slots in the NoC for that use-case*.  This
module provides exactly that data structure.

A :class:`ResourceState` tracks, for one use-case (or one smooth-switching
group, which shares a single configuration):

* the residual bandwidth and the TDMA slot table of every directed
  inter-switch link, and
* the residual bandwidth of every core's NI access links (core → switch and
  switch → core), which bound how much traffic a single core can source or
  sink regardless of how large the mesh grows.

Reservations are returned as :class:`PathReservation` records so they can be
released again (needed by the refinement passes that rip up and re-route
flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ResourceError, TopologyError
from repro.noc.slot_table import (
    SlotTable,
    lowest_set_bits,
    pipelined_free_mask,
    rotated_start_slots,
    slots_needed_cached,
)
from repro.noc.topology import Link, Topology
from repro.params import MapperConfig, NoCParameters

__all__ = ["PathReservation", "ResourceState"]

#: Cost value returned for paths that cannot possibly carry a flow.
INFEASIBLE_COST = float("inf")


@dataclass(frozen=True)
class PathReservation:
    """Record of the resources one flow holds in one resource state.

    Attributes
    ----------
    flow_id:
        Globally unique identifier of the (use-case, flow) pair.
    source_core, destination_core:
        Names of the communicating cores.
    switch_path:
        Sequence of switch indices from the source core's switch to the
        destination core's switch (a single element when both cores attach
        to the same switch).
    bandwidth:
        Reserved bandwidth in bytes/s (charged on every link of the path and
        on both access links).
    link_slots:
        Mapping from directed inter-switch link to the slot indices reserved
        on it (empty for best-effort flows and same-switch paths).
    guaranteed:
        True for GT flows (slot-table reservations were made).
    """

    flow_id: str
    source_core: str
    destination_core: str
    switch_path: Tuple[int, ...]
    bandwidth: float
    link_slots: Dict[Link, Tuple[int, ...]] = field(default_factory=dict)
    guaranteed: bool = True

    @property
    def hop_count(self) -> int:
        """Number of inter-switch links traversed."""
        return max(0, len(self.switch_path) - 1)

    @property
    def slots_per_link(self) -> int:
        """Number of slots reserved on each link (0 when none were needed)."""
        if not self.link_slots:
            return 0
        return len(next(iter(self.link_slots.values())))


class ResourceState:
    """Residual bandwidth and slot-table state of the NoC for one use-case."""

    def __init__(
        self,
        topology: Topology,
        params: NoCParameters,
        name: str = "state",
    ) -> None:
        self.topology = topology
        self.params = params
        self.name = name
        capacity = params.link_capacity
        #: link capacity, cached because the params property recomputes it
        self._capacity = capacity
        links = topology.links
        self._link_residual: Dict[Link, float] = {link: capacity for link in links}
        self._slot_tables: Dict[Link, SlotTable] = {
            link: SlotTable(params.slot_table_size) for link in links
        }
        #: core name -> switch index (shared mapping, mirrored in every state)
        self._core_switch: Dict[str, int] = {}
        #: switch index -> number of attached cores (incremental counter, so
        #: attach_core never rescans the whole core mapping)
        self._switch_core_count: Dict[int, int] = {}
        #: residual bandwidth of the core -> switch access link
        self._ingress_residual: Dict[str, float] = {}
        #: residual bandwidth of the switch -> core access link
        self._egress_residual: Dict[str, float] = {}
        #: reservations keyed by object identity (insertion-ordered), so
        #: release is O(1) instead of a linear list scan + remove — rip-up /
        #: re-route workloads release constantly
        self._reservations: Dict[int, PathReservation] = {}
        #: switch path -> link tuple memo (pure function of the topology, so
        #: copies share the same dict object)
        self._links_memo: Dict[Tuple[int, ...], Tuple[Link, ...]] = {}
        #: monotonically bumped on every mutation; stamps the one-entry plan
        #: cache below so ``reserve`` can reuse the (links, assignment) plan
        #: computed by an immediately preceding ``can_reserve`` on an
        #: unchanged state
        self._version = 0
        self._last_plan: Optional[
            Tuple[int, Tuple, Tuple[Tuple[Link, ...], Dict[Link, Tuple[int, ...]]]]
        ] = None

    # ------------------------------------------------------------------ #
    # core attachment
    # ------------------------------------------------------------------ #
    def attach_core(self, core_name: str, switch_index: int) -> None:
        """Attach a core (its NI) to a switch.

        Every use-case state of a design shares the same core-to-switch
        mapping, so the mapper calls this on each state when it places a
        core.  Attaching the same core to the same switch twice is a no-op;
        attaching it elsewhere is an error (the paper requires one mapping).
        """
        self.topology.switch(switch_index)
        if self.topology.is_switch_down(switch_index):
            raise ResourceError(
                f"switch {switch_index} is failed on {self.topology.name!r}; "
                f"cannot attach core {core_name!r}"
            )
        existing = self._core_switch.get(core_name)
        if existing is not None:
            if existing != switch_index:
                raise ResourceError(
                    f"core {core_name!r} is already attached to switch {existing}; "
                    f"cannot re-attach it to switch {switch_index}"
                )
            return
        limit = self.params.max_cores_per_switch
        occupied = self._switch_core_count.get(switch_index, 0)
        if limit is not None and occupied >= limit:
            raise ResourceError(
                f"switch {switch_index} already hosts {limit} cores "
                f"(max_cores_per_switch={limit})"
            )
        self._core_switch[core_name] = switch_index
        self._switch_core_count[switch_index] = occupied + 1
        self._version += 1
        capacity = self._capacity
        self._ingress_residual[core_name] = capacity
        self._egress_residual[core_name] = capacity

    def seed_cores(self, items: Sequence[Tuple[str, int]]) -> None:
        """Bulk-attach pre-validated cores to a fresh state.

        Fast path for the engine's fixed-placement evaluator, which
        validates switch indices and the per-switch core limit globally
        before seeding each group's throwaway state; equivalent to calling
        :meth:`attach_core` per item on a state with no prior attachments.
        """
        capacity = self._capacity
        core_switch = self._core_switch
        counts = self._switch_core_count
        ingress = self._ingress_residual
        egress = self._egress_residual
        for core_name, switch_index in items:
            core_switch[core_name] = switch_index
            counts[switch_index] = counts.get(switch_index, 0) + 1
            ingress[core_name] = capacity
            egress[core_name] = capacity
        self._version += 1
        self._last_plan = None

    def switch_of(self, core_name: str) -> Optional[int]:
        """The switch a core is attached to, or ``None`` if unmapped."""
        return self._core_switch.get(core_name)

    def cores_on_switch(self, switch_index: int) -> int:
        """Number of cores currently attached to a switch."""
        return self._switch_core_count.get(switch_index, 0)

    @property
    def core_mapping(self) -> Dict[str, int]:
        """A copy of the current core-to-switch mapping."""
        return dict(self._core_switch)

    # ------------------------------------------------------------------ #
    # residual queries
    # ------------------------------------------------------------------ #
    def link_residual(self, link: Link) -> float:
        """Residual bandwidth (bytes/s) of a directed inter-switch link."""
        try:
            return self._link_residual[link]
        except KeyError:
            raise TopologyError(f"no link {link} in topology {self.topology.name!r}") from None

    def slot_table(self, link: Link) -> SlotTable:
        """The TDMA slot table of a directed inter-switch link."""
        try:
            return self._slot_tables[link]
        except KeyError:
            raise TopologyError(f"no link {link} in topology {self.topology.name!r}") from None

    def ingress_residual(self, core_name: str) -> float:
        """Residual bandwidth of the core's NI injection (core → switch) link."""
        try:
            return self._ingress_residual[core_name]
        except KeyError:
            raise ResourceError(f"core {core_name!r} is not attached to any switch") from None

    def egress_residual(self, core_name: str) -> float:
        """Residual bandwidth of the core's NI ejection (switch → core) link."""
        try:
            return self._egress_residual[core_name]
        except KeyError:
            raise ResourceError(f"core {core_name!r} is not attached to any switch") from None

    @property
    def reservations(self) -> Tuple[PathReservation, ...]:
        """All currently held path reservations (in reservation order)."""
        return tuple(self._reservations.values())

    def max_link_utilization(self) -> float:
        """Highest bandwidth utilisation over all inter-switch links (0–1)."""
        capacity = self._capacity
        if not self._link_residual:
            return 0.0
        return max(
            (capacity - residual) / capacity for residual in self._link_residual.values()
        )

    def total_reserved_bandwidth(self) -> float:
        """Total bandwidth-hops reserved on inter-switch links (bytes/s)."""
        capacity = self._capacity
        return sum(capacity - residual for residual in self._link_residual.values())

    def link_loads(self) -> Dict[Link, float]:
        """Reserved bandwidth (bytes/s) per directed inter-switch link."""
        capacity = self._capacity
        return {
            link: capacity - residual for link, residual in self._link_residual.items()
        }

    # ------------------------------------------------------------------ #
    # feasibility, cost, reservation
    # ------------------------------------------------------------------ #
    def _path_links(self, switch_path: Sequence[int]) -> Tuple[Link, ...]:
        key = tuple(switch_path)
        cached = self._links_memo.get(key)
        if cached is not None:
            return cached
        links: List[Link] = []
        for source, destination in zip(key, key[1:]):
            link = (source, destination)
            if link not in self._link_residual:
                raise TopologyError(
                    f"path {tuple(switch_path)} uses non-existent link {link}"
                )
            links.append(link)
        result = tuple(links)
        self._links_memo[key] = result
        return result

    def slots_for_bandwidth(self, bandwidth: float) -> int:
        """Slots a flow of the given bandwidth needs on each link of its path."""
        return slots_needed_cached(bandwidth, self._capacity, self.params.slot_table_size)

    def can_reserve(
        self,
        source_core: str,
        destination_core: str,
        switch_path: Sequence[int],
        bandwidth: float,
        guaranteed: bool = True,
        required_slots: Optional[Tuple[int, ...]] = None,
    ) -> bool:
        """Whether a reservation along the path would succeed right now."""
        plan = self._plan(
            source_core,
            destination_core,
            switch_path,
            bandwidth,
            guaranteed,
            required_slots,
        )
        if plan is not None:
            key = (
                source_core, destination_core, tuple(switch_path),
                bandwidth, guaranteed, required_slots,
            )
            self._last_plan = (self._version, key, plan)
        return plan is not None

    def _plan(
        self,
        source_core: str,
        destination_core: str,
        switch_path: Sequence[int],
        bandwidth: float,
        guaranteed: bool,
        required_slots: Optional[Tuple[int, ...]],
    ) -> Optional[Tuple[Tuple[Link, ...], Dict[Link, Tuple[int, ...]]]]:
        """Compute a reservation's (path links, slot assignment), or ``None``.

        Returns the path's link tuple and a (possibly empty) slot mapping
        when the reservation is feasible — bandwidth fits on the access
        links and every path link, and (for GT flows) a pipelined slot
        assignment exists.  ``required_slots`` forces a specific set of
        *starting* slots (used to replicate a group-shared configuration
        into each member use-case's state).
        """
        if bandwidth <= 0:
            raise ResourceError(f"bandwidth must be positive, got {bandwidth}")
        if not switch_path:
            raise ResourceError("switch path must contain at least one switch")
        core_switch = self._core_switch
        if core_switch.get(source_core) != switch_path[0]:
            return None
        if core_switch.get(destination_core) != switch_path[-1]:
            return None
        threshold = bandwidth - 1e-9
        if self._ingress_residual.get(source_core, 0.0) < threshold:
            return None
        if self._egress_residual.get(destination_core, 0.0) < threshold:
            return None
        links = self._path_links(switch_path)
        link_residual = self._link_residual
        for link in links:
            if link_residual[link] < threshold:
                return None
        if not guaranteed or not links:
            return links, {}
        needed = self.slots_for_bandwidth(bandwidth)
        size = self.params.slot_table_size
        if needed > size:
            return None
        # Rotate each hop's free mask into the start-slot frame and AND them:
        # the admissible-start set of the whole path in a few int ops.
        slot_tables = self._slot_tables
        admissible = pipelined_free_mask(
            [slot_tables[link]._free_mask for link in links], size
        )
        if required_slots is not None:
            if len(required_slots) < needed:
                return None
            for start in required_slots:
                if not admissible >> (start % size) & 1:
                    return None
            assignment: Dict[Link, Tuple[int, ...]] = {}
            for hop, link in enumerate(links):
                assignment[link] = tuple(
                    sorted((start + hop) % size for start in required_slots)
                )
            return links, assignment
        starts = lowest_set_bits(admissible, needed)
        if starts is None:
            return None
        # ``starts`` is ascending, so each hop's rotated slot set is the
        # shared sort-free rotation (see rotated_start_slots) — the same
        # tuples the historical per-hop sort produced.
        assignment = {}
        for hop, link in enumerate(links):
            assignment[link] = rotated_start_slots(starts, hop % size, size)
        return links, assignment

    def _assignment_still_free(self, assignment: Dict[Link, Tuple[int, ...]]) -> bool:
        """Whether every slot of a cached plan is still free right now.

        The version stamp cannot see mutations made directly through the
        live tables handed out by :meth:`slot_table`, so a cache hit is
        re-validated with one mask test per link before the unchecked grant.
        """
        slot_tables = self._slot_tables
        for link, slots in assignment.items():
            mask = 0
            for slot in slots:
                mask |= 1 << slot
            if mask & ~slot_tables[link]._free_mask:
                return False
        return True

    def path_cost(
        self,
        switch_path: Sequence[int],
        bandwidth: float,
        config: MapperConfig,
        guaranteed: bool = True,
    ) -> float:
        """Cost of routing a flow of ``bandwidth`` along ``switch_path``.

        The cost combines hop delay with residual-bandwidth and residual-slot
        pressure (paper §5 / ref [20]): longer paths and paths through
        already-loaded links cost more.  Paths that cannot carry the flow at
        all return :data:`INFEASIBLE_COST`.
        """
        if not switch_path:
            return INFEASIBLE_COST
        links = self._path_links(switch_path)
        hops = len(links)
        cost = config.hop_weight * hops
        needed = self.slots_for_bandwidth(bandwidth) if guaranteed else 0
        link_residual = self._link_residual
        slot_tables = self._slot_tables
        bandwidth_weight = config.bandwidth_weight
        slot_weight = config.slot_weight
        threshold = bandwidth - 1e-9
        for link in links:
            residual = link_residual[link]
            if residual < threshold:
                return INFEASIBLE_COST
            cost += bandwidth_weight * (bandwidth / (residual if residual > 1e-9 else 1e-9))
            if guaranteed:
                free = slot_tables[link]._free_mask.bit_count()
                if free < needed:
                    return INFEASIBLE_COST
                # ``free >= needed >= 1`` here, so no clamping is required.
                cost += slot_weight * (needed / free)
        return cost

    def reserve(
        self,
        flow_id: str,
        source_core: str,
        destination_core: str,
        switch_path: Sequence[int],
        bandwidth: float,
        guaranteed: bool = True,
        required_slots: Optional[Tuple[int, ...]] = None,
    ) -> PathReservation:
        """Atomically reserve bandwidth (and slots for GT flows) along a path.

        Raises :class:`ResourceError` when the reservation cannot be
        satisfied; the state is unchanged in that case.
        """
        plan: Optional[Tuple[Tuple[Link, ...], Dict[Link, Tuple[int, ...]]]] = None
        cached = self._last_plan
        if cached is not None and cached[0] == self._version:
            key = (
                source_core, destination_core, tuple(switch_path),
                bandwidth, guaranteed, required_slots,
            )
            if cached[1] == key and self._assignment_still_free(cached[2][1]):
                # Reuse the plan computed by the immediately preceding
                # can_reserve on this (unchanged) state — the common
                # path-selection sequence — instead of re-deriving it.
                plan = cached[2]
        if plan is None:
            plan = self._plan(
                source_core, destination_core, switch_path, bandwidth, guaranteed,
                required_slots,
            )
        if plan is None:
            raise ResourceError(
                f"cannot reserve {bandwidth:.3g} B/s for {flow_id!r} along "
                f"{tuple(switch_path)} in state {self.name!r}"
            )
        links, assignment = plan
        self._commit(flow_id, source_core, destination_core, bandwidth, links, assignment)
        reservation = PathReservation(
            flow_id=flow_id,
            source_core=source_core,
            destination_core=destination_core,
            switch_path=tuple(switch_path),
            bandwidth=bandwidth,
            link_slots=assignment,
            guaranteed=guaranteed,
        )
        self._reservations[id(reservation)] = reservation
        return reservation

    def _commit(
        self,
        flow_id: str,
        source_core: str,
        destination_core: str,
        bandwidth: float,
        links: Tuple[Link, ...],
        assignment: Dict[Link, Tuple[int, ...]],
    ) -> None:
        """Apply a validated plan to the residual and slot tables."""
        self._version += 1
        self._last_plan = None
        self._ingress_residual[source_core] -= bandwidth
        self._egress_residual[destination_core] -= bandwidth
        link_residual = self._link_residual
        for link in links:
            link_residual[link] -= bandwidth
        slot_tables = self._slot_tables
        for link, slots in assignment.items():
            # The assignment was planned against the current table state, so
            # the unchecked grant path is safe.
            slot_tables[link]._grant(flow_id, slots)

    def reserve_unrecorded(
        self,
        flow_id: str,
        source_core: str,
        destination_core: str,
        switch_path: Sequence[int],
        bandwidth: float,
        guaranteed: bool = True,
    ) -> Optional[Dict[Link, Tuple[int, ...]]]:
        """Reserve along a path without creating a :class:`PathReservation`.

        Fast path for throwaway evaluation states (the engine's
        fixed-placement evaluator): the plan/commit behaviour is exactly
        :meth:`reserve`'s, but infeasibility returns ``None`` instead of
        raising and no release record is kept — such states are discarded,
        never unwound.  Returns the per-link slot assignment on success.
        """
        plan = self._plan(
            source_core, destination_core, switch_path, bandwidth, guaranteed, None
        )
        if plan is None:
            return None
        links, assignment = plan
        self._commit(flow_id, source_core, destination_core, bandwidth, links, assignment)
        return assignment

    def release(self, reservation: PathReservation) -> None:
        """Return a reservation's bandwidth and slots to the free pool.

        O(1) for reservations returned by :meth:`reserve` on this state (or
        carried into a :meth:`copy`); an equal-but-distinct record falls
        back to a linear scan so historical equality semantics still hold.
        """
        held = self._reservations.pop(id(reservation), None)
        if held is None:
            for key, candidate in self._reservations.items():
                if candidate == reservation:
                    held = self._reservations.pop(key)
                    break
        if held is None:
            raise ResourceError(
                f"reservation for {reservation.flow_id!r} is not held by state {self.name!r}"
            )
        self._version += 1
        self._last_plan = None
        links = self._path_links(held.switch_path)
        self._ingress_residual[held.source_core] += held.bandwidth
        self._egress_residual[held.destination_core] += held.bandwidth
        for link in links:
            self._link_residual[link] += held.bandwidth
        for link, slots in held.link_slots.items():
            table = self._slot_tables[link]
            table.release_flow(held.flow_id)

    def copy(self, name: Optional[str] = None) -> "ResourceState":
        """An independent deep copy (same topology/params objects)."""
        duplicate = ResourceState.__new__(ResourceState)
        duplicate.topology = self.topology
        duplicate.params = self.params
        duplicate.name = name or self.name
        duplicate._capacity = self._capacity
        duplicate._link_residual = dict(self._link_residual)
        duplicate._slot_tables = {
            link: table.copy() for link, table in self._slot_tables.items()
        }
        duplicate._core_switch = dict(self._core_switch)
        duplicate._switch_core_count = dict(self._switch_core_count)
        duplicate._ingress_residual = dict(self._ingress_residual)
        duplicate._egress_residual = dict(self._egress_residual)
        duplicate._reservations = dict(self._reservations)
        duplicate._version = 0
        duplicate._last_plan = None
        # A pure cache (function of the topology only), safe to share.
        duplicate._links_memo = self._links_memo
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceState(name={self.name!r}, topology={self.topology.name!r}, "
            f"reservations={len(self._reservations)})"
        )
