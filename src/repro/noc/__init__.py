"""NoC substrate: topologies, TDMA slot tables, routing and resource state.

This package models the Æthereal-style network the methodology maps onto:

* :mod:`repro.noc.topology` — switches, inter-switch links and the standard
  topology constructors (mesh, torus, ring, custom).
* :mod:`repro.noc.slot_table` — per-link TDMA slot tables with the pipelined
  (slot advances one position per hop) reservation scheme.
* :mod:`repro.noc.routing` — candidate-path enumeration and least-cost path
  selection under bandwidth / slot / latency constraints.
* :mod:`repro.noc.deadlock` — turn-model helpers and channel-dependency-graph
  cycle checks (relevant for best-effort traffic).
* :mod:`repro.noc.resources` — per-use-case residual bandwidth and slot
  state, the "separate data structures" at the heart of the methodology.
"""

from repro.noc.topology import Link, Switch, Topology
from repro.noc.failures import FailureDelta, FailureSet
from repro.noc.slot_table import SlotTable, SlotReservation
from repro.noc.resources import PathReservation, ResourceState
from repro.noc.routing import PathSelector, RoutingPolicy
from repro.noc.deadlock import (
    channel_dependency_graph,
    is_deadlock_free,
    is_xy_path,
    is_west_first_path,
)

__all__ = [
    "Link",
    "Switch",
    "Topology",
    "FailureDelta",
    "FailureSet",
    "SlotTable",
    "SlotReservation",
    "PathReservation",
    "ResourceState",
    "PathSelector",
    "RoutingPolicy",
    "channel_dependency_graph",
    "is_deadlock_free",
    "is_xy_path",
    "is_west_first_path",
]
