"""Deadlock-freedom helpers: turn-model checks and channel dependency graphs.

Guaranteed-throughput traffic on an Æthereal-style NoC is contention-free by
construction (every flit moves in a pre-reserved TDMA slot), so GT flows
cannot deadlock regardless of the paths chosen.  Best-effort traffic,
however, uses ordinary wormhole switching and can deadlock when the selected
paths create a cyclic channel dependency.  This module provides

* path predicates for the two classic deadlock-free routing disciplines on
  meshes — dimension-ordered XY routing and the west-first turn model — and
* a channel-dependency-graph (CDG) construction plus acyclicity check that
  works for arbitrary topologies and path sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.exceptions import RoutingError
from repro.noc.topology import Link, Topology

__all__ = [
    "is_xy_path",
    "is_west_first_path",
    "channel_dependency_graph",
    "is_deadlock_free",
]


def _positions(topology: Topology, path: Sequence[int]) -> List[Tuple[int, int]]:
    positions = []
    for index in path:
        switch = topology.switch(index)
        if switch.position is None:
            raise RoutingError(
                f"turn-model checks need grid positions; switch {index} has none"
            )
        positions.append(switch.position)
    return positions


def _turns(topology: Topology, path: Sequence[int]) -> List[Tuple[str, str]]:
    """The sequence of (incoming direction, outgoing direction) turns of a path."""
    positions = _positions(topology, path)
    directions: List[str] = []
    for (row_a, col_a), (row_b, col_b) in zip(positions, positions[1:]):
        if row_a == row_b and col_b == col_a + 1:
            directions.append("E")
        elif row_a == row_b and col_b == col_a - 1:
            directions.append("W")
        elif col_a == col_b and row_b == row_a + 1:
            directions.append("S")
        elif col_a == col_b and row_b == row_a - 1:
            directions.append("N")
        else:
            raise RoutingError(
                f"path hop ({row_a},{col_a})->({row_b},{col_b}) is not a mesh neighbour step"
            )
    return list(zip(directions, directions[1:]))


def is_xy_path(topology: Topology, path: Sequence[int]) -> bool:
    """Whether a path is dimension-ordered: all X (E/W) hops before Y (N/S) hops."""
    if len(path) <= 1:
        return True
    positions = _positions(topology, path)
    y_started = False
    for (row_a, col_a), (row_b, col_b) in zip(positions, positions[1:]):
        del col_a, col_b
        horizontal = row_a == row_b
        if horizontal and y_started:
            return False
        if not horizontal:
            y_started = True
    return True


#: Turns the west-first turn model forbids: nothing may turn *into* west.
_WEST_FIRST_FORBIDDEN = {("N", "W"), ("S", "W")}


def is_west_first_path(topology: Topology, path: Sequence[int]) -> bool:
    """Whether a path obeys the west-first turn model.

    West-first routing requires all westward hops to happen first; turning
    from north or south into west is forbidden.  Every XY path is also
    west-first compliant.
    """
    if len(path) <= 2:
        return True
    for turn in _turns(topology, path):
        if turn in _WEST_FIRST_FORBIDDEN:
            return False
    return True


def channel_dependency_graph(paths: Iterable[Sequence[int]]) -> nx.DiGraph:
    """Build the channel dependency graph induced by a set of switch paths.

    Nodes are directed links (channels); an edge from channel ``a`` to
    channel ``b`` means some path acquires ``a`` and then requests ``b``
    while still holding ``a`` — the classic wormhole dependency.
    """
    cdg = nx.DiGraph()
    for path in paths:
        links: List[Link] = list(zip(path, path[1:]))
        for link in links:
            cdg.add_node(link)
        for held, requested in zip(links, links[1:]):
            cdg.add_edge(held, requested)
    return cdg


def is_deadlock_free(paths: Iterable[Sequence[int]]) -> bool:
    """Whether the given path set induces an acyclic channel dependency graph."""
    cdg = channel_dependency_graph(paths)
    return nx.is_directed_acyclic_graph(cdg)
