"""Link/switch failure model: the dynamic-event input of failure-aware mapping.

Production NoCs lose resources at runtime — a link goes down after a wear-out
fault, a switch is power-gated or fails outright.  The mapping methodology is
static, so failures enter the flow as *data*: a :class:`FailureSet` records
which directed links and switches are currently down, and
:meth:`repro.noc.topology.Topology.with_failures` derives the surviving
(degraded) topology that routing, slot-table search and deadlock checks then
operate on.  Everything downstream — path enumeration, placement, the engine
caches and the on-disk engine-state store — only ever sees surviving
resources, because the degraded topology simply *has no* failed links.

Failure sets are mutable event recorders (``mark_link_down`` /
``mark_link_up`` and the switch equivalents mirror the path-probing
``mark_path_down``/``mark_path_up`` pattern of runtime monitors) but
serialise to a canonical JSON document, so they content-hash stably:
:attr:`FailureSet.content_hash` composes into job hashes and the degraded
topology's fingerprint, which keeps warm engine state keyed per failure
state — state computed under one failure set is never replayed under
another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple

from repro.exceptions import TopologyError

__all__ = ["FailureSet", "FailureDelta"]

#: a directed link, as in :mod:`repro.noc.topology`
_Link = Tuple[int, int]


@dataclass(frozen=True)
class FailureDelta:
    """What changed between two observed failure states.

    The monitoring loop (:mod:`repro.ops.monitor`) probes the network
    periodically and reacts to *changes*, not absolute states: a link that
    was down last poll and is still down needs no new repair.
    :meth:`FailureSet.diff` reduces two snapshots to the directed links and
    switches that newly failed or healed between them.
    """

    failed_links: Tuple[_Link, ...] = ()
    healed_links: Tuple[_Link, ...] = ()
    failed_switches: Tuple[int, ...] = ()
    healed_switches: Tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.failed_links or self.healed_links
                    or self.failed_switches or self.healed_switches)

    def describe(self) -> str:
        """Short human-readable summary for event logs and CLI output."""
        parts = []
        for label, links in (("down", self.failed_links), ("up", self.healed_links)):
            seen = set()
            for source, destination in links:
                if (destination, source) in seen:
                    continue
                seen.add((source, destination))
                arrow = "<->" if (destination, source) in links else "->"
                parts.append(f"link {source}{arrow}{destination} {label}")
        parts.extend(f"switch {index} down" for index in self.failed_switches)
        parts.extend(f"switch {index} up" for index in self.healed_switches)
        return ", ".join(parts) if parts else "no change"


class FailureSet:
    """The set of currently-failed directed links and switches.

    A physical bidirectional channel fault downs both directed links, which
    is the default of :meth:`mark_link_down`; single-direction faults (a
    broken unidirectional lane) are expressible with ``bidirectional=False``.
    A failed switch implicitly downs every link touching it — recording both
    the switch and its links is redundant and rejected by
    :meth:`validate_for` as an overlapping failure.
    """

    def __init__(
        self,
        links: Iterable[Sequence[int]] = (),
        switches: Iterable[int] = (),
    ) -> None:
        self._links = {(int(a), int(b)) for a, b in links}
        self._switches = {int(index) for index in switches}

    # ------------------------------------------------------------------ #
    # mutation events
    # ------------------------------------------------------------------ #
    def mark_link_down(self, source: int, destination: int,
                       bidirectional: bool = True) -> "FailureSet":
        """Record a link failure (both directions unless told otherwise)."""
        self._links.add((int(source), int(destination)))
        if bidirectional:
            self._links.add((int(destination), int(source)))
        return self

    def mark_link_up(self, source: int, destination: int,
                     bidirectional: bool = True) -> "FailureSet":
        """Clear a link failure (a repaired or re-enabled channel)."""
        self._links.discard((int(source), int(destination)))
        if bidirectional:
            self._links.discard((int(destination), int(source)))
        return self

    def mark_switch_down(self, index: int) -> "FailureSet":
        """Record a switch failure (implicitly downs all its links)."""
        self._switches.add(int(index))
        return self

    def mark_switch_up(self, index: int) -> "FailureSet":
        """Clear a switch failure."""
        self._switches.discard(int(index))
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def links(self) -> Tuple[_Link, ...]:
        """The failed directed links, sorted."""
        return tuple(sorted(self._links))

    @property
    def switches(self) -> Tuple[int, ...]:
        """The failed switch indices, sorted."""
        return tuple(sorted(self._switches))

    @property
    def is_empty(self) -> bool:
        return not self._links and not self._switches

    def affects_switch(self, index: int) -> bool:
        return index in self._switches

    def affects_link(self, source: int, destination: int) -> bool:
        """Whether a directed link is unusable (down, or an endpoint is down)."""
        return (
            (source, destination) in self._links
            or source in self._switches
            or destination in self._switches
        )

    def affects_path(self, path: Sequence[int]) -> bool:
        """Whether a switch path traverses any failed resource."""
        if any(index in self._switches for index in path):
            return True
        return any(
            (here, there) in self._links for here, there in zip(path, path[1:])
        )

    def frozen(self) -> Tuple[Tuple[_Link, ...], Tuple[int, ...]]:
        """Canonical immutable form (hashable, order-independent)."""
        return self.links, self.switches

    def diff(self, observed: "FailureSet") -> FailureDelta:
        """The delta from this (last-known) state to an observed one.

        ``failed_*`` are resources down in ``observed`` but not here;
        ``healed_*`` the reverse.  Directed links are compared individually,
        so a probe that sees only one direction of a channel recover
        produces exactly that single-direction delta.
        """
        return FailureDelta(
            failed_links=tuple(sorted(observed._links - self._links)),
            healed_links=tuple(sorted(self._links - observed._links)),
            failed_switches=tuple(sorted(observed._switches - self._switches)),
            healed_switches=tuple(sorted(self._switches - observed._switches)),
        )

    def copy(self) -> "FailureSet":
        return FailureSet(links=self._links, switches=self._switches)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate_for(self, topology) -> None:
        """Check every failure id against a topology.

        Raises :class:`~repro.exceptions.TopologyError` for a switch index
        the topology does not have, a link it does not contain, and for
        *overlapping* failures — a downed link whose endpoint switch is also
        downed (the switch failure already implies the link failure, so the
        overlap is almost certainly an authoring mistake).
        """
        for index in sorted(self._switches):
            topology.switch(index)  # raises TopologyError for unknown indices
        for source, destination in sorted(self._links):
            topology.switch(source)
            topology.switch(destination)
            if not topology.has_link(source, destination):
                raise TopologyError(
                    f"failure names link ({source}, {destination}) which does "
                    f"not exist on {topology.name!r}"
                )
            if source in self._switches or destination in self._switches:
                raise TopologyError(
                    f"overlapping failure: link ({source}, {destination}) is "
                    f"already implied by a failed endpoint switch"
                )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """Canonical JSON-ready form (sorted, so it content-hashes stably)."""
        return {
            "links": [list(link) for link in self.links],
            "switches": list(self.switches),
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "FailureSet":
        if not isinstance(document, dict):
            raise TopologyError(
                f"failure-set document must be a mapping, got {type(document).__name__}"
            )
        try:
            return cls(
                links=[(int(link[0]), int(link[1]))
                       for link in document.get("links", ())],
                switches=[int(index) for index in document.get("switches", ())],
            )
        except (TypeError, ValueError, IndexError) as exc:
            raise TopologyError(f"malformed failure-set document: {exc}") from None

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 of the canonical document.

        Composes into the degraded topology's name and fingerprint (and
        through them into job hashes and engine-state store contexts), so
        warm state is keyed per failure state.
        """
        from repro.io.serialization import document_fingerprint

        return document_fingerprint(self.to_dict())

    def describe(self) -> str:
        """Short human-readable summary for reports and CLI tables."""
        parts = []
        seen = set()
        for source, destination in self.links:
            if (destination, source) in seen:
                continue
            seen.add((source, destination))
            arrow = "<->" if (destination, source) in self._links else "->"
            parts.append(f"link {source}{arrow}{destination}")
        parts.extend(f"switch {index}" for index in self.switches)
        return ", ".join(parts) if parts else "no failures"

    def __eq__(self, other) -> bool:
        if not isinstance(other, FailureSet):
            return NotImplemented
        return self.frozen() == other.frozen()

    def __hash__(self) -> int:
        return hash(self.frozen())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FailureSet(links={sorted(self._links)}, switches={sorted(self._switches)})"
