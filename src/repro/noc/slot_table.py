"""TDMA slot tables with Æthereal-style pipelined reservations.

Every directed link of the NoC owns a slot table of ``S`` slots.  Time is
divided into recurring frames of ``S`` slots; a guaranteed-throughput (GT)
flow that owns ``k`` slots on a link gets ``k/S`` of that link's raw
bandwidth, contention-free.

Reservations are *pipelined*: when a flow is granted slot ``s`` on the first
link of its path it implicitly uses slot ``(s + 1) mod S`` on the second
link, ``(s + 2) mod S`` on the third, and so on — data moves exactly one hop
per slot.  Finding a reservation for a path therefore means finding ``k``
starting slot indices that are simultaneously free on every link of the path
(after per-hop rotation).  This module implements the per-link table;
path-level searches live in :class:`repro.noc.resources.ResourceState`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ResourceError

__all__ = ["SlotTable", "SlotReservation", "slots_needed"]


def slots_needed(bandwidth: float, link_capacity: float, num_slots: int) -> int:
    """Number of TDMA slots a flow of ``bandwidth`` needs on one link.

    Each of the ``num_slots`` slots carries ``link_capacity / num_slots``
    bytes/s, so the flow needs ``ceil(bandwidth / slot_bandwidth)`` slots.
    The result is at least 1 (a GT flow always owns at least one slot) and
    may exceed ``num_slots``, in which case the link simply cannot carry the
    flow — callers treat that as an infeasible path.
    """
    if bandwidth <= 0:
        raise ResourceError(f"flow bandwidth must be positive, got {bandwidth}")
    if link_capacity <= 0:
        raise ResourceError(f"link capacity must be positive, got {link_capacity}")
    if num_slots <= 0:
        raise ConfigurationError(f"slot table size must be positive, got {num_slots}")
    slot_bandwidth = link_capacity / num_slots
    return max(1, math.ceil(bandwidth / slot_bandwidth - 1e-12))


@dataclass(frozen=True)
class SlotReservation:
    """The slots a single flow owns on a single link."""

    flow_id: str
    slots: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ResourceError("a slot reservation must contain at least one slot")
        if len(set(self.slots)) != len(self.slots):
            raise ResourceError(f"duplicate slots in reservation: {self.slots}")


class SlotTable:
    """The TDMA slot table of one directed link.

    Slots are identified by their index ``0 .. size-1``.  Each slot is either
    free or owned by exactly one flow (identified by an opaque string id).
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"slot table size must be positive, got {size}")
        self._size = size
        self._owner: List[Optional[str]] = [None] * size

    @property
    def size(self) -> int:
        """Total number of slots in the table."""
        return self._size

    @property
    def free_count(self) -> int:
        """Number of currently unreserved slots."""
        return sum(1 for owner in self._owner if owner is None)

    @property
    def used_count(self) -> int:
        """Number of currently reserved slots."""
        return self._size - self.free_count

    @property
    def utilization(self) -> float:
        """Fraction of slots reserved (0.0 — 1.0)."""
        return self.used_count / self._size

    def is_free(self, slot: int) -> bool:
        """Whether the given slot index is unreserved."""
        self._check_index(slot)
        return self._owner[slot] is None

    def owner_of(self, slot: int) -> Optional[str]:
        """The flow id owning the slot, or ``None`` when it is free."""
        self._check_index(slot)
        return self._owner[slot]

    def free_slots(self) -> Tuple[int, ...]:
        """Indices of all free slots, ascending."""
        return tuple(idx for idx, owner in enumerate(self._owner) if owner is None)

    def slots_owned_by(self, flow_id: str) -> Tuple[int, ...]:
        """Indices of all slots owned by the given flow, ascending."""
        return tuple(idx for idx, owner in enumerate(self._owner) if owner == flow_id)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def reserve(self, flow_id: str, slots: Iterable[int]) -> SlotReservation:
        """Reserve the given slots for a flow.

        The operation is atomic: if any requested slot is taken, nothing is
        reserved and :class:`ResourceError` is raised.
        """
        requested = tuple(slots)
        reservation = SlotReservation(flow_id=flow_id, slots=requested)
        for slot in requested:
            self._check_index(slot)
            if self._owner[slot] is not None:
                raise ResourceError(
                    f"slot {slot} is already owned by {self._owner[slot]!r}; "
                    f"cannot reserve it for {flow_id!r}"
                )
        for slot in requested:
            self._owner[slot] = flow_id
        return reservation

    def release(self, reservation: SlotReservation) -> None:
        """Release a previously granted reservation.

        Raises :class:`ResourceError` if any slot of the reservation is not
        currently owned by the reservation's flow (double release, or release
        of someone else's slots).
        """
        for slot in reservation.slots:
            self._check_index(slot)
            if self._owner[slot] != reservation.flow_id:
                raise ResourceError(
                    f"slot {slot} is owned by {self._owner[slot]!r}, not by "
                    f"{reservation.flow_id!r}; refusing to release"
                )
        for slot in reservation.slots:
            self._owner[slot] = None

    def release_flow(self, flow_id: str) -> int:
        """Release every slot owned by the flow; returns how many were freed."""
        freed = 0
        for idx, owner in enumerate(self._owner):
            if owner == flow_id:
                self._owner[idx] = None
                freed += 1
        return freed

    def clear(self) -> None:
        """Release every slot."""
        self._owner = [None] * self._size

    def copy(self) -> "SlotTable":
        """An independent deep copy of the table."""
        duplicate = SlotTable(self._size)
        duplicate._owner = list(self._owner)
        return duplicate

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def occupancy(self) -> Dict[int, str]:
        """Mapping of reserved slot index to owning flow id."""
        return {idx: owner for idx, owner in enumerate(self._owner) if owner is not None}

    def _check_index(self, slot: int) -> None:
        if not isinstance(slot, int) or slot < 0 or slot >= self._size:
            raise ResourceError(
                f"slot index {slot!r} out of range for a table of size {self._size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotTable(size={self._size}, used={self.used_count})"


def find_pipelined_slots(
    tables: Sequence[SlotTable],
    needed: int,
) -> Optional[Tuple[int, ...]]:
    """Find ``needed`` starting slots free along a whole path of slot tables.

    ``tables[i]`` is the slot table of the ``i``-th link of the path.  A
    starting slot ``s`` is admissible when slot ``(s + i) mod S`` is free in
    ``tables[i]`` for every link ``i`` (the Æthereal pipelining rule).
    Returns the lowest admissible starting slots, or ``None`` when fewer than
    ``needed`` admissible starts exist.  All tables must share the same size.
    """
    if not tables:
        raise ResourceError("cannot search for slots along an empty path")
    size = tables[0].size
    for table in tables:
        if table.size != size:
            raise ConfigurationError(
                "all slot tables along a path must have the same size "
                f"(got {table.size} and {size})"
            )
    if needed <= 0:
        raise ResourceError(f"slot demand must be positive, got {needed}")
    if needed > size:
        return None
    admissible: List[int] = []
    for start in range(size):
        if all(table.is_free((start + hop) % size) for hop, table in enumerate(tables)):
            admissible.append(start)
            if len(admissible) == needed:
                return tuple(admissible)
    return None
