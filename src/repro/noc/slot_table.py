"""TDMA slot tables with Æthereal-style pipelined reservations.

Every directed link of the NoC owns a slot table of ``S`` slots.  Time is
divided into recurring frames of ``S`` slots; a guaranteed-throughput (GT)
flow that owns ``k`` slots on a link gets ``k/S`` of that link's raw
bandwidth, contention-free.

Reservations are *pipelined*: when a flow is granted slot ``s`` on the first
link of its path it implicitly uses slot ``(s + 1) mod S`` on the second
link, ``(s + 2) mod S`` on the third, and so on — data moves exactly one hop
per slot.  Finding a reservation for a path therefore means finding ``k``
starting slot indices that are simultaneously free on every link of the path
(after per-hop rotation).  This module implements the per-link table;
path-level searches live in :class:`repro.noc.resources.ResourceState`.

The free set of a table is held as a single Python int (``free_mask``, bit
``s`` set when slot ``s`` is free), so the pipelined path search reduces to
rotating each hop's mask into the start-slot frame and AND-ing them — a
handful of big-int operations instead of an O(S × hops) Python scan.  An
owner list is kept alongside the mask purely for reservation bookkeeping
(release validation and diagnostics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, ResourceError

__all__ = [
    "SlotTable",
    "SlotReservation",
    "slots_needed",
    "slots_needed_cached",
    "find_pipelined_slots",
    "pipelined_free_mask",
    "hop_mask_matrix",
    "lowest_set_bits",
    "rotated_start_slots",
]


def slots_needed(bandwidth: float, link_capacity: float, num_slots: int) -> int:
    """Number of TDMA slots a flow of ``bandwidth`` needs on one link.

    Each of the ``num_slots`` slots carries ``link_capacity / num_slots``
    bytes/s, so the flow needs ``ceil(bandwidth / slot_bandwidth)`` slots.
    The result is at least 1 (a GT flow always owns at least one slot) and
    may exceed ``num_slots``, in which case the link simply cannot carry the
    flow — callers treat that as an infeasible path.
    """
    if bandwidth <= 0:
        raise ResourceError(f"flow bandwidth must be positive, got {bandwidth}")
    if link_capacity <= 0:
        raise ResourceError(f"link capacity must be positive, got {link_capacity}")
    if num_slots <= 0:
        raise ConfigurationError(f"slot table size must be positive, got {num_slots}")
    slot_bandwidth = link_capacity / num_slots
    return max(1, math.ceil(bandwidth / slot_bandwidth - 1e-12))


#: Memoised variant of :func:`slots_needed` for the mapper's hot path, where
#: the same (bandwidth, capacity, table size) triples recur constantly across
#: resource states, groups and topology attempts.
slots_needed_cached = lru_cache(maxsize=1 << 16)(slots_needed)


@dataclass(frozen=True)
class SlotReservation:
    """The slots a single flow owns on a single link."""

    flow_id: str
    slots: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ResourceError("a slot reservation must contain at least one slot")
        if len(set(self.slots)) != len(self.slots):
            raise ResourceError(f"duplicate slots in reservation: {self.slots}")


class SlotTable:
    """The TDMA slot table of one directed link.

    Slots are identified by their index ``0 .. size-1``.  Each slot is either
    free or owned by exactly one flow (identified by an opaque string id).
    The free set is a bitmask (bit ``s`` set when slot ``s`` is free); the
    owner list exists only for bookkeeping and release validation.
    """

    __slots__ = (
        "_size",
        "_full_mask",
        "_free_mask",
        "_owner",
        "_generation",
        "_free_slots_memo",
        "_owned_memo",
    )

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"slot table size must be positive, got {size}")
        self._size = size
        self._full_mask = (1 << size) - 1
        self._free_mask = self._full_mask
        self._owner: List[Optional[str]] = [None] * size
        # Mutation counter; the tuple views below memoise against it so the
        # refiner/screening loops can call them repeatedly without
        # re-materialising identical tuples (see free_slots/slots_owned_by).
        self._generation = 0
        self._free_slots_memo: Optional[Tuple[int, Tuple[int, ...]]] = None
        self._owned_memo: Dict[str, Tuple[int, Tuple[int, ...]]] = {}

    @property
    def size(self) -> int:
        """Total number of slots in the table."""
        return self._size

    @property
    def free_mask(self) -> int:
        """Bitmask of the free set: bit ``s`` is set when slot ``s`` is free."""
        return self._free_mask

    @property
    def generation(self) -> int:
        """Counter bumped by every mutation; keys the memoised tuple views."""
        return self._generation

    @property
    def free_count(self) -> int:
        """Number of currently unreserved slots."""
        return self._free_mask.bit_count()

    @property
    def used_count(self) -> int:
        """Number of currently reserved slots."""
        return self._size - self._free_mask.bit_count()

    @property
    def utilization(self) -> float:
        """Fraction of slots reserved (0.0 — 1.0)."""
        return self.used_count / self._size

    def is_free(self, slot: int) -> bool:
        """Whether the given slot index is unreserved."""
        self._check_index(slot)
        return bool(self._free_mask >> slot & 1)

    def owner_of(self, slot: int) -> Optional[str]:
        """The flow id owning the slot, or ``None`` when it is free."""
        self._check_index(slot)
        return self._owner[slot]

    def free_slots(self) -> Tuple[int, ...]:
        """Indices of all free slots, ascending.

        Memoised against the mutation generation: repeated calls between
        mutations return the same tuple object instead of rebuilding it —
        the refiner loops interrogate unchanged tables constantly.
        """
        memo = self._free_slots_memo
        if memo is not None and memo[0] == self._generation:
            return memo[1]
        slots = _mask_to_slots(self._free_mask)
        self._free_slots_memo = (self._generation, slots)
        return slots

    def slots_owned_by(self, flow_id: str) -> Tuple[int, ...]:
        """Indices of all slots owned by the given flow, ascending.

        Memoised per flow against the mutation generation (stale entries are
        refreshed lazily on the next lookup after a mutation).
        """
        memo = self._owned_memo.get(flow_id)
        if memo is not None and memo[0] == self._generation:
            return memo[1]
        slots = tuple(idx for idx, owner in enumerate(self._owner) if owner == flow_id)
        if len(self._owned_memo) >= 4 * self._size:
            self._owned_memo.clear()
        self._owned_memo[flow_id] = (self._generation, slots)
        return slots

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def reserve(self, flow_id: str, slots: Iterable[int]) -> SlotReservation:
        """Reserve the given slots for a flow.

        The operation is atomic: if any requested slot is taken, nothing is
        reserved and :class:`ResourceError` is raised.
        """
        requested = tuple(slots)
        reservation = SlotReservation(flow_id=flow_id, slots=requested)
        mask = 0
        for slot in requested:
            self._check_index(slot)
            mask |= 1 << slot
        conflict = mask & ~self._free_mask
        if conflict:
            slot = (conflict & -conflict).bit_length() - 1
            raise ResourceError(
                f"slot {slot} is already owned by {self._owner[slot]!r}; "
                f"cannot reserve it for {flow_id!r}"
            )
        self._free_mask &= ~mask
        for slot in requested:
            self._owner[slot] = flow_id
        self._generation += 1
        return reservation

    def _grant(self, flow_id: str, slots: Sequence[int]) -> None:
        """Reserve pre-validated slots without re-checking availability.

        Internal fast path for :class:`repro.noc.resources.ResourceState`,
        which only calls it with an assignment just planned against this
        table's current free mask.
        """
        mask = 0
        owner = self._owner
        for slot in slots:
            mask |= 1 << slot
            owner[slot] = flow_id
        self._free_mask &= ~mask
        self._generation += 1

    def release(self, reservation: SlotReservation) -> None:
        """Release a previously granted reservation.

        Raises :class:`ResourceError` if any slot of the reservation is not
        currently owned by the reservation's flow (double release, or release
        of someone else's slots).
        """
        mask = 0
        for slot in reservation.slots:
            self._check_index(slot)
            if self._owner[slot] != reservation.flow_id:
                raise ResourceError(
                    f"slot {slot} is owned by {self._owner[slot]!r}, not by "
                    f"{reservation.flow_id!r}; refusing to release"
                )
            mask |= 1 << slot
        self._free_mask |= mask
        for slot in reservation.slots:
            self._owner[slot] = None
        self._generation += 1

    def release_flow(self, flow_id: str) -> int:
        """Release every slot owned by the flow; returns how many were freed."""
        freed = 0
        for idx, owner in enumerate(self._owner):
            if owner == flow_id:
                self._owner[idx] = None
                self._free_mask |= 1 << idx
                freed += 1
        if freed:
            self._generation += 1
        return freed

    def clear(self) -> None:
        """Release every slot."""
        self._owner = [None] * self._size
        self._free_mask = self._full_mask
        self._generation += 1
        self._owned_memo.clear()

    def copy(self) -> "SlotTable":
        """An independent deep copy of the table."""
        duplicate = SlotTable(self._size)
        duplicate._owner = list(self._owner)
        duplicate._free_mask = self._free_mask
        return duplicate

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def occupancy(self) -> Dict[int, str]:
        """Mapping of reserved slot index to owning flow id."""
        return {idx: owner for idx, owner in enumerate(self._owner) if owner is not None}

    def _check_index(self, slot: int) -> None:
        if not isinstance(slot, int) or slot < 0 or slot >= self._size:
            raise ResourceError(
                f"slot index {slot!r} out of range for a table of size {self._size}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotTable):
            return NotImplemented
        return self._size == other._size and self._owner == other._owner

    __hash__ = None  # mutable; equality is by content

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotTable(size={self._size}, used={self.used_count})"


def _mask_to_slots(mask: int) -> Tuple[int, ...]:
    """Set bit positions of ``mask``, ascending."""
    slots: List[int] = []
    while mask:
        low = mask & -mask
        slots.append(low.bit_length() - 1)
        mask ^= low
    return tuple(slots)


def pipelined_free_mask(masks: Sequence[int], size: int) -> int:
    """Bitmask of admissible *starting* slots along a path of free masks.

    ``masks[i]`` is the free mask of the ``i``-th link.  A starting slot
    ``s`` is admissible when slot ``(s + i) mod S`` is free on link ``i``
    for every hop ``i``; rotating each hop's mask right by ``i`` brings that
    condition into the start-slot frame, so the admissible set is simply the
    AND of the rotated masks.
    """
    full = (1 << size) - 1
    admissible = full
    for hop, mask in enumerate(masks):
        rotation = hop % size
        if rotation:
            mask = ((mask >> rotation) | (mask << (size - rotation))) & full
        admissible &= mask
        if not admissible:
            break
    return admissible


def hop_mask_matrix(
    free_masks: Dict[Tuple[int, int], int],
    paths_links: Sequence[Sequence[Tuple[int, int]]],
    full_mask: int,
) -> List[List[int]]:
    """Per-hop free-mask rows for a batch of candidate paths.

    ``free_masks`` maps a directed link to its current free mask; links
    absent from the mapping are untouched and default to ``full_mask``.
    Row ``i`` of the result holds the free masks of path ``i``'s links in
    hop order — the matrix shape consumed by the batched rotate-and-AND
    admissibility screen (:mod:`repro.optimize.screen`), whose backends
    reduce each row to the admissible starting-slot mask that
    :func:`pipelined_free_mask` would compute link by link.
    """
    return [
        [free_masks.get(link, full_mask) for link in links]
        for links in paths_links
    ]


def rotated_start_slots(starts: Tuple[int, ...], shift: int, size: int) -> Tuple[int, ...]:
    """The hop-``shift`` slot set of an ascending starting-slot tuple.

    The Æthereal pipeline advances every reservation one slot per hop, so
    hop ``i`` carries ``(start + i) mod S`` for each starting slot.  With
    ``starts`` ascending the rotated set stays sorted except at the wrap
    point: everything that wrapped (now ``< shift``) goes before everything
    that did not — the same tuples a per-hop sort would produce, without
    sorting.  ``shift == 0`` returns ``starts`` itself.  This is the single
    definition of the per-hop assignment shape, shared by the reservation
    planner (:meth:`repro.noc.resources.ResourceState._plan`) and the
    engine-state store's evaluation import
    (:mod:`repro.core.engine`), whose bit-identity contract depends on both
    producing identical tuples.
    """
    if shift == 0:
        return starts
    wrapped: List[int] = []
    straight: List[int] = []
    for start in starts:
        value = start + shift
        if value >= size:
            wrapped.append(value - size)
        else:
            straight.append(value)
    return tuple(wrapped + straight)


def lowest_set_bits(mask: int, count: int) -> Optional[Tuple[int, ...]]:
    """The ``count`` lowest set bit positions of ``mask``, ascending.

    Returns ``None`` when the mask has fewer than ``count`` set bits.  This
    is the slot-picking rule of the pipelined search (lowest admissible
    starting slots win), shared by :func:`find_pipelined_slots` and
    :meth:`repro.noc.resources.ResourceState._plan`.
    """
    if mask.bit_count() < count:
        return None
    bits: List[int] = []
    while len(bits) < count:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return tuple(bits)


def find_pipelined_slots(
    tables: Sequence[SlotTable],
    needed: int,
) -> Optional[Tuple[int, ...]]:
    """Find ``needed`` starting slots free along a whole path of slot tables.

    ``tables[i]`` is the slot table of the ``i``-th link of the path.  A
    starting slot ``s`` is admissible when slot ``(s + i) mod S`` is free in
    ``tables[i]`` for every link ``i`` (the Æthereal pipelining rule).
    Returns the lowest admissible starting slots, or ``None`` when fewer than
    ``needed`` admissible starts exist.  All tables must share the same size.
    """
    if not tables:
        raise ResourceError("cannot search for slots along an empty path")
    size = tables[0].size
    for table in tables:
        if table.size != size:
            raise ConfigurationError(
                "all slot tables along a path must have the same size "
                f"(got {table.size} and {size})"
            )
    if needed <= 0:
        raise ResourceError(f"slot demand must be positive, got {needed}")
    if needed > size:
        return None
    admissible = pipelined_free_mask([table._free_mask for table in tables], size)
    return lowest_set_bits(admissible, needed)
