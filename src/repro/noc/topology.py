"""NoC topology model: switches, directed links and topology constructors.

A topology is a *structural* object: it knows which switches exist, how they
are positioned (for meshes/tori) and which directed links connect them.  It
deliberately carries no capacity or reservation state — capacities depend on
the operating point (frequency, link width) and reservations depend on the
use-case, both of which live in :class:`repro.noc.resources.ResourceState`.

The paper's evaluation uses meshes exclusively ("we assume that the topology
structure is a mesh, although the mapping design methodology is applicable to
any NoC topology"), so the mesh constructor is the primary one; torus, ring
and fully-custom topologies are provided because the methodology itself is
topology-agnostic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.noc.failures import FailureSet

__all__ = ["Switch", "Link", "Topology", "mesh_dimensions_for", "mesh_growth_schedule"]


@dataclass(frozen=True)
class Switch:
    """A NoC switch (router).

    Parameters
    ----------
    index:
        Dense integer identifier, unique within the topology.
    position:
        Optional (row, column) grid coordinate; present for meshes and tori,
        ``None`` for irregular topologies.
    """

    index: int
    position: Optional[Tuple[int, int]] = None

    @property
    def row(self) -> int:
        """Grid row of the switch (raises for irregular topologies)."""
        if self.position is None:
            raise TopologyError(f"switch {self.index} has no grid position")
        return self.position[0]

    @property
    def col(self) -> int:
        """Grid column of the switch (raises for irregular topologies)."""
        if self.position is None:
            raise TopologyError(f"switch {self.index} has no grid position")
        return self.position[1]

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.position is not None:
            return f"S{self.index}({self.position[0]},{self.position[1]})"
        return f"S{self.index}"


#: A directed inter-switch link, identified by (source switch index,
#: destination switch index).
Link = Tuple[int, int]


class Topology:
    """A directed multigraph-free NoC topology of switches and links.

    Links are directed: a bidirectional physical channel is represented as
    two directed links (one per direction), because bandwidth and TDMA slots
    are reserved per direction.
    """

    def __init__(
        self,
        name: str,
        switches: Sequence[Switch],
        links: Iterable[Link],
        kind: str = "custom",
        dimensions: Optional[Tuple[int, int]] = None,
        failures: Optional["FailureSet"] = None,
    ) -> None:
        if not switches:
            raise TopologyError("a topology needs at least one switch")
        indices = [switch.index for switch in switches]
        if len(set(indices)) != len(indices):
            raise TopologyError("switch indices must be unique")
        if sorted(indices) != list(range(len(indices))):
            raise TopologyError("switch indices must be dense 0..N-1")
        self.name = name
        self.kind = kind
        self.dimensions = dimensions
        #: the failure set this topology was degraded with (``None`` for a
        #: pristine topology); downed switches stay *present* — indices must
        #: remain dense — but carry no links and reject core attachment
        self.failures = failures
        self._down_switches = frozenset(failures.switches) if failures is not None else frozenset()
        self._switches: Dict[int, Switch] = {switch.index: switch for switch in switches}
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._switches)
        for source, destination in links:
            self._add_link(source, destination)
        # Topologies are immutable after construction, so the sorted link
        # tuple is computed lazily once and reused (ResourceState creation
        # iterates it for every group of every outer-loop attempt).
        self._links_cache: Optional[Tuple[Link, ...]] = None

    def _add_link(self, source: int, destination: int) -> None:
        if source not in self._switches or destination not in self._switches:
            raise TopologyError(
                f"link ({source}, {destination}) references an unknown switch"
            )
        if source == destination:
            raise TopologyError(f"self-loop link on switch {source} is not allowed")
        self._graph.add_edge(source, destination)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def mesh(cls, rows: int, cols: int) -> "Topology":
        """A ``rows x cols`` 2-D mesh with bidirectional neighbour links."""
        if rows <= 0 or cols <= 0:
            raise TopologyError(f"mesh dimensions must be positive, got {rows}x{cols}")
        switches = [
            Switch(index=row * cols + col, position=(row, col))
            for row in range(rows)
            for col in range(cols)
        ]
        links: List[Link] = []
        for row in range(rows):
            for col in range(cols):
                here = row * cols + col
                if col + 1 < cols:
                    right = row * cols + (col + 1)
                    links.extend([(here, right), (right, here)])
                if row + 1 < rows:
                    down = (row + 1) * cols + col
                    links.extend([(here, down), (down, here)])
        return cls(
            name=f"mesh-{rows}x{cols}",
            switches=switches,
            links=links,
            kind="mesh",
            dimensions=(rows, cols),
        )

    @classmethod
    def torus(cls, rows: int, cols: int) -> "Topology":
        """A ``rows x cols`` 2-D torus (mesh plus wrap-around links)."""
        if rows <= 0 or cols <= 0:
            raise TopologyError(f"torus dimensions must be positive, got {rows}x{cols}")
        base = cls.mesh(rows, cols)
        links = set(base.links)
        for row in range(rows):
            if cols > 2:
                first = row * cols
                last = row * cols + (cols - 1)
                links.update([(first, last), (last, first)])
        for col in range(cols):
            if rows > 2:
                top = col
                bottom = (rows - 1) * cols + col
                links.update([(top, bottom), (bottom, top)])
        return cls(
            name=f"torus-{rows}x{cols}",
            switches=list(base.switches),
            links=sorted(links),
            kind="torus",
            dimensions=(rows, cols),
        )

    @classmethod
    def ring(cls, count: int) -> "Topology":
        """A bidirectional ring of ``count`` switches."""
        if count <= 0:
            raise TopologyError(f"ring size must be positive, got {count}")
        switches = [Switch(index=i) for i in range(count)]
        links: List[Link] = []
        if count > 1:
            for i in range(count):
                nxt = (i + 1) % count
                if count == 2 and i == 1:
                    break  # avoid duplicating the single pair of links
                links.extend([(i, nxt), (nxt, i)])
        return cls(name=f"ring-{count}", switches=switches, links=links, kind="ring")

    @classmethod
    def single_switch(cls) -> "Topology":
        """The degenerate one-switch topology Algorithm 2 starts from."""
        return cls(name="single-switch", switches=[Switch(index=0)], links=[], kind="mesh",
                   dimensions=(1, 1))

    @classmethod
    def custom(cls, edges: Iterable[Tuple[int, int]], name: str = "custom",
               bidirectional: bool = True) -> "Topology":
        """An arbitrary topology from switch-index edges.

        Switch indices are inferred from the edges and must form a dense
        0..N-1 range.  When ``bidirectional`` is true every edge contributes
        a link in each direction.
        """
        edge_list = list(edges)
        if not edge_list:
            raise TopologyError("a custom topology needs at least one edge")
        nodes = sorted({node for edge in edge_list for node in edge})
        switches = [Switch(index=node) for node in nodes]
        links: List[Link] = []
        for source, destination in edge_list:
            links.append((source, destination))
            if bidirectional:
                links.append((destination, source))
        return cls(name=name, switches=switches, links=sorted(set(links)), kind="custom")

    def with_failures(self, failures: "FailureSet") -> "Topology":
        """The degraded topology that survives a failure set.

        Failed links — and every link touching a failed switch — are removed;
        switches stay present (indices must remain dense) but a downed switch
        is isolated and rejects core attachment.  Grid kind, dimensions and
        positions are preserved so mesh-aware routing still applies to the
        surviving paths.  The name carries the failure set's content hash,
        which propagates the failure state into topology fingerprints,
        mapping fingerprints and engine-state store contexts.

        An empty failure set returns ``self`` — the pristine topology and its
        fingerprints are untouched.
        """
        failures.validate_for(self)
        if failures.is_empty:
            return self
        frozen = failures.copy()
        surviving = [
            link for link in self.links
            if not frozen.affects_link(*link)
        ]
        return Topology(
            name=f"{self.name}+f{frozen.content_hash[:8]}",
            switches=list(self.switches),
            links=surviving,
            kind=self.kind,
            dimensions=self.dimensions,
            failures=frozen,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def switches(self) -> Tuple[Switch, ...]:
        """All switches, ordered by index."""
        return tuple(self._switches[index] for index in sorted(self._switches))

    @property
    def switch_count(self) -> int:
        """Number of switches in the topology."""
        return len(self._switches)

    @property
    def links(self) -> Tuple[Link, ...]:
        """All directed inter-switch links."""
        if self._links_cache is None:
            self._links_cache = tuple(sorted(self._graph.edges()))
        return self._links_cache

    @property
    def link_count(self) -> int:
        """Number of directed inter-switch links."""
        return self._graph.number_of_edges()

    def switch(self, index: int) -> Switch:
        """The switch with the given index."""
        try:
            return self._switches[index]
        except KeyError:
            raise TopologyError(
                f"topology {self.name!r} has no switch {index} "
                f"(valid: 0..{self.switch_count - 1})"
            ) from None

    def has_link(self, source: int, destination: int) -> bool:
        """Whether a directed link from ``source`` to ``destination`` exists."""
        return self._graph.has_edge(source, destination)

    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Switches reachable from ``index`` over one link."""
        self.switch(index)
        return tuple(sorted(self._graph.successors(index)))

    def degree(self, index: int) -> int:
        """Number of outgoing links of a switch (its routing arity)."""
        self.switch(index)
        return self._graph.out_degree(index)

    def port_count(self, index: int) -> int:
        """Total port count of a switch: inter-switch links plus one NI port.

        The area model charges per port; every switch is assumed to expose at
        least one network-interface port for locally attached cores in
        addition to its inter-switch ports.
        """
        return self.degree(index) + 1

    @property
    def has_failures(self) -> bool:
        """Whether this is a degraded topology (non-empty failure set)."""
        return self.failures is not None and not self.failures.is_empty

    def is_switch_down(self, index: int) -> bool:
        """Whether a switch is failed (present but unusable)."""
        return index in self._down_switches

    @property
    def alive_switches(self) -> Tuple[Switch, ...]:
        """The surviving switches, ordered by index."""
        if not self._down_switches:
            return self.switches
        return tuple(
            self._switches[index] for index in sorted(self._switches)
            if index not in self._down_switches
        )

    def is_connected(self) -> bool:
        """Whether every *surviving* switch can reach every other one.

        A pristine topology checks all switches; a degraded one checks the
        alive-switch subgraph (a downed switch is unreachable by definition
        and must not render the rest of the network "disconnected").
        """
        alive = [sw.index for sw in self.alive_switches]
        if len(alive) <= 1:
            return bool(alive)
        if self._down_switches:
            return nx.is_strongly_connected(self._graph.subgraph(alive))
        return nx.is_strongly_connected(self._graph)

    def shortest_hop_count(self, source: int, destination: int) -> int:
        """Minimum number of links between two switches."""
        self.switch(source)
        self.switch(destination)
        if source == destination:
            return 0
        try:
            return nx.shortest_path_length(self._graph, source, destination)
        except nx.NetworkXNoPath:
            raise TopologyError(
                f"no path from switch {source} to switch {destination} in {self.name!r}"
            ) from None

    def diameter(self) -> int:
        """Longest shortest-path hop count over all surviving switch pairs."""
        alive = [sw.index for sw in self.alive_switches]
        if len(alive) <= 1:
            return 0
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} is not connected")
        graph = self._graph.subgraph(alive) if self._down_switches else self._graph
        return nx.diameter(graph.to_undirected(as_view=True))

    def graph(self) -> nx.DiGraph:
        """A read-only view of the underlying directed graph."""
        return self._graph.copy(as_view=True)

    def average_port_count(self) -> float:
        """Mean switch port count (used by the area and power models)."""
        return sum(self.port_count(sw.index) for sw in self.switches) / self.switch_count

    def __iter__(self) -> Iterator[Switch]:
        return iter(self.switches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, switches={self.switch_count}, "
            f"links={self.link_count})"
        )


def mesh_dimensions_for(switch_count: int) -> Tuple[int, int]:
    """The most-square (rows, cols) mesh holding exactly ``switch_count`` switches.

    Picks the factorisation ``rows * cols == switch_count`` with the smallest
    aspect-ratio difference; prime counts therefore degenerate to ``1 x n``.
    """
    if switch_count <= 0:
        raise TopologyError(f"switch count must be positive, got {switch_count}")
    best: Tuple[int, int] = (1, switch_count)
    for rows in range(1, int(math.isqrt(switch_count)) + 1):
        if switch_count % rows == 0:
            cols = switch_count // rows
            if abs(rows - cols) < abs(best[0] - best[1]):
                best = (rows, cols)
    return best


def mesh_growth_schedule(max_switches: int) -> List[Tuple[int, int]]:
    """The sequence of near-square mesh sizes Algorithm 2's outer loop walks.

    Starting from a single switch, the schedule alternates between growing
    the column and the row dimension (1x1, 1x2, 2x2, 2x3, 3x3, ...), which is
    the standard way of growing a mesh while keeping it as square as
    possible.  The schedule stops at the last size not exceeding
    ``max_switches``.
    """
    if max_switches <= 0:
        raise TopologyError(f"max_switches must be positive, got {max_switches}")
    schedule: List[Tuple[int, int]] = []
    rows, cols = 1, 1
    while rows * cols <= max_switches:
        schedule.append((rows, cols))
        if cols == rows:
            cols += 1
        else:
            rows += 1
    return schedule
