"""Candidate-path enumeration and least-cost path selection.

The unified mapper needs, for every (source switch, destination switch)
pair, a set of candidate paths ordered by cost.  Four enumeration policies
are supported:

* ``"xy"`` — the single dimension-ordered (X then Y) path; only valid on
  meshes/tori with grid positions.  Deterministic and deadlock-free but
  offers no path diversity.
* ``"minimal"`` — all shortest paths (up to a configurable cap).  This is
  the default: Æthereal GT traffic is contention-free by construction (TDMA
  slots are reserved end-to-end), so minimal adaptive path *selection* at
  design time cannot deadlock at run time.
* ``"west_first"`` — minimal paths filtered by the west-first turn model,
  which additionally guarantees deadlock freedom for best-effort traffic.
* ``"k_shortest"`` — shortest simple paths allowing a bounded detour beyond
  the minimal hop count, for heavily loaded networks where minimal paths
  run out of slots.

Path selection combines the enumeration with the per-use-case cost function
of :meth:`repro.noc.resources.ResourceState.path_cost` and returns the
cheapest path on which the reservation is actually possible.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import RoutingError, TopologyError
from repro.noc.deadlock import is_west_first_path
from repro.noc.resources import INFEASIBLE_COST, ResourceState
from repro.noc.topology import Topology
from repro.params import MapperConfig

__all__ = ["RoutingPolicy", "PathSelector", "xy_path"]


class RoutingPolicy:
    """Names of the supported candidate-path enumeration policies."""

    XY = "xy"
    MINIMAL = "minimal"
    WEST_FIRST = "west_first"
    K_SHORTEST = "k_shortest"

    ALL = (XY, MINIMAL, WEST_FIRST, K_SHORTEST)


def xy_path(topology: Topology, source: int, destination: int) -> Tuple[int, ...]:
    """The dimension-ordered (X-first, then Y) path on a mesh or torus.

    Moves along the column (X) dimension first, then along the row (Y)
    dimension, which is the classic deadlock-free deterministic routing
    function for meshes.
    """
    src = topology.switch(source)
    dst = topology.switch(destination)
    if src.position is None or dst.position is None:
        raise RoutingError(
            f"XY routing needs grid positions; topology {topology.name!r} has none"
        )
    if topology.dimensions is None:
        raise RoutingError(f"XY routing needs mesh dimensions on {topology.name!r}")
    _, cols = topology.dimensions
    path = [source]
    row, col = src.position
    # X (column) dimension first.
    step = 1 if dst.col > col else -1
    while col != dst.col:
        col += step
        path.append(row * cols + col)
    # Then the Y (row) dimension.
    step = 1 if dst.row > row else -1
    while row != dst.row:
        row += step
        path.append(row * cols + col)
    for here, there in zip(path, path[1:]):
        if not topology.has_link(here, there):
            raise RoutingError(
                f"XY path {path} uses missing link ({here}, {there}) on {topology.name!r}"
            )
    return tuple(path)


def mesh_minimal_paths(
    topology: Topology,
    source: int,
    destination: int,
    limit: int,
) -> List[Tuple[int, ...]]:
    """All minimal (shortest) paths on a mesh, capped at ``limit``.

    Minimal paths on a mesh stay inside the bounding box of the endpoints
    and consist only of hops towards the destination, so they can be
    enumerated directly — far faster than generic k-shortest-path search on
    large meshes (the worst-case baseline grows meshes up to 20x20).
    """
    src = topology.switch(source)
    dst = topology.switch(destination)
    if src.position is None or dst.position is None or topology.dimensions is None:
        raise RoutingError("mesh_minimal_paths needs a grid topology")
    _, cols = topology.dimensions
    row_step = 1 if dst.row >= src.row else -1
    col_step = 1 if dst.col >= src.col else -1
    paths: List[Tuple[int, ...]] = []

    def extend(row: int, col: int, acc: List[int]) -> None:
        if len(paths) >= limit:
            return
        if row == dst.row and col == dst.col:
            paths.append(tuple(acc))
            return
        if col != dst.col:
            extend(row, col + col_step, acc + [row * cols + (col + col_step)])
        if row != dst.row:
            extend(row + row_step, col, acc + [(row + row_step) * cols + col])

    extend(src.row, src.col, [source])
    return paths


class PathSelector:
    """Enumerates and ranks candidate paths on one topology.

    The selector caches candidate-path lists per (source switch, destination
    switch) pair because the mapper asks for the same pairs many times while
    it processes flows.
    """

    def __init__(self, topology: Topology, config: MapperConfig) -> None:
        if config.routing_policy not in RoutingPolicy.ALL:
            raise RoutingError(f"unknown routing policy {config.routing_policy!r}")
        self.topology = topology
        self.config = config
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(sw.index for sw in topology.switches)
        self._graph.add_edges_from(topology.links)
        self._cache: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def candidate_paths(self, source: int, destination: int) -> Tuple[Tuple[int, ...], ...]:
        """All candidate switch paths from ``source`` to ``destination``.

        The result always contains at least one path when the pair is
        connected; for ``source == destination`` it is the single-element
        path ``(source,)``.
        """
        key = (source, destination)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.topology.switch(source)
        self.topology.switch(destination)
        if source == destination:
            paths: Tuple[Tuple[int, ...], ...] = ((source,),)
        else:
            paths = tuple(self._enumerate(source, destination))
            if not paths:
                raise RoutingError(
                    f"no path from switch {source} to switch {destination} "
                    f"on {self.topology.name!r}"
                )
        self._cache[key] = paths
        return paths

    def _enumerate(self, source: int, destination: int) -> List[Tuple[int, ...]]:
        policy = self.config.routing_policy
        limit = self.config.max_paths_per_pair
        if policy == RoutingPolicy.XY:
            return [xy_path(self.topology, source, destination)]
        grid = self.topology.kind == "mesh" and self.topology.dimensions is not None
        if grid and policy in (RoutingPolicy.MINIMAL, RoutingPolicy.WEST_FIRST):
            paths = mesh_minimal_paths(self.topology, source, destination, limit)
            if policy == RoutingPolicy.WEST_FIRST:
                filtered = [
                    path for path in paths if is_west_first_path(self.topology, path)
                ]
                paths = filtered or [xy_path(self.topology, source, destination)]
            return paths
        try:
            min_hops = nx.shortest_path_length(self._graph, source, destination)
        except nx.NetworkXNoPath:
            return []
        if policy in (RoutingPolicy.MINIMAL, RoutingPolicy.WEST_FIRST):
            max_hops = min_hops
        else:  # K_SHORTEST
            max_hops = min_hops + self.config.max_detour_hops
        paths: List[Tuple[int, ...]] = []
        generator = nx.shortest_simple_paths(self._graph, source, destination)
        for path in generator:
            if len(path) - 1 > max_hops:
                break
            candidate = tuple(path)
            if policy == RoutingPolicy.WEST_FIRST and not is_west_first_path(
                self.topology, candidate
            ):
                continue
            paths.append(candidate)
            if len(paths) >= limit:
                break
        if not paths and policy == RoutingPolicy.WEST_FIRST:
            # The turn model always admits at least the XY path.
            paths = [xy_path(self.topology, source, destination)]
        return paths

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def select_least_cost(
        self,
        state: ResourceState,
        source_core: str,
        destination_core: str,
        bandwidth: float,
        guaranteed: bool = True,
        required_slots: Optional[Tuple[int, ...]] = None,
        max_hops: Optional[int] = None,
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """The cheapest feasible path for a flow in one resource state.

        Both cores must already be attached in ``state``.  Returns
        ``(switch_path, cost)`` or ``None`` when no candidate path can carry
        the flow (insufficient bandwidth or slots, or the hop budget derived
        from the latency constraint is exceeded on every candidate).
        """
        source_switch = state.switch_of(source_core)
        destination_switch = state.switch_of(destination_core)
        if source_switch is None or destination_switch is None:
            raise RoutingError(
                f"both cores must be mapped before path selection "
                f"({source_core!r} -> {destination_core!r})"
            )
        ranked: List[Tuple[float, Tuple[int, ...]]] = []
        for path in self.candidate_paths(source_switch, destination_switch):
            if max_hops is not None and len(path) - 1 > max_hops:
                continue
            cost = state.path_cost(path, bandwidth, self.config, guaranteed=guaranteed)
            if cost != INFEASIBLE_COST:
                ranked.append((cost, path))
        ranked.sort(key=lambda item: (item[0], item[1]))
        for cost, path in ranked:
            if state.can_reserve(
                source_core,
                destination_core,
                path,
                bandwidth,
                guaranteed=guaranteed,
                required_slots=required_slots,
            ):
                return path, cost
        return None

    def clear_cache(self) -> None:
        """Drop the memoised candidate paths (rarely needed)."""
        self._cache.clear()
