"""Candidate-path enumeration and least-cost path selection.

The unified mapper needs, for every (source switch, destination switch)
pair, a set of candidate paths ordered by cost.  Four enumeration policies
are supported:

* ``"xy"`` — the single dimension-ordered (X then Y) path; only valid on
  meshes/tori with grid positions.  Deterministic and deadlock-free but
  offers no path diversity.
* ``"minimal"`` — all shortest paths (up to a configurable cap).  This is
  the default: Æthereal GT traffic is contention-free by construction (TDMA
  slots are reserved end-to-end), so minimal adaptive path *selection* at
  design time cannot deadlock at run time.
* ``"west_first"`` — minimal paths filtered by the west-first turn model,
  which additionally guarantees deadlock freedom for best-effort traffic.
* ``"k_shortest"`` — shortest simple paths allowing a bounded detour beyond
  the minimal hop count, for heavily loaded networks where minimal paths
  run out of slots.

Path selection combines the enumeration with the per-use-case cost function
of :meth:`repro.noc.resources.ResourceState.path_cost` and returns the
cheapest path on which the reservation is actually possible.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import RoutingError, TopologyError
from repro.noc.deadlock import is_west_first_path
from repro.noc.resources import INFEASIBLE_COST, ResourceState
from repro.noc.topology import Topology
from repro.params import MapperConfig

__all__ = ["RoutingPolicy", "PathSelector", "xy_path"]


class RoutingPolicy:
    """Names of the supported candidate-path enumeration policies."""

    XY = "xy"
    MINIMAL = "minimal"
    WEST_FIRST = "west_first"
    K_SHORTEST = "k_shortest"

    ALL = (XY, MINIMAL, WEST_FIRST, K_SHORTEST)


def xy_path(topology: Topology, source: int, destination: int) -> Tuple[int, ...]:
    """The dimension-ordered (X-first, then Y) path on a mesh or torus.

    Moves along the column (X) dimension first, then along the row (Y)
    dimension, which is the classic deadlock-free deterministic routing
    function for meshes.
    """
    src = topology.switch(source)
    dst = topology.switch(destination)
    if src.position is None or dst.position is None:
        raise RoutingError(
            f"XY routing needs grid positions; topology {topology.name!r} has none"
        )
    if topology.dimensions is None:
        raise RoutingError(f"XY routing needs mesh dimensions on {topology.name!r}")
    _, cols = topology.dimensions
    path = [source]
    row, col = src.position
    # X (column) dimension first.
    step = 1 if dst.col > col else -1
    while col != dst.col:
        col += step
        path.append(row * cols + col)
    # Then the Y (row) dimension.
    step = 1 if dst.row > row else -1
    while row != dst.row:
        row += step
        path.append(row * cols + col)
    for here, there in zip(path, path[1:]):
        if not topology.has_link(here, there):
            raise RoutingError(
                f"XY path {path} uses missing link ({here}, {there}) on {topology.name!r}"
            )
    return tuple(path)


#: Relative minimal-path cache: ``(Δrow, Δcol, limit) -> step sequences``.
#: Minimal paths on a mesh are translation-invariant — they depend only on
#: the offset between the endpoints — so the enumeration is done once per
#: offset (for any topology size, any mapper, any outer-loop attempt) and
#: instantiated per concrete pair with integer arithmetic.
_RELATIVE_STEPS_CACHE: Dict[Tuple[int, int, int], Tuple[Tuple[Tuple[int, int], ...], ...]] = {}


def _relative_minimal_steps(
    drow: int, dcol: int, limit: int
) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """Minimal step sequences from (0, 0) to (Δrow, Δcol), capped at ``limit``.

    Each sequence is a tuple of (row offset, col offset) waypoints starting
    at (0, 0).  Enumeration is an iterative depth-first walk (column steps
    explored before row steps, matching the historical recursive order) so
    that deep recursion and per-call list copies are avoided on large
    meshes.
    """
    key = (drow, dcol, limit)
    cached = _RELATIVE_STEPS_CACHE.get(key)
    if cached is not None:
        return cached
    row_step = 1 if drow >= 0 else -1
    col_step = 1 if dcol >= 0 else -1
    paths: List[Tuple[Tuple[int, int], ...]] = []
    stack: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]] = [(0, 0, ((0, 0),))]
    while stack and len(paths) < limit:
        row, col, acc = stack.pop()
        if row == drow and col == dcol:
            paths.append(acc)
            continue
        # Pushed in reverse so the column branch is explored first.
        if row != drow:
            nxt = row + row_step
            stack.append((nxt, col, acc + ((nxt, col),)))
        if col != dcol:
            nxt = col + col_step
            stack.append((row, nxt, acc + ((row, nxt),)))
    result = tuple(paths)
    _RELATIVE_STEPS_CACHE[key] = result
    return result


def mesh_minimal_paths(
    topology: Topology,
    source: int,
    destination: int,
    limit: int,
) -> List[Tuple[int, ...]]:
    """All minimal (shortest) paths on a mesh, capped at ``limit``.

    Minimal paths on a mesh stay inside the bounding box of the endpoints
    and consist only of hops towards the destination, so they can be
    enumerated directly — far faster than generic k-shortest-path search on
    large meshes (the worst-case baseline grows meshes up to 20x20).  The
    enumeration itself is translation-invariant and served from a
    process-wide relative-offset cache.
    """
    src = topology.switch(source)
    dst = topology.switch(destination)
    if src.position is None or dst.position is None or topology.dimensions is None:
        raise RoutingError("mesh_minimal_paths needs a grid topology")
    _, cols = topology.dimensions
    steps = _relative_minimal_steps(dst.row - src.row, dst.col - src.col, limit)
    base_row, base_col = src.position
    paths = [
        tuple((base_row + dr) * cols + (base_col + dc) for dr, dc in path)
        for path in steps
    ]
    if topology.has_failures:
        # A degraded mesh keeps its grid shape but not all its links: only
        # paths whose every hop survived are candidates.  (Endpoint switches
        # being down is covered too — a downed switch has no links.)
        paths = [
            path for path in paths
            if all(topology.has_link(here, there)
                   for here, there in zip(path, path[1:]))
        ]
    return paths


class PathSelector:
    """Enumerates and ranks candidate paths on one topology.

    The selector caches candidate-path lists per (source switch, destination
    switch) pair because the mapper asks for the same pairs many times while
    it processes flows.
    """

    def __init__(self, topology: Topology, config: MapperConfig) -> None:
        if config.routing_policy not in RoutingPolicy.ALL:
            raise RoutingError(f"unknown routing policy {config.routing_policy!r}")
        self.topology = topology
        self.config = config
        self._lazy_graph: Optional[nx.DiGraph] = None
        self._cache: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}

    @property
    def _graph(self) -> nx.DiGraph:
        # Built on first use: grid topologies with minimal routing (the
        # common case) never touch the generic graph, so each outer-loop
        # topology attempt skips the construction cost entirely.
        if self._lazy_graph is None:
            graph = nx.DiGraph()
            graph.add_nodes_from(sw.index for sw in self.topology.switches)
            graph.add_edges_from(self.topology.links)
            self._lazy_graph = graph
        return self._lazy_graph

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def candidate_paths(self, source: int, destination: int) -> Tuple[Tuple[int, ...], ...]:
        """All candidate switch paths from ``source`` to ``destination``.

        The result always contains at least one path when the pair is
        connected; for ``source == destination`` it is the single-element
        path ``(source,)``.
        """
        key = (source, destination)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.topology.switch(source)
        self.topology.switch(destination)
        if source == destination:
            paths: Tuple[Tuple[int, ...], ...] = ((source,),)
        else:
            paths = tuple(self._enumerate(source, destination))
            if not paths:
                raise RoutingError(
                    f"no path from switch {source} to switch {destination} "
                    f"on {self.topology.name!r}"
                )
        self._cache[key] = paths
        return paths

    def _enumerate(self, source: int, destination: int) -> List[Tuple[int, ...]]:
        policy = self.config.routing_policy
        limit = self.config.max_paths_per_pair
        if policy == RoutingPolicy.XY:
            return [xy_path(self.topology, source, destination)]
        grid = self.topology.kind == "mesh" and self.topology.dimensions is not None
        if grid and policy in (RoutingPolicy.MINIMAL, RoutingPolicy.WEST_FIRST):
            paths = mesh_minimal_paths(self.topology, source, destination, limit)
            if policy == RoutingPolicy.WEST_FIRST:
                filtered = [
                    path for path in paths if is_west_first_path(self.topology, path)
                ]
                if filtered:
                    paths = filtered
                else:
                    try:
                        paths = [xy_path(self.topology, source, destination)]
                    except RoutingError:
                        # On a degraded mesh even the XY path may be broken.
                        paths = []
            if paths or not self.topology.has_failures:
                return paths
            # Every minimal grid path hits a failed resource: fall through to
            # the generic search, which sees only surviving links and may
            # find a (non-minimal) detour around the failure.
        try:
            min_hops = nx.shortest_path_length(self._graph, source, destination)
        except nx.NetworkXNoPath:
            return []
        if policy in (RoutingPolicy.MINIMAL, RoutingPolicy.WEST_FIRST):
            max_hops = min_hops
        else:  # K_SHORTEST
            max_hops = min_hops + self.config.max_detour_hops
        paths: List[Tuple[int, ...]] = []
        generator = nx.shortest_simple_paths(self._graph, source, destination)
        for path in generator:
            if len(path) - 1 > max_hops:
                break
            candidate = tuple(path)
            if policy == RoutingPolicy.WEST_FIRST and not is_west_first_path(
                self.topology, candidate
            ):
                continue
            paths.append(candidate)
            if len(paths) >= limit:
                break
        if not paths and policy == RoutingPolicy.WEST_FIRST:
            # The turn model always admits at least the XY path — unless a
            # failure broke it, in which case the pair is simply unroutable
            # under west-first and candidate_paths reports no path.
            try:
                paths = [xy_path(self.topology, source, destination)]
            except RoutingError:
                paths = []
        return paths

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def select_least_cost(
        self,
        state: ResourceState,
        source_core: str,
        destination_core: str,
        bandwidth: float,
        guaranteed: bool = True,
        required_slots: Optional[Tuple[int, ...]] = None,
        max_hops: Optional[int] = None,
    ) -> Optional[Tuple[Tuple[int, ...], float]]:
        """The cheapest feasible path for a flow in one resource state.

        Both cores must already be attached in ``state``.  Returns
        ``(switch_path, cost)`` or ``None`` when no candidate path can carry
        the flow (insufficient bandwidth or slots, or the hop budget derived
        from the latency constraint is exceeded on every candidate).
        """
        source_switch = state.switch_of(source_core)
        destination_switch = state.switch_of(destination_core)
        if source_switch is None or destination_switch is None:
            raise RoutingError(
                f"both cores must be mapped before path selection "
                f"({source_core!r} -> {destination_core!r})"
            )
        ranked: List[Tuple[float, Tuple[int, ...]]] = []
        for path in self.candidate_paths(source_switch, destination_switch):
            if max_hops is not None and len(path) - 1 > max_hops:
                continue
            cost = state.path_cost(path, bandwidth, self.config, guaranteed=guaranteed)
            if cost != INFEASIBLE_COST:
                ranked.append((cost, path))
        if not ranked:
            return None
        # The cheapest candidate is almost always reservable; try it before
        # paying for a full sort of the ranking.
        best_cost, best_path = min(ranked)
        if state.can_reserve(
            source_core,
            destination_core,
            best_path,
            bandwidth,
            guaranteed=guaranteed,
            required_slots=required_slots,
        ):
            return best_path, best_cost
        ranked.sort()
        for cost, path in ranked[1:]:
            if state.can_reserve(
                source_core,
                destination_core,
                path,
                bandwidth,
                guaranteed=guaranteed,
                required_slots=required_slots,
            ):
                return path, cost
        return None

    def clear_cache(self) -> None:
        """Drop the memoised candidate paths (rarely needed)."""
        self._cache.clear()
