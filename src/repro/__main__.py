"""``python -m repro`` — the command-line entry point of the jobs API."""

import sys

from repro.jobs.cli import main

if __name__ == "__main__":
    sys.exit(main())
