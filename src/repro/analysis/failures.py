"""Failure-sweep analysis: which single failures break schedulability.

Enumerates every single link (undirected — both directions fail together)
and every single switch failure of a baseline mapping's topology, repairs
the baseline around each (:func:`repro.core.repair.repair_mapping`), and
reports per failure whether the design stays schedulable, how many groups
had to be remapped, and at what cost.  Optionally the sweep is repeated at
several operating points (NoC clock frequencies), reproducing the paper's
frequency-axis analyses for the degraded topologies.

``python -m repro failures`` is the CLI front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import MappingEngine
from repro.core.repair import repair_mapping
from repro.core.result import MappingResult
from repro.noc.failures import FailureSet
from repro.noc.topology import Topology

__all__ = [
    "FailureSweepRow",
    "TrafficSweepRow",
    "single_link_failures",
    "single_switch_failures",
    "failure_sweep",
    "traffic_sweep",
]


def single_link_failures(topology: Topology) -> List[FailureSet]:
    """One failure set per undirected link (both directions down together)."""
    seen = set()
    failures: List[FailureSet] = []
    for source, destination in topology.links:
        key = (min(source, destination), max(source, destination))
        if key in seen:
            continue
        seen.add(key)
        failures.append(FailureSet().mark_link_down(*key))
    return failures


def single_switch_failures(topology: Topology) -> List[FailureSet]:
    """One failure set per switch."""
    return [
        FailureSet().mark_switch_down(switch.index) for switch in topology.switches
    ]


@dataclass
class FailureSweepRow:
    """Outcome of repairing the baseline around one failure."""

    failure: str
    kind: str  # "link" | "switch"
    schedulable: bool
    repaired: bool
    affected_groups: int
    groups_total: int
    displaced_cores: int
    cost_delta: Optional[float]
    unrepairable: Tuple[str, ...]
    frequency_mhz: Optional[float] = None

    def as_dict(self) -> Dict:
        document = {
            "failure": self.failure,
            "kind": self.kind,
            "schedulable": self.schedulable,
            "repaired": self.repaired,
            "affected_groups": self.affected_groups,
            "groups_total": self.groups_total,
            "displaced_cores": self.displaced_cores,
            "cost_delta": self.cost_delta,
            "unrepairable": list(self.unrepairable),
        }
        if self.frequency_mhz is not None:
            document["frequency_mhz"] = self.frequency_mhz
        return document


def _sweep_one_engine(
    engine: MappingEngine,
    use_cases,
    baseline: MappingResult,
    candidates: Sequence[Tuple[str, FailureSet]],
    groups,
    frequency_mhz: Optional[float],
) -> List[FailureSweepRow]:
    rows: List[FailureSweepRow] = []
    for kind, failures in candidates:
        outcome = repair_mapping(
            engine, use_cases, baseline, failures,
            groups=groups, compare_full_remap=True,
        )
        repaired = outcome.repaired is not None
        # A failure "breaks schedulability" only when neither the
        # incremental repair nor a from-scratch remap of the degraded
        # topology fits the design.
        schedulable = repaired or outcome.full_remap is not None
        delta = (
            None if outcome.repaired_cost is None
            else outcome.repaired_cost - outcome.baseline_cost
        )
        rows.append(
            FailureSweepRow(
                failure=failures.describe(),
                kind=kind,
                schedulable=schedulable,
                repaired=repaired,
                affected_groups=len(outcome.affected_group_ids),
                groups_total=outcome.groups_total,
                displaced_cores=len(outcome.displaced_cores),
                cost_delta=delta,
                unrepairable=outcome.unrepairable,
                frequency_mhz=frequency_mhz,
            )
        )
    return rows


def failure_sweep(
    use_cases,
    baseline: Optional[MappingResult] = None,
    engine: Optional[MappingEngine] = None,
    provision: Optional[Tuple[int, int]] = None,
    groups=None,
    include_links: bool = True,
    include_switches: bool = True,
    frequencies_mhz: Optional[Sequence[float]] = None,
) -> List[FailureSweepRow]:
    """Repair the baseline around every single link/switch failure.

    Without ``baseline``, one is computed first — on a ``provision``
    ``(rows, cols)`` mesh when given (fault tolerance needs spare capacity;
    on the minimal mesh most failures are unsurvivable by construction), or
    on the engine's minimal feasible topology otherwise.  With
    ``frequencies_mhz``, the whole sweep repeats at each operating point via
    sibling engines (:meth:`MappingEngine.with_params`).
    """
    engine = engine or MappingEngine()
    groups_arg = None if groups is None else [list(group) for group in groups]
    if baseline is None:
        if provision is not None:
            rows_, cols_ = provision
            baseline = engine.mapper.map_with_placement(
                use_cases, Topology.mesh(rows_, cols_), {},
                groups=groups_arg, validate=False,
            )
        else:
            baseline = engine.map(use_cases, groups=groups_arg)

    candidates: List[Tuple[str, FailureSet]] = []
    if include_links:
        candidates.extend(
            ("link", failures)
            for failures in single_link_failures(baseline.topology)
        )
    if include_switches:
        candidates.extend(
            ("switch", failures)
            for failures in single_switch_failures(baseline.topology)
        )

    if not frequencies_mhz:
        return _sweep_one_engine(
            engine, use_cases, baseline, candidates, groups_arg, None
        )
    rows: List[FailureSweepRow] = []
    for frequency in frequencies_mhz:
        sibling = engine.with_params(
            engine.params.with_frequency(frequency * 1e6)
        )
        rows.extend(
            _sweep_one_engine(
                sibling, use_cases, baseline, candidates, groups_arg, frequency
            )
        )
    return rows


@dataclass
class TrafficSweepRow:
    """Outcome of splice-repairing the baseline at one traffic scale."""

    scale: float
    schedulable: bool
    repaired: bool
    changed_use_cases: int
    affected_groups: int
    groups_total: int
    cost_delta: Optional[float]
    unrepairable: Tuple[str, ...]

    def as_dict(self) -> Dict:
        return {
            "scale": self.scale,
            "schedulable": self.schedulable,
            "repaired": self.repaired,
            "changed_use_cases": self.changed_use_cases,
            "affected_groups": self.affected_groups,
            "groups_total": self.groups_total,
            "cost_delta": self.cost_delta,
            "unrepairable": list(self.unrepairable),
        }


def traffic_sweep(
    use_cases,
    scales: Sequence[float] = (1.0, 1.25, 1.5, 2.0),
    baseline: Optional[MappingResult] = None,
    engine: Optional[MappingEngine] = None,
    provision: Optional[Tuple[int, int]] = None,
    groups=None,
) -> List[TrafficSweepRow]:
    """Bandwidth-headroom analysis: how much traffic growth a mapping absorbs.

    For each scale factor, every flow's bandwidth is re-characterised to
    ``scale ×`` its design value (:func:`repro.ops.events.apply_traffic`)
    and the baseline is splice-repaired around the change — only groups
    containing a re-characterised use case are re-evaluated, exactly the
    path a live :class:`~repro.ops.monitor.Monitor` traffic event takes.
    A row is schedulable when either the splice or a from-scratch remap of
    the (unchanged) topology still fits; the first unschedulable scale is
    the deployment's traffic headroom limit.  Scale ``1.0`` is the no-op
    control row: zero changed use cases, zero affected groups.
    """
    from repro.ops.events import apply_traffic

    engine = engine or MappingEngine()
    groups_arg = None if groups is None else [list(group) for group in groups]
    if baseline is None:
        if provision is not None:
            rows_, cols_ = provision
            baseline = engine.mapper.map_with_placement(
                use_cases, Topology.mesh(rows_, cols_), {},
                groups=groups_arg, validate=False,
            )
        else:
            baseline = engine.map(use_cases, groups=groups_arg)

    rows: List[TrafficSweepRow] = []
    for scale in scales:
        overrides = {
            (use_case.name, flow.source, flow.destination):
                flow.bandwidth * float(scale)
            for use_case in use_cases
            for flow in use_case.flows
        }
        recharacterised, changed = apply_traffic(use_cases, overrides)
        outcome = repair_mapping(
            engine, recharacterised, baseline, FailureSet(),
            groups=groups_arg, compare_full_remap=True,
            changed_use_cases=changed,
        )
        repaired = outcome.repaired is not None
        delta = (
            None if outcome.repaired_cost is None
            else outcome.repaired_cost - outcome.baseline_cost
        )
        rows.append(
            TrafficSweepRow(
                scale=float(scale),
                schedulable=repaired or outcome.full_remap is not None,
                repaired=repaired,
                changed_use_cases=len(outcome.changed_use_cases),
                affected_groups=len(outcome.affected_group_ids),
                groups_total=outcome.groups_total,
                cost_delta=delta,
                unrepairable=outcome.unrepairable,
            )
        )
    return rows
