"""Minimum-frequency searches.

Two related questions come up in the evaluation:

* **Figure 7c** — how fast must the NoC run to support ``k`` use-cases in
  parallel?  The answer is the lowest frequency at which the (compound)
  use-case set still maps onto an admissible topology.
* **DVS/DFS (§6.4)** — how slow may the NoC run while one particular
  use-case is active?  That cheaper, per-use-case question is answered
  analytically in :mod:`repro.power.dvfs`; this module answers the global
  design-time question by re-running the mapper over a frequency grid.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.core.engine import MappingEngine
from repro.core.usecase import UseCaseSet
from repro.exceptions import MappingError
from repro.params import MapperConfig, NoCParameters
from repro.units import mhz

__all__ = ["default_frequency_grid", "minimum_design_frequency"]


def default_frequency_grid() -> Tuple[float, ...]:
    """Candidate NoC frequencies from 100 MHz to 2 GHz in realistic steps."""
    values = list(range(100, 1000, 50)) + list(range(1000, 2001, 100))
    return tuple(mhz(value) for value in values)


def minimum_design_frequency(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    frequencies: Sequence[float] | None = None,
    groups=None,
    max_switches: Optional[int] = None,
    engine: MappingEngine | None = None,
) -> Optional[float]:
    """Lowest frequency of the grid at which the design can be mapped.

    Parameters
    ----------
    max_switches:
        Optionally restrict the topology search (e.g. to the switch count of
        an already-chosen NoC) so the answer is "how fast must *this* NoC
        run", not "how fast must some NoC run".
    engine:
        Optional :class:`MappingEngine` whose compiled-spec caches the grid
        walk should share (its params/config serve as the defaults).

    Returns the frequency in Hz, or ``None`` when even the fastest grid
    point cannot support the constraints.

    The specification is compiled once: every grid point maps through a
    sibling engine that shares the compiled spec and requirement caches and
    only swaps the operating point.
    """
    base = engine or MappingEngine(params=params, config=config)
    base_params = params or base.params
    base_config = config or base.config
    if max_switches is not None:
        base_config = replace(base_config, max_switches=max_switches)
    grid = sorted(frequencies or default_frequency_grid())
    for frequency in grid:
        point = base.with_params(
            params=base_params.with_frequency(frequency), config=base_config
        )
        try:
            point.map(use_cases, groups=groups)
        except MappingError:
            continue
        return frequency
    return None
