"""Comparison metrics between the proposed method and the worst-case baseline.

The paper's primary quality metric is the number of switches of the smallest
mesh that satisfies every use-case (Figure 6 reports the proposed method's
switch count normalised to the WC method's).  Secondary metrics derived from
it are the total switch area and the NoC power, which feed the headline
"80 % smaller, 54 % less power" claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.core.switching import SwitchingGraph
from repro.core.usecase import UseCaseSet
from repro.exceptions import MappingError
from repro.params import MapperConfig, NoCParameters
from repro.power.area import AreaModel
from repro.power.dvfs import DvfsAnalysis
from repro.power.energy import PowerModel

__all__ = ["MethodComparison", "compare_methods"]


@dataclass
class MethodComparison:
    """Side-by-side result of the proposed method and the WC baseline."""

    design: str
    unified: Optional[MappingResult]
    worst_case: Optional[MappingResult]
    unified_area_mm2: float = float("nan")
    worst_case_area_mm2: float = float("nan")
    #: optimal mapping from the exact backend; only populated when
    #: :func:`compare_methods` is called with ``exact=True``
    exact: Optional[MappingResult] = None

    @property
    def unified_switches(self) -> Optional[int]:
        """Switch count of the proposed method (None when it failed)."""
        return None if self.unified is None else self.unified.switch_count

    @property
    def worst_case_switches(self) -> Optional[int]:
        """Switch count of the WC baseline (None when it failed)."""
        return None if self.worst_case is None else self.worst_case.switch_count

    @property
    def normalized_switch_count(self) -> Optional[float]:
        """Proposed-method switches / WC switches (Figure 6's y-axis).

        ``None`` when either method failed to produce a mapping — the paper
        likewise omits the points where the WC method fails.
        """
        if self.unified is None or self.worst_case is None:
            return None
        return self.unified.switch_count / self.worst_case.switch_count

    @property
    def area_reduction(self) -> Optional[float]:
        """Fractional switch-area reduction of the proposed method vs. WC."""
        if self.unified is None or self.worst_case is None:
            return None
        if self.worst_case_area_mm2 <= 0:
            return None
        return 1.0 - self.unified_area_mm2 / self.worst_case_area_mm2

    @property
    def exact_switches(self) -> Optional[int]:
        """Switch count of the exact backend (None when not run / failed)."""
        return None if self.exact is None else self.exact.switch_count

    @property
    def optimality_gap(self) -> Optional[float]:
        """Relative communication-cost gap of the proposed method vs. exact.

        ``(unified_cost - exact_cost) / exact_cost``; 0.0 when the heuristic
        matched the optimum (or both costs are zero).  ``None`` unless
        :func:`compare_methods` ran with ``exact=True`` and both mapped.
        """
        if self.unified is None or self.exact is None:
            return None
        exact_cost = _communication_cost(self.exact)
        if exact_cost == 0:
            return 0.0 if _communication_cost(self.unified) == 0 else None
        return (_communication_cost(self.unified) - exact_cost) / exact_cost

    def as_row(self) -> dict:
        """Plain-dict row for reports and the benchmark harness.

        The exact-backend columns appear only when the comparison was run
        with ``exact=True``, so rows from ordinary comparisons are unchanged.
        """
        row = {
            "design": self.design,
            "unified_switches": self.unified_switches,
            "worst_case_switches": self.worst_case_switches,
            "normalized_switch_count": self.normalized_switch_count,
            "unified_area_mm2": round(self.unified_area_mm2, 3)
            if self.unified is not None
            else None,
            "worst_case_area_mm2": round(self.worst_case_area_mm2, 3)
            if self.worst_case is not None
            else None,
            "area_reduction": self.area_reduction,
        }
        if self.exact is not None:
            gap = self.optimality_gap
            row["exact_switches"] = self.exact_switches
            row["optimality_gap"] = None if gap is None else round(gap, 6)
        return row


def _communication_cost(result: MappingResult) -> float:
    """Bandwidth-weighted hop count of a mapping (the exact objective)."""
    cached = getattr(result, "cached_communication_cost", None)
    if cached is not None:
        return cached
    return sum(
        configuration.total_bandwidth_hops()
        for configuration in result.configurations.values()
    )


def compare_methods(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    switching_graph: Optional[SwitchingGraph] = None,
    area_model: AreaModel | None = None,
    design_name: Optional[str] = None,
    engine: MappingEngine | None = None,
    exact: bool = False,
    exact_solver: str = "auto",
) -> MethodComparison:
    """Run both mapping methods on one design and compare them.

    A method that cannot produce a valid mapping within the configured
    topology limit is recorded as ``None`` (this happens to the WC baseline
    on the large synthetic benchmarks, as in the paper).

    With ``exact=True`` the exact backend (:mod:`repro.optimize.ilp`) also
    runs, populating :attr:`MethodComparison.exact` and the derived
    :attr:`~MethodComparison.optimality_gap`.  Exact search is exponential
    in the core count — reserve it for small/medium designs.

    Both methods run on one :class:`MappingEngine` session, so the design is
    compiled once and shared; pass a long-lived ``engine`` (its
    params/config then apply) to share compilation and results across many
    comparisons, as the sweep drivers do.
    """
    engine = engine or MappingEngine(params=params, config=config)
    model = area_model or AreaModel()
    name = design_name or use_cases.name

    try:
        unified = engine.map(use_cases, switching_graph=switching_graph)
    except MappingError:
        unified = None
    try:
        worst_case = engine.worst_case(use_cases)
    except MappingError:
        worst_case = None

    comparison = MethodComparison(design=name, unified=unified, worst_case=worst_case)
    if unified is not None:
        comparison.unified_area_mm2 = model.mapping_area(unified)
    if worst_case is not None:
        comparison.worst_case_area_mm2 = model.mapping_area(worst_case)
    if exact:
        from repro.optimize.ilp import exact_mapping

        try:
            comparison.exact = exact_mapping(
                use_cases, engine=engine, switching_graph=switching_graph,
                solver=exact_solver,
            )
        except MappingError:
            comparison.exact = None
    return comparison
