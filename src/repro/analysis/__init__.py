"""Analysis utilities: metrics, frequency search and experiment sweeps.

* :mod:`repro.analysis.metrics` — switch-count / area / power comparisons
  between the proposed method and the worst-case baseline.
* :mod:`repro.analysis.frequency` — minimum-frequency searches (used by the
  parallel-use-case study of Figure 7c).
* :mod:`repro.analysis.sweeps` — the experiment drivers behind every figure
  of the evaluation section; the benchmark harness calls these.
* :mod:`repro.analysis.failures` — single-failure sweeps over a baseline
  mapping: which link/switch failures break schedulability, per operating
  point (``python -m repro failures``) — plus the traffic-headroom sweep
  (how much uniform bandwidth growth the splice-repair path absorbs).
"""

from repro.analysis.failures import (
    FailureSweepRow,
    TrafficSweepRow,
    failure_sweep,
    single_link_failures,
    single_switch_failures,
    traffic_sweep,
)
from repro.analysis.metrics import MethodComparison, compare_methods
from repro.analysis.frequency import minimum_design_frequency
from repro.analysis.sweeps import (
    SweepRow,
    headline_summary,
    normalized_switch_count_study,
    parallel_use_case_study,
    use_case_count_sweep,
    ablation_flow_ordering,
    ablation_grouping,
    ablation_routing_policy,
    ablation_slot_table_size,
)

__all__ = [
    "FailureSweepRow",
    "TrafficSweepRow",
    "failure_sweep",
    "single_link_failures",
    "single_switch_failures",
    "traffic_sweep",
    "MethodComparison",
    "compare_methods",
    "minimum_design_frequency",
    "SweepRow",
    "normalized_switch_count_study",
    "use_case_count_sweep",
    "headline_summary",
    "parallel_use_case_study",
    "ablation_flow_ordering",
    "ablation_grouping",
    "ablation_routing_policy",
    "ablation_slot_table_size",
]
