"""Experiment drivers for every figure of the paper's evaluation section.

Each function here corresponds to one figure (or to the ablation studies the
design decisions call for) and returns plain rows of data; the benchmark
harness in ``benchmarks/`` and the report writer in :mod:`repro.io.report`
print them in the same form the paper plots them.

| Function                          | Paper figure                          |
|-----------------------------------|---------------------------------------|
| ``normalized_switch_count_study`` | Figure 6(a) — SoC designs D1-D4       |
| ``use_case_count_sweep``          | Figures 6(b)/(c) — Sp / Bot sweeps    |
| ``headline_summary``              | §6.2 headline (80 % area, 54 % power) |
| ``parallel_use_case_study``       | Figure 7(c) — parallel use-cases      |
| ``ablation_*``                    | §5 design-choice ablations            |
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.frequency import minimum_design_frequency
from repro.analysis.metrics import MethodComparison, compare_methods
from repro.core.compound import CompoundModeSpec, generate_compound_modes
from repro.core.engine import MappingEngine
from repro.core.usecase import UseCaseSet
from repro.gen.soc import standard_designs
from repro.gen.synthetic import generate_benchmark
from repro.params import MapperConfig, NoCParameters
from repro.power.dvfs import DvfsAnalysis

__all__ = [
    "SweepRow",
    "normalized_switch_count_study",
    "use_case_count_sweep",
    "headline_summary",
    "parallel_use_case_study",
    "ablation_flow_ordering",
    "ablation_grouping",
    "ablation_routing_policy",
    "ablation_slot_table_size",
]


@dataclass
class SweepRow:
    """One row of an experiment sweep (one design / parameter point)."""

    label: str
    values: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.values[key]

    def as_dict(self) -> Dict[str, object]:
        """The row as a flat dictionary including its label."""
        merged = {"label": self.label}
        merged.update(self.values)
        return merged


# --------------------------------------------------------------------------- #
# Figure 6(a): SoC designs
# --------------------------------------------------------------------------- #
def normalized_switch_count_study(
    designs: Optional[Mapping[str, UseCaseSet]] = None,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Normalised switch count of the proposed method vs. WC for D1-D4.

    All design points run on one engine session, so each design is compiled
    once and shared between the unified and worst-case methods (and with any
    other study handed the same engine).
    """
    if designs is None:
        designs = {name: design.use_cases for name, design in standard_designs().items()}
    engine = engine or MappingEngine(params=params, config=config)
    rows: List[SweepRow] = []
    for name, use_cases in designs.items():
        comparison = compare_methods(use_cases, design_name=name, engine=engine)
        rows.append(SweepRow(label=name, values=comparison.as_row()))
    return rows


# --------------------------------------------------------------------------- #
# Figures 6(b) and 6(c): synthetic benchmark sweeps
# --------------------------------------------------------------------------- #
def use_case_count_sweep(
    kind: str,
    use_case_counts: Sequence[int] = (2, 5, 10, 15, 20),
    core_count: int = 20,
    seed: int = 3,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Normalised switch count vs. number of use-cases for Sp or Bot benchmarks."""
    engine = engine or MappingEngine(params=params, config=config)
    rows: List[SweepRow] = []
    for count in use_case_counts:
        use_cases = generate_benchmark(kind, count, core_count=core_count, seed=seed)
        comparison = compare_methods(
            use_cases, design_name=f"{kind}-{count}uc", engine=engine,
        )
        values = comparison.as_row()
        values["use_cases"] = count
        rows.append(SweepRow(label=f"{kind}-{count}uc", values=values))
    return rows


# --------------------------------------------------------------------------- #
# §6.2 / §6.4 headline numbers
# --------------------------------------------------------------------------- #
def headline_summary(
    designs: Optional[Mapping[str, UseCaseSet]] = None,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> Dict[str, object]:
    """Average area reduction vs. WC and average DVS/DFS power saving.

    Mirrors the abstract's headline claims (80 % average NoC area reduction,
    54 % average power reduction).  Designs on which the WC baseline fails
    outright are excluded from the area average (the reduction there is
    effectively unbounded) but still contribute to the DVS/DFS average.
    """
    if designs is None:
        designs = {name: design.use_cases for name, design in standard_designs().items()}
    engine = engine or MappingEngine(params=params, config=config)
    area_reductions: List[float] = []
    dvfs_savings: List[float] = []
    per_design: Dict[str, Dict[str, object]] = {}
    analysis = DvfsAnalysis()
    for name, use_cases in designs.items():
        comparison = compare_methods(use_cases, design_name=name, engine=engine)
        entry: Dict[str, object] = comparison.as_row()
        if comparison.area_reduction is not None:
            area_reductions.append(comparison.area_reduction)
        if comparison.unified is not None:
            dvfs = analysis.analyze(comparison.unified)
            entry["dvfs_savings_percent"] = round(dvfs.savings_percent, 1)
            dvfs_savings.append(dvfs.savings)
        per_design[name] = entry
    return {
        "designs": per_design,
        "average_area_reduction_percent": (
            round(100.0 * sum(area_reductions) / len(area_reductions), 1)
            if area_reductions
            else None
        ),
        "average_dvfs_savings_percent": (
            round(100.0 * sum(dvfs_savings) / len(dvfs_savings), 1)
            if dvfs_savings
            else None
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 7(c): frequency cost of parallel use-cases
# --------------------------------------------------------------------------- #
def parallel_use_case_study(
    parallelism_levels: Sequence[int] = (1, 2, 3, 4),
    use_case_count: int = 10,
    core_count: int = 20,
    seed: int = 3,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    max_switches: Optional[int] = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Required NoC frequency as more use-cases of an Sp benchmark run in parallel.

    For parallelism level ``k`` the first ``k`` use-cases of the benchmark
    are declared parallel; the compound mode generated from them (plus the
    remaining use-cases) must be supported, and the study reports the lowest
    frequency at which that succeeds.  ``max_switches`` (default: just
    enough switches for the core count) pins the topology size so the study
    isolates the frequency cost, as the paper's figure does.
    """
    base = generate_benchmark("spread", use_case_count, core_count=core_count, seed=seed)
    engine = engine or MappingEngine(params=params, config=config)
    base_params = params or engine.params
    base_config = config or engine.config
    if max_switches is None:
        per_switch = base_params.max_cores_per_switch or core_count
        minimum = -(-core_count // per_switch)  # ceil division
        max_switches = max(minimum, base_config.min_switches) + 2
    rows: List[SweepRow] = []
    for level in parallelism_levels:
        level = min(level, len(base))
        if level >= 2:
            spec = CompoundModeSpec(base.names[:level], name=f"parallel-{level}")
            expanded, _ = generate_compound_modes(base, [spec])
        else:
            expanded = base
        frequency = minimum_design_frequency(
            expanded,
            params=base_params,
            config=base_config,
            max_switches=max_switches,
            engine=engine,
        )
        rows.append(
            SweepRow(
                label=f"parallel-{level}",
                values={
                    "parallel_use_cases": level,
                    "required_frequency_mhz": None
                    if frequency is None
                    else frequency / 1e6,
                },
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Ablations of the design choices called out in DESIGN.md
# --------------------------------------------------------------------------- #
def _switches_or_none(engine: MappingEngine, use_cases: UseCaseSet, groups=None):
    result = engine.map_batch([use_cases], groups=groups)[0]
    return None if result is None else result.switch_count


def ablation_flow_ordering(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Largest-flow-first ordering (paper) vs. ignoring already-mapped endpoints."""
    engine = engine or MappingEngine(params=params, config=config)
    base = config or engine.config
    variants = {
        "prefer-mapped-endpoints": base,
        "ignore-mapped-endpoints": replace(base, prefer_mapped_endpoints=False),
    }
    return [
        SweepRow(
            label=name,
            values={"switch_count": _switches_or_none(
                engine.with_params(config=cfg), use_cases)},
        )
        for name, cfg in variants.items()
    ]


def ablation_routing_policy(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Effect of the candidate-path policy (XY vs. minimal vs. detours)."""
    engine = engine or MappingEngine(params=params, config=config)
    base = config or engine.config
    rows = []
    for policy in ("xy", "west_first", "minimal", "k_shortest"):
        point = engine.with_params(config=replace(base, routing_policy=policy))
        rows.append(
            SweepRow(label=policy,
                     values={"switch_count": _switches_or_none(point, use_cases)})
        )
    return rows


def ablation_slot_table_size(
    use_cases: UseCaseSet,
    sizes: Sequence[int] = (8, 16, 32, 64),
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Effect of the TDMA slot-table size on the achievable NoC size."""
    engine = engine or MappingEngine(params=params, config=config)
    base_params = params or engine.params
    rows = []
    for size in sizes:
        point = engine.with_params(params=replace(base_params, slot_table_size=size))
        rows.append(
            SweepRow(label=f"slots-{size}",
                     values={"slot_table_size": size,
                             "switch_count": _switches_or_none(point, use_cases)})
        )
    return rows


def ablation_grouping(
    use_cases: UseCaseSet,
    params: NoCParameters | None = None,
    config: MapperConfig | None = None,
    engine: MappingEngine | None = None,
) -> List[SweepRow]:
    """Fully re-configurable NoC vs. one shared configuration for all use-cases.

    Forcing every use-case into a single smooth-switching group makes the
    proposed method behave like the worst-case baseline (one configuration
    must absorb everything), which is the cleanest demonstration of where
    the paper's gain comes from.
    """
    engine = engine or MappingEngine(params=params, config=config)
    separate = _switches_or_none(engine, use_cases)
    shared = _switches_or_none(engine, use_cases, groups=[list(use_cases.names)])
    return [
        SweepRow(label="per-use-case-configuration", values={"switch_count": separate}),
        SweepRow(label="single-shared-configuration", values={"switch_count": shared}),
    ]
