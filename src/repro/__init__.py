"""repro — multi-use-case mapping of cores onto Networks-on-Chip.

Reproduction of S. Murali, M. Coenen, A. Radulescu, K. Goossens and
G. De Micheli, "A Methodology for Mapping Multiple Use-Cases onto Networks
on Chips", DATE 2006.

The most common entry points are re-exported at the package root:

>>> from repro import UseCase, UseCaseSet, Flow, DesignFlow, NoCParameters
>>> from repro.units import mbps
>>> uc = UseCase("video", flows=[Flow("cpu", "mem", mbps(200))])
>>> result = DesignFlow().run(UseCaseSet([uc]))
>>> result.switch_count >= 1
True
"""

from repro.core import (
    CompiledFlow,
    CompiledGroup,
    CompiledSpec,
    CompiledUseCase,
    CompoundModeSpec,
    Core,
    DesignFlow,
    DesignFlowResult,
    Flow,
    FlowAllocation,
    MapperConfig,
    MappingEngine,
    MappingResult,
    NoCParameters,
    SwitchingGraph,
    UnifiedMapper,
    UseCase,
    UseCaseConfiguration,
    UseCaseSet,
    WorstCaseMapper,
    build_worst_case_use_case,
    compile_spec,
    generate_compound_modes,
    group_use_cases,
    map_use_cases,
)
from repro.core.validate import ValidationIssue, ValidationReport, validate_mapping
from repro.exceptions import (
    ConfigurationError,
    ExactBackendUnavailable,
    MappingError,
    ReproError,
    ResourceError,
    RoutingError,
    SerializationError,
    SpecificationError,
    TopologyError,
    VerificationError,
)
from repro.noc import Topology
from repro.perf import TdmaSimulator, verify_mapping
from repro.params import MapperConfig as MapperConfig  # noqa: F401  (canonical home)
from repro.analysis import compare_methods
from repro.gen import (
    BottleneckBenchmark,
    SpreadBenchmark,
    generate_benchmark,
    set_top_box_design,
    standard_designs,
    tv_processor_design,
)
from repro.power import AreaModel, PowerModel, analyze_dvfs, area_frequency_tradeoff, noc_area
from repro.io import export_design, load_use_case_set, save_use_case_set
from repro.jobs import (
    DesignFlowJob,
    FrequencyJob,
    GapJob,
    JobCache,
    JobDirectoryService,
    JobResult,
    JobRunner,
    PortfolioRefineJob,
    RefineJob,
    SweepJob,
    UseCaseSource,
    WorstCaseJob,
    job_from_dict,
    job_hash,
    job_to_dict,
    load_jobs,
    save_job,
)
from repro.optimize import AnnealingRefiner, TabuRefiner, exact_mapping, refine_mapping

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Core",
    "Flow",
    "UseCase",
    "UseCaseSet",
    # compiled specifications and the engine session
    "CompiledFlow",
    "CompiledGroup",
    "CompiledSpec",
    "CompiledUseCase",
    "compile_spec",
    "MappingEngine",
    # methodology
    "CompoundModeSpec",
    "generate_compound_modes",
    "SwitchingGraph",
    "group_use_cases",
    "UnifiedMapper",
    "map_use_cases",
    "WorstCaseMapper",
    "build_worst_case_use_case",
    "DesignFlow",
    "DesignFlowResult",
    # results
    "MappingResult",
    "UseCaseConfiguration",
    "FlowAllocation",
    # configuration
    "NoCParameters",
    "MapperConfig",
    # substrate / analysis
    "Topology",
    "TdmaSimulator",
    "verify_mapping",
    "validate_mapping",
    "ValidationIssue",
    "ValidationReport",
    "compare_methods",
    # workload generators
    "SpreadBenchmark",
    "BottleneckBenchmark",
    "generate_benchmark",
    "set_top_box_design",
    "tv_processor_design",
    "standard_designs",
    # power / area
    "AreaModel",
    "PowerModel",
    "analyze_dvfs",
    "area_frequency_tradeoff",
    "noc_area",
    # io
    "export_design",
    "save_use_case_set",
    "load_use_case_set",
    # jobs API (the declarative front door; see repro.jobs)
    "UseCaseSource",
    "DesignFlowJob",
    "WorstCaseJob",
    "RefineJob",
    "PortfolioRefineJob",
    "FrequencyJob",
    "SweepJob",
    "GapJob",
    "JobRunner",
    "JobResult",
    "JobCache",
    "JobDirectoryService",
    "job_to_dict",
    "job_from_dict",
    "job_hash",
    "save_job",
    "load_jobs",
    # refinement / exact backend
    "AnnealingRefiner",
    "TabuRefiner",
    "refine_mapping",
    "exact_mapping",
    # exceptions
    "ReproError",
    "SpecificationError",
    "TopologyError",
    "RoutingError",
    "ResourceError",
    "MappingError",
    "ConfigurationError",
    "ExactBackendUnavailable",
    "VerificationError",
    "SerializationError",
]
