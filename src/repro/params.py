"""Operating-point and algorithm parameters shared across the library.

Two parameter objects configure everything:

* :class:`NoCParameters` — the *physical* operating point of the network:
  clock frequency, link width, TDMA slot-table size and the per-switch core
  attachment limit.  These are the knobs the paper fixes for the comparison
  experiments (500 MHz, 32-bit links) and sweeps for the area–frequency and
  DVS/DFS studies.
* :class:`MapperConfig` — the *algorithmic* knobs of the unified mapper:
  topology growth limits, path-enumeration policy, placement-candidate
  limits and the cost-function weights.

Both are frozen dataclasses; derive modified copies with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.units import link_capacity, mhz

__all__ = ["NoCParameters", "MapperConfig"]


def _fields_from_dict(cls, document: Dict) -> Dict:
    """Validate a plain-dict field mapping against a parameter dataclass.

    Unknown keys raise :class:`ConfigurationError` (catching typos in
    hand-written job files beats silently ignoring them); missing keys fall
    back to the dataclass defaults.
    """
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"{cls.__name__} document must be a mapping, got {type(document).__name__}"
        )
    allowed = {field.name for field in fields(cls)}
    unknown = sorted(set(document) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} field(s) {unknown}; expected a subset of "
            f"{sorted(allowed)}"
        )
    return dict(document)


@dataclass(frozen=True)
class NoCParameters:
    """Physical operating point of the Æthereal-style NoC.

    Parameters
    ----------
    frequency_hz:
        Clock frequency of switches and links.  The paper's reference point
        is 500 MHz.
    link_width_bits:
        Width of every link in bits (32 in the paper).
    slot_table_size:
        Number of TDMA slots per link slot table.
    max_cores_per_switch:
        Maximum number of cores (NIs) that may attach to one switch, or
        ``None`` for no limit.  Physical designs bound this by switch arity;
        the default of 6 NI ports per switch lets 20 cores fit on a 2x2 mesh
        (the paper's best-case result for the synthetic benchmarks) while
        still forcing multi-switch NoCs for realistic designs.
    topology_kind:
        Topology family grown by the mapper's outer loop: ``"mesh"``,
        ``"torus"`` or ``"ring"``.
    """

    frequency_hz: float = mhz(500)
    link_width_bits: int = 32
    slot_table_size: int = 32
    max_cores_per_switch: Optional[int] = 6
    topology_kind: str = "mesh"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {self.frequency_hz}")
        if self.link_width_bits <= 0:
            raise ConfigurationError(
                f"link width must be positive, got {self.link_width_bits}"
            )
        if self.slot_table_size <= 0:
            raise ConfigurationError(
                f"slot table size must be positive, got {self.slot_table_size}"
            )
        if self.max_cores_per_switch is not None and self.max_cores_per_switch <= 0:
            raise ConfigurationError(
                f"max_cores_per_switch must be positive or None, "
                f"got {self.max_cores_per_switch}"
            )
        if self.topology_kind not in ("mesh", "torus", "ring"):
            raise ConfigurationError(
                f"unsupported topology kind {self.topology_kind!r}; "
                "expected 'mesh', 'torus' or 'ring'"
            )

    @property
    def link_capacity(self) -> float:
        """Raw capacity of one directed link in bytes/s."""
        return link_capacity(self.frequency_hz, self.link_width_bits)

    @property
    def slot_bandwidth(self) -> float:
        """Bandwidth carried by a single TDMA slot in bytes/s."""
        return self.link_capacity / self.slot_table_size

    @property
    def cycle_time(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def slot_duration(self) -> float:
        """Duration of one TDMA slot in seconds (one flit transfer per slot)."""
        return self.cycle_time

    def with_frequency(self, frequency_hz: float) -> "NoCParameters":
        """A copy of these parameters at a different clock frequency."""
        return replace(self, frequency_hz=frequency_hz)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form (exact round trip via :meth:`from_dict`).

        The frequency is stored in Hz — not the reporting-friendly MHz — so
        serialising and re-loading reproduces the float bit-for-bit.
        """
        return {
            "frequency_hz": self.frequency_hz,
            "link_width_bits": self.link_width_bits,
            "slot_table_size": self.slot_table_size,
            "max_cores_per_switch": self.max_cores_per_switch,
            "topology_kind": self.topology_kind,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "NoCParameters":
        """Reconstruct parameters from their dictionary form.

        Accepts ``frequency_mhz`` as a convenience alias for hand-written
        documents; missing fields take the dataclass defaults and unknown
        fields raise :class:`ConfigurationError`.
        """
        data = dict(document)
        if "frequency_mhz" in data:
            alias = data.pop("frequency_mhz")
            data.setdefault("frequency_hz", mhz(alias))
        return cls(**_fields_from_dict(cls, data))


@dataclass(frozen=True)
class MapperConfig:
    """Algorithmic configuration of the unified multi-use-case mapper.

    Parameters
    ----------
    max_switches:
        Largest topology the outer loop of Algorithm 2 may grow to before
        declaring failure (400 = the paper's 20x20 mesh limit).
    min_switches:
        Smallest topology to start from (1 in the paper).
    routing_policy:
        Candidate-path enumeration policy; see
        :class:`repro.noc.routing.RoutingPolicy`.
    max_detour_hops:
        Extra hops beyond the minimal hop count that non-minimal routing
        policies may use.
    max_paths_per_pair:
        Cap on the number of candidate paths evaluated per switch pair.
    placement_candidates:
        Cap on the number of candidate switches considered when placing an
        unmapped core (keeps the WC baseline tractable on large meshes).
    prefer_mapped_endpoints:
        Implements the paper's tie-break of preferring flows whose source or
        destination is already mapped.
    bandwidth_weight, hop_weight, slot_weight:
        Weights of the path-cost function (residual-bandwidth pressure, hop
        count, residual-slot pressure).
    check_latency:
        Whether analytical latency bounds are enforced during path selection.
    enable_quick_infeasibility_check:
        Skip the topology growth loop entirely when a per-core access-link
        bound proves no topology of this family can ever satisfy the
        constraints (used to reproduce the paper's "WC fails even on a 20x20
        mesh" data points quickly).
    backend:
        Mapping backend: ``"heuristic"`` (the paper's unified mapper, the
        default) or ``"ilp"`` (the exact solver in
        :mod:`repro.optimize.ilp`, for small/medium specs).
    refinement:
        Optional post-mapping refinement: ``None``, ``"annealing"`` or
        ``"tabu"``.
    refinement_iterations:
        Iteration budget of the refinement pass.
    seed:
        Seed for the (only) randomised component, the refinement pass.
    """

    max_switches: int = 400
    min_switches: int = 1
    routing_policy: str = "minimal"
    max_detour_hops: int = 1
    max_paths_per_pair: int = 8
    placement_candidates: int = 16
    prefer_mapped_endpoints: bool = True
    bandwidth_weight: float = 1.0
    hop_weight: float = 1.0
    slot_weight: float = 0.5
    check_latency: bool = True
    enable_quick_infeasibility_check: bool = True
    backend: str = "heuristic"
    refinement: Optional[str] = None
    refinement_iterations: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.min_switches <= 0:
            raise ConfigurationError(
                f"min_switches must be positive, got {self.min_switches}"
            )
        if self.max_switches < self.min_switches:
            raise ConfigurationError(
                f"max_switches ({self.max_switches}) must be >= min_switches "
                f"({self.min_switches})"
            )
        if self.routing_policy not in ("xy", "minimal", "west_first", "k_shortest"):
            raise ConfigurationError(
                f"unknown routing policy {self.routing_policy!r}; expected one of "
                "'xy', 'minimal', 'west_first', 'k_shortest'"
            )
        if self.max_detour_hops < 0:
            raise ConfigurationError(
                f"max_detour_hops must be non-negative, got {self.max_detour_hops}"
            )
        if self.max_paths_per_pair <= 0:
            raise ConfigurationError(
                f"max_paths_per_pair must be positive, got {self.max_paths_per_pair}"
            )
        if self.placement_candidates <= 0:
            raise ConfigurationError(
                f"placement_candidates must be positive, got {self.placement_candidates}"
            )
        for name in ("bandwidth_weight", "hop_weight", "slot_weight"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.backend not in ("heuristic", "ilp"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected 'heuristic' or 'ilp'"
            )
        if self.refinement not in (None, "annealing", "tabu"):
            raise ConfigurationError(
                f"unknown refinement {self.refinement!r}; expected None, 'annealing' or 'tabu'"
            )
        if self.refinement_iterations < 0:
            raise ConfigurationError(
                f"refinement_iterations must be non-negative, got {self.refinement_iterations}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dictionary form (round trips via :meth:`from_dict`).

        ``backend`` is omitted at its ``"heuristic"`` default so pre-existing
        config documents — and their content hashes, which key persistent job
        and store caches — are unchanged.
        """
        document = {field.name: getattr(self, field.name) for field in fields(self)}
        if self.backend == "heuristic":
            del document["backend"]
        return document

    @classmethod
    def from_dict(cls, document: Dict) -> "MapperConfig":
        """Reconstruct a configuration from its dictionary form.

        Missing fields take the dataclass defaults; unknown fields raise
        :class:`ConfigurationError`.
        """
        return cls(**_fields_from_dict(cls, document))
