"""Post-mapping refinement of the core placement.

The paper notes (§5) that "once the initial mapping step is performed, the
solution space can be explored further by considering swapping of vertices
using simulated annealing or tabu search".  This package provides both:

* :mod:`repro.optimize.annealing` — simulated annealing over core swaps/moves.
* :mod:`repro.optimize.tabu` — tabu search over the same neighbourhood.

Both keep the topology fixed (the mapper already found the smallest feasible
one) and minimise the total communication cost — the sum over all use-cases
and flows of bandwidth × hop count — which is the first-order proxy for NoC
power.

Two layers scale the search up without changing any decision it makes:

* :mod:`repro.optimize.screen` — batched candidate screening: both
  refiners evaluate neighbour placements through a
  :class:`~repro.optimize.screen.CandidateScreen` that replays the scalar
  evaluation bit-identically on lazy per-group state, vectorising slot
  admissibility over hop-mask matrices (numpy when importable, packed
  ints otherwise).
* :mod:`repro.optimize.portfolio` — a portfolio of refinement chains with
  distinct seeds/temperatures sharing one engine-state store, reduced to
  a deterministic best-of.

A separate entry point sidesteps the heuristic+refinement pipeline
entirely: :mod:`repro.optimize.ilp` solves the core-to-switch assignment
*exactly* (PuLP/CBC when the optional ``pulp`` dependency is installed, a
pure-Python branch-and-bound otherwise) — exponential in the core count,
but the ground truth the heuristics are measured against
(``python -m repro gap``).
"""

from repro.optimize.annealing import AnnealingRefiner, RefinementResult, refine_mapping
from repro.optimize.ilp import (
    EXACT_METHOD_NAME,
    available_solvers,
    exact_mapping,
    solver_invocations,
)
from repro.optimize.screen import CandidateScreen, ScreenedCandidate
from repro.optimize.tabu import TabuRefiner

__all__ = [
    "AnnealingRefiner",
    "TabuRefiner",
    "RefinementResult",
    "refine_mapping",
    "CandidateScreen",
    "ScreenedCandidate",
    "EXACT_METHOD_NAME",
    "available_solvers",
    "exact_mapping",
    "solver_invocations",
]
