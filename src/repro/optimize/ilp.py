"""Exact mapping backend: optimal core-to-switch assignment for small specs.

The unified mapper is a heuristic; this module answers *how far from
optimal* it sits.  :func:`exact_mapping` searches the same topology growth
schedule as Algorithm 2 and, on each candidate topology, finds the
communication-cost-optimal feasible core-to-switch assignment — returning
the first (smallest) topology that admits one, exactly like the heuristic's
outer loop.  The decoded :class:`~repro.core.result.MappingResult` is
produced by the engine's fixed-placement evaluator, so it flows through the
store, fingerprint and report machinery unchanged and is judged by the same
referee (:func:`repro.core.validate.validate_mapping`) as every heuristic
result.

Two interchangeable solvers implement the per-topology optimisation:

``"pulp"``
    The rapidstream-noc-style ILP: binary assignment variables
    ``x[core, switch]``, per-switch occupancy ceilings, and the classic
    linearised quadratic objective ``sum(w_ab * hops(s, t) * z)`` with
    ``z >= x[a,s] + x[b,t] - 1``.  The hop-weighted objective is a *lower
    bound* on the true communication cost (chosen paths may detour around
    slot conflicts), so slot-table/bandwidth feasibility is enforced by
    lazy cuts: each incumbent assignment is re-evaluated exactly by
    :meth:`~repro.core.engine.MappingEngine.placement_cost` and, when
    infeasible or costlier than the bound, excluded with a no-good cut and
    re-solved until the bound certifies optimality.  Needs the optional
    ``pulp`` dependency (CBC by default); raises
    :class:`~repro.exceptions.ExactBackendUnavailable` when absent.
``"native"``
    A dependency-free best-first branch-and-bound over assignments using
    the same admissible hop-weighted lower bound and the same engine-backed
    feasibility check at the leaves.  Bit-identical costs to the ILP —
    both are exact — and the solver the test-suite oracle runs against.

``solver="auto"`` (the default) prefers ``"pulp"`` when importable and
falls back to ``"native"`` otherwise, so the backend works out of the box
on minimal installs.  Every solver search bumps a module-level invocation
counter (:func:`solver_invocations`), which is how the warm-cache tests
prove a cached :class:`~repro.jobs.GapJob` re-run performs zero solves.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.exceptions import (
    ConfigurationError,
    ExactBackendUnavailable,
    MappingError,
    TopologyError,
)
from repro.noc.topology import Topology
from repro.params import MapperConfig, NoCParameters

__all__ = [
    "EXACT_METHOD_NAME",
    "available_solvers",
    "exact_mapping",
    "solver_invocations",
]

#: ``MappingResult.method`` of exact-backend results (and the cache slot the
#: engine stores them under, separate from the heuristic ``"unified"`` runs)
EXACT_METHOD_NAME = "ilp"

#: cumulative solver searches performed in this process (never reset by the
#: library; the warm-cache tests read it before and after a cached re-run)
_SOLVER_INVOCATIONS = 0


def solver_invocations() -> int:
    """Number of exact-solver searches this process has performed."""
    return _SOLVER_INVOCATIONS


def _count_invocation() -> None:
    global _SOLVER_INVOCATIONS
    _SOLVER_INVOCATIONS += 1


def _import_pulp():
    try:
        import pulp
    except ImportError as exc:
        raise ExactBackendUnavailable(
            "the exact backend's 'pulp' solver needs the optional dependency "
            "'pulp' (pip install 'repro-noc[ilp]'); install it or pass "
            "solver='native'"
        ) from exc
    return pulp


def available_solvers() -> Tuple[str, ...]:
    """The exact solvers usable in this environment, preferred first."""
    try:
        import pulp  # noqa: F401
    except ImportError:
        return ("native",)
    return ("pulp", "native")


def _resolve_solver(solver: str) -> str:
    if solver == "auto":
        return available_solvers()[0]
    if solver == "pulp":
        _import_pulp()
        return "pulp"
    if solver == "native":
        return "native"
    raise ConfigurationError(
        f"unknown exact solver {solver!r}; expected 'auto', 'pulp' or 'native'"
    )


# --------------------------------------------------------------------------- #
# shared pre-computation
# --------------------------------------------------------------------------- #
def _pair_weights(use_case_set) -> Dict[Tuple[str, str], float]:
    """Total bandwidth between each unordered core pair, over all use-cases.

    The communication cost is ``sum(bandwidth * hops)`` over every flow of
    every use-case; hop counts depend only on the endpoint switches, so the
    cost of an assignment is bounded from below by these aggregate weights
    times the shortest inter-switch hop counts.
    """
    weights: Dict[Tuple[str, str], float] = {}
    for use_case in use_case_set:
        for flow in use_case.flows:
            pair = tuple(sorted((flow.source, flow.destination)))
            weights[pair] = weights.get(pair, 0.0) + flow.bandwidth
    return weights


def _hop_table(
    topology: Topology, alive: Sequence[int]
) -> Dict[Tuple[int, int], Optional[int]]:
    """Shortest hop counts between alive switches; ``None`` when unreachable."""
    hops: Dict[Tuple[int, int], Optional[int]] = {}
    for source in alive:
        for destination in alive:
            if destination < source:
                hops[(source, destination)] = hops[(destination, source)]
                continue
            try:
                hops[(source, destination)] = topology.shortest_hop_count(
                    source, destination
                )
            except TopologyError:
                hops[(source, destination)] = None
    return hops


def _ordered_cores(
    core_names: Sequence[str], weights: Mapping[Tuple[str, str], float]
) -> List[str]:
    """Cores by descending total incident bandwidth (name-tie-broken).

    Assigning the heaviest communicators first makes the partial lower
    bound grow quickly, which is what lets branch-and-bound prune.
    """
    incident: Dict[str, float] = {name: 0.0 for name in core_names}
    for (a, b), weight in weights.items():
        incident[a] = incident.get(a, 0.0) + weight
        incident[b] = incident.get(b, 0.0) + weight
    return sorted(core_names, key=lambda name: (-incident.get(name, 0.0), name))


# --------------------------------------------------------------------------- #
# the native branch-and-bound solver
# --------------------------------------------------------------------------- #
def _native_optimum(
    engine: MappingEngine,
    spec,
    resolved,
    topology: Topology,
    cores: Sequence[str],
    weights: Mapping[Tuple[str, str], float],
    hops: Mapping[Tuple[int, int], Optional[int]],
    alive: Sequence[int],
    limit: Optional[int],
    node_limit: Optional[int],
):
    """Best-first search over assignments; exact, no dependencies.

    Nodes are partial assignments of the (weight-ordered) core prefix,
    keyed by the admissible lower bound ``sum(w * shortest_hops)`` over the
    already-decided pairs.  Complete assignments are re-costed exactly by
    the engine (which also decides slot/bandwidth feasibility); the search
    ends when the cheapest open node cannot beat the incumbent.
    """
    _count_invocation()
    count = len(cores)
    # pair weight matrix aligned with the search order
    matrix = [[0.0] * count for _ in range(count)]
    index_of = {name: index for index, name in enumerate(cores)}
    for (a, b), weight in weights.items():
        if a in index_of and b in index_of:
            matrix[index_of[a]][index_of[b]] = weight
            matrix[index_of[b]][index_of[a]] = weight

    best_cost: Optional[float] = None
    best_placement: Optional[Dict[str, int]] = None
    heap: List[Tuple[float, Tuple[int, ...]]] = [(0.0, ())]
    nodes = 0
    while heap:
        bound, assigned = heapq.heappop(heap)
        if best_cost is not None and bound >= best_cost:
            break
        nodes += 1
        if node_limit is not None and nodes > node_limit:
            raise MappingError(
                f"exact search exceeded its node budget of {node_limit} on "
                f"{topology.name}; shrink the spec or raise node_limit"
            )
        depth = len(assigned)
        if depth == count:
            placement = dict(zip(cores, assigned))
            try:
                actual = engine.placement_cost(
                    spec, topology, placement, groups=resolved
                )
            except MappingError:
                continue
            if best_cost is None or actual < best_cost:
                best_cost = actual
                best_placement = placement
            continue
        occupancy: Dict[int, int] = {}
        for switch_index in assigned:
            occupancy[switch_index] = occupancy.get(switch_index, 0) + 1
        row = matrix[depth]
        for switch_index in alive:
            if limit is not None and occupancy.get(switch_index, 0) >= limit:
                continue
            extra = 0.0
            reachable = True
            for other in range(depth):
                weight = row[other]
                if not weight:
                    continue
                hop = hops[(switch_index, assigned[other])]
                if hop is None:
                    reachable = False
                    break
                extra += weight * hop
            if not reachable:
                continue
            child_bound = bound + extra
            if best_cost is not None and child_bound >= best_cost:
                continue
            heapq.heappush(heap, (child_bound, assigned + (switch_index,)))
    if best_cost is None:
        return None
    return best_cost, best_placement


# --------------------------------------------------------------------------- #
# the PuLP/CBC solver
# --------------------------------------------------------------------------- #
def _pulp_optimum(
    engine: MappingEngine,
    spec,
    resolved,
    topology: Topology,
    cores: Sequence[str],
    weights: Mapping[Tuple[str, str], float],
    hops: Mapping[Tuple[int, int], Optional[int]],
    alive: Sequence[int],
    limit: Optional[int],
    node_limit: Optional[int],
):
    """Linearised QAP + lazy engine-verified feasibility cuts; exact."""
    pulp = _import_pulp()
    count = len(cores)
    problem = pulp.LpProblem("exact_mapping", pulp.LpMinimize)
    x = {
        (core, switch): pulp.LpVariable(f"x_{index}_{switch}", cat="Binary")
        for index, core in enumerate(cores)
        for switch in alive
    }
    for core in cores:
        problem += pulp.lpSum(x[core, switch] for switch in alive) == 1
    if limit is not None:
        for switch in alive:
            problem += pulp.lpSum(x[core, switch] for core in cores) <= limit
    objective_terms = []
    aux = 0
    for (a, b) in sorted(weights):
        weight = weights[(a, b)]
        if weight <= 0:
            continue
        for source in alive:
            for destination in alive:
                if source == destination:
                    continue  # zero hops, zero cost
                hop = hops[(source, destination)]
                if hop is None:
                    # unreachable switch pair: forbid splitting this pair
                    # across it instead of pricing it
                    problem += x[a, source] + x[b, destination] <= 1
                    continue
                z = pulp.LpVariable(f"z_{aux}", lowBound=0)
                aux += 1
                problem += z >= x[a, source] + x[b, destination] - 1
                objective_terms.append(weight * hop * z)
    problem += pulp.lpSum(objective_terms)
    backend = pulp.PULP_CBC_CMD(msg=0)

    best_cost: Optional[float] = None
    best_placement: Optional[Dict[str, int]] = None
    solves = 0
    while True:
        _count_invocation()
        solves += 1
        if node_limit is not None and solves > node_limit:
            raise MappingError(
                f"exact ILP exceeded its solve budget of {node_limit} on "
                f"{topology.name}; shrink the spec or raise node_limit"
            )
        problem.solve(backend)
        if pulp.LpStatus[problem.status] != "Optimal":
            break
        bound = pulp.value(problem.objective) or 0.0
        if best_cost is not None and bound >= best_cost - 1e-9:
            break
        placement = {}
        for core in cores:
            for switch in alive:
                if (x[core, switch].value() or 0.0) > 0.5:
                    placement[core] = switch
                    break
        if len(placement) < count:  # pragma: no cover - solver pathology
            break
        try:
            actual = engine.placement_cost(spec, topology, placement, groups=resolved)
        except MappingError:
            actual = None
        if actual is not None and (best_cost is None or actual < best_cost):
            best_cost = actual
            best_placement = dict(placement)
            if actual <= bound + 1e-9:
                break  # the relaxation bound certifies optimality
        # exclude this assignment (infeasible, or costlier than its bound
        # because of slot-conflict detours) and re-solve
        problem += pulp.lpSum(x[core, placement[core]] for core in cores) <= count - 1
    if best_cost is None:
        return None
    return best_cost, best_placement


_SOLVERS = {"native": _native_optimum, "pulp": _pulp_optimum}


def _optimal_on_topology(
    engine, spec, resolved, topology, cores, weights, solver, node_limit
):
    """(cost, placement) of the optimal feasible assignment, or ``None``."""
    alive = [switch.index for switch in topology.alive_switches]
    if not alive:
        return None
    limit = engine.params.max_cores_per_switch
    if limit is not None and len(alive) * limit < len(cores):
        return None
    hops = _hop_table(topology, alive)
    return _SOLVERS[solver](
        engine, spec, resolved, topology, cores, weights, hops, alive,
        limit, node_limit,
    )


# --------------------------------------------------------------------------- #
# the public entry point
# --------------------------------------------------------------------------- #
def exact_mapping(
    use_cases,
    params: Optional[NoCParameters] = None,
    config: Optional[MapperConfig] = None,
    groups=None,
    switching_graph=None,
    engine: Optional[MappingEngine] = None,
    solver: str = "auto",
    node_limit: Optional[int] = None,
) -> MappingResult:
    """Map a design optimally onto the smallest feasible topology.

    Drop-in exact counterpart of :meth:`MappingEngine.map`: it walks the
    same topology growth schedule, stops at the first topology admitting a
    feasible assignment, and returns the *communication-cost-optimal*
    mapping on it, decoded through the engine's fixed-placement evaluator
    (so fingerprints, stores and reports treat it like any other result).

    Parameters
    ----------
    use_cases, groups, switching_graph:
        The design, exactly as :meth:`MappingEngine.map` takes it.
    params, config, engine:
        Either an existing engine (shares its caches and attached store) or
        the params/config to build a fresh one from.
    solver:
        ``"auto"`` (pulp when importable, else native), ``"pulp"`` or
        ``"native"``.
    node_limit:
        Optional budget on search nodes (native) / ILP re-solves (pulp);
        exceeding it raises :class:`~repro.exceptions.MappingError`.
        ``None`` (the default) means unlimited — exact backends are meant
        for small/medium specs.

    Raises
    ------
    ExactBackendUnavailable
        ``solver="pulp"`` without the optional dependency installed.
    MappingError
        No topology in the growth schedule admits a feasible assignment.
    """
    if engine is None:
        engine = MappingEngine(
            params=params or NoCParameters(), config=config or MapperConfig()
        )
    chosen = _resolve_solver(solver)
    spec = engine.compile(use_cases)
    resolved = engine.resolve_groups(spec, groups, switching_graph)
    if engine.config.enable_quick_infeasibility_check:
        bundle = engine.requirements_for(spec, resolved)
        engine.mapper._quick_infeasibility_check(bundle.requirements)
    weights = _pair_weights(spec.use_case_set)
    cores = _ordered_cores(spec.core_names, weights)
    attempted: List[str] = []
    for topology in engine.mapper._topology_schedule(len(cores)):
        attempted.append(topology.name)
        outcome = _optimal_on_topology(
            engine, spec, resolved, topology, cores, weights, chosen, node_limit
        )
        if outcome is None:
            continue
        _, placement = outcome
        result = engine.evaluate_placement(
            spec, topology, placement, groups=resolved,
            method_name=EXACT_METHOD_NAME,
        )
        result.attempted_topologies = tuple(attempted)
        return result
    raise MappingError(
        f"no topology with up to {engine.config.max_switches} switches admits "
        f"a feasible exact assignment",
        largest_topology=attempted[-1] if attempted else None,
    )
