"""Portfolio refinement: N diversified chains, one deterministic best-of.

A portfolio runs several annealing/tabu refinement chains over the *same*
design, each with a distinct seed (and, for annealing, a distinct starting
temperature), and keeps the best result.  Diversity is the whole point:
one chain's random walk gets stuck in a local minimum that another chain's
hotter schedule escapes, so at a fixed wall-clock budget the best-of-N
frontier dominates a single serial chain of the same total iteration
count.

The chains are expressed as plain :class:`~repro.jobs.spec.RefineJob`
siblings (:func:`chain_refine_jobs`) so the existing jobs machinery runs
them — serially in-process, or over the runner's ``ProcessPoolExecutor`` —
and so every chain warm-starts from the shared
:class:`~repro.jobs.store.EngineStateStore` the executions are attached
to: the initial mapping is computed once, and candidate evaluations one
chain performed are recalled (not recomputed) by every other chain that
visits the same group projection.  Chain 0 uses the refiner defaults
exactly, which is what makes a 1-chain portfolio bit-identical to the
plain refine job.

Everything here is a pure function of the portfolio spec:
:func:`reduce_best` breaks cost ties by chain index, so a fixed
(seed, chains) pair reproduces the identical winner no matter how the
chains were scheduled.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.optimize.annealing import DEFAULT_INITIAL_TEMPERATURE

__all__ = [
    "CHAIN_TEMPERATURE_FACTOR",
    "chain_refine_jobs",
    "chain_initial_temperature",
    "reduce_best",
    "chain_summary",
]

#: per-chain geometric scaling of the annealing starting temperature:
#: chain i anneals from DEFAULT × FACTOR^i, so later chains accept worse
#: intermediate moves and explore further from the initial placement
CHAIN_TEMPERATURE_FACTOR = 1.6


def chain_initial_temperature(method: str, chain_index: int) -> Optional[float]:
    """The starting temperature of one chain (``None`` = refiner default).

    Chain 0 always uses the default — that is the bit-identity anchor to
    the plain refine job — and tabu chains have no temperature at all
    (they diversify through their seeds alone).
    """
    if method != "annealing" or chain_index == 0:
        return None
    return DEFAULT_INITIAL_TEMPERATURE * CHAIN_TEMPERATURE_FACTOR ** chain_index


def chain_refine_jobs(job) -> List:
    """The portfolio's chains as plain :class:`RefineJob` siblings.

    Chain ``i`` refines with ``seed + i`` and
    :func:`chain_initial_temperature`; everything else (design, operating
    point, method, iteration budget, grouping) is shared.  Each chain is a
    self-contained job the runner can execute anywhere — in this process
    or a pool worker — and its payload is a pure function of this derived
    spec.
    """
    from repro.jobs.spec import RefineJob

    return [
        RefineJob(
            use_cases=job.use_cases,
            params=job.params,
            config=job.config,
            method=job.method,
            iterations=job.iterations,
            seed=job.seed + index,
            groups=job.groups,
            initial_temperature=chain_initial_temperature(job.method, index),
            mesh=getattr(job, "mesh", None),
        )
        for index in range(job.chains)
    ]


def reduce_best(payloads: Sequence[Dict]) -> int:
    """Index of the winning chain: lowest refined cost, ties to the lowest index.

    Chains that failed to map are skipped; if every chain failed, chain 0
    stands for the portfolio (its failure payload is the outcome).  The
    (cost, index) ordering makes the reduction deterministic for a fixed
    chain list regardless of execution order or parallelism.
    """
    best_index: Optional[int] = None
    best_cost: Optional[float] = None
    for index, payload in enumerate(payloads):
        if not payload.get("mapped"):
            continue
        cost = payload["refined_cost"]
        if best_cost is None or cost < best_cost:
            best_index, best_cost = index, cost
    return 0 if best_index is None else best_index


def chain_summary(chain_job, payload: Dict) -> Dict:
    """The deterministic per-chain record the portfolio payload carries."""
    summary = {
        "seed": chain_job.seed,
        "initial_temperature": chain_job.initial_temperature,
        "mapped": bool(payload.get("mapped")),
    }
    if summary["mapped"]:
        summary.update(
            {
                "refined_cost": payload["refined_cost"],
                "improvement": payload["improvement"],
                "accepted_moves": payload["accepted_moves"],
                "fingerprint": payload["fingerprint"],
            }
        )
    else:
        summary["error"] = payload.get("error")
    return summary
