"""Tabu-search refinement of the core placement.

Same neighbourhood and objective as the annealing refiner
(:mod:`repro.optimize.annealing`): swap the switches of two cores, keep the
topology fixed, minimise Σ bandwidth × hops subject to every use-case's
constraints.  Instead of probabilistic acceptance, the search evaluates a
sample of neighbours per iteration, moves to the best non-tabu one (even if
it is worse — that is how tabu search escapes local minima) and remembers
recently swapped core pairs in a tabu list so they are not immediately
undone.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.core.usecase import UseCaseSet
from repro.exceptions import ConfigurationError, MappingError
from repro.optimize.annealing import RefinementResult, communication_cost

__all__ = ["TabuRefiner"]


class TabuRefiner:
    """Tabu search over core-swap moves."""

    def __init__(
        self,
        iterations: int = 50,
        neighbours_per_iteration: int = 8,
        tabu_tenure: int = 10,
        seed: int = 0,
        screen: bool = True,
    ) -> None:
        if iterations < 0 or neighbours_per_iteration <= 0 or tabu_tenure < 0:
            raise ConfigurationError("invalid tabu search configuration")
        self.iterations = iterations
        self.neighbours_per_iteration = neighbours_per_iteration
        self.tabu_tenure = tabu_tenure
        self.seed = seed
        #: batch-screen each iteration's neighbour sample and skip
        #: candidates whose cost lower bound proves they cannot win the
        #: iteration (winner selection, tabu list and payload are
        #: bit-identical; ``False`` keeps the historical walk)
        self.screen = screen

    def refine(
        self,
        result: MappingResult,
        use_cases: UseCaseSet,
        groups=None,
        engine: MappingEngine | None = None,
    ) -> RefinementResult:
        """Refine the core placement of an existing mapping result."""
        rng = random.Random(self.seed)
        engine = engine or MappingEngine(params=result.params, config=result.config)
        group_spec = groups if groups is not None else [list(g) for g in result.groups]
        # Compiling validates (and freezes) the specification once; candidate
        # evaluations share the engine's requirement and evaluation caches.
        spec = engine.compile(use_cases)
        # Cost-only evaluation per sampled neighbour; the search walks
        # placements and costs alone, and only the single best placement is
        # materialised into a full result after the loop (assembly-only
        # thanks to the evaluation cache; results are pure functions of the
        # placement, so decisions are unchanged).  With screening on, each
        # iteration's whole sample is screened at once and candidates whose
        # cost lower bound already exceeds the iteration's running winner
        # are skipped without an exact evaluation — the winner, the tabu
        # list and every accepted cost are bit-identical either way.
        candidate_screen = (
            engine.screener(spec, result.topology, groups=group_spec)
            if self.screen
            else None
        )
        cores = sorted(result.core_mapping)

        current_placement = result.core_mapping
        current_cost = communication_cost(result)
        best_placement: Optional[Dict[str, int]] = None  # None = the initial
        best_cost = current_cost
        tabu: Deque[Tuple[str, str]] = deque(maxlen=self.tabu_tenure or None)
        accepted = 0

        for _ in range(self.iterations):
            if len(cores) < 2:
                break
            if candidate_screen is not None:
                winner = self._screened_iteration(
                    candidate_screen, current_placement, cores, tabu, rng
                )
                if winner is None:
                    continue
                cost, placement, move = winner
            else:
                candidates: List[Tuple[float, Dict[str, int], Tuple[str, str]]] = []
                for _ in range(self.neighbours_per_iteration):
                    first, second = rng.sample(cores, 2)
                    move = tuple(sorted((first, second)))
                    if move in tabu:
                        continue
                    placement = dict(current_placement)
                    placement[first], placement[second] = (
                        placement[second], placement[first],
                    )
                    try:
                        cost = engine.placement_cost(
                            spec, result.topology, placement, groups=group_spec,
                        )
                    except MappingError:
                        continue
                    candidates.append((cost, placement, move))
                if not candidates:
                    continue
                candidates.sort(key=lambda item: item[0])
                cost, placement, move = candidates[0]
            current_placement, current_cost = placement, cost
            tabu.append(move)
            accepted += 1
            if cost < best_cost:
                best_placement, best_cost = placement, cost
        if best_placement is None:
            best = result
        else:
            best = engine.evaluate_placement(
                spec, result.topology, best_placement, groups=group_spec,
                method_name=result.method,
            )
        return RefinementResult(
            initial=result,
            refined=best,
            initial_cost=communication_cost(result),
            refined_cost=best_cost,
            iterations=self.iterations,
            accepted_moves=accepted,
        )

    def _screened_iteration(
        self,
        candidate_screen,
        current_placement: Dict[str, int],
        cores: List[str],
        tabu,
        rng: random.Random,
    ) -> Optional[Tuple[float, Dict[str, int], Tuple[str, str]]]:
        """One tabu iteration through the batched candidate screen.

        Samples the iteration's neighbours first (consuming the rng stream
        exactly as the scalar walk does — the tabu check precedes any
        evaluation there too), batch-screens them, then evaluates in sample
        order keeping a running strict-``<`` minimum — the same winner a
        stable sort by cost selects.  A candidate is skipped without exact
        evaluation only when screening proves it cannot win: its projection
        is a known infeasibility, or its cost lower bound exceeds the
        running winner beyond any float-accumulation noise (the relative
        ``PRUNE_MARGIN``; a feasible candidate's exact cost is never below
        its lower bound by more than that).  Returns the winning
        ``(cost, placement, move)``, or ``None`` when every sampled move
        was tabu or infeasible — the scalar walk's empty-candidates case.
        """
        from repro.optimize.screen import PRUNE_MARGIN

        sampled: List[Tuple[Dict[str, int], Tuple[str, str]]] = []
        for _ in range(self.neighbours_per_iteration):
            first, second = rng.sample(cores, 2)
            move = tuple(sorted((first, second)))
            if move in tabu:
                continue
            placement = dict(current_placement)
            placement[first], placement[second] = (
                placement[second], placement[first],
            )
            sampled.append((placement, move))
        reports = candidate_screen.screen(
            [placement for placement, _move in sampled]
        )
        winner: Optional[Tuple[float, Dict[str, int], Tuple[str, str]]] = None
        for (placement, move), report in zip(sampled, reports):
            if not report.admissible:
                continue
            if (
                winner is not None
                and report.lower_bound > winner[0] + PRUNE_MARGIN * abs(winner[0])
            ):
                continue  # provably cannot beat the running winner
            cost = report.cost
            if cost is None:
                cost = candidate_screen.cost(placement)
                if cost is None:
                    continue
            if winner is None or cost < winner[0]:
                winner = (cost, placement, move)
        return winner
