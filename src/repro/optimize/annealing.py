"""Simulated-annealing refinement of the core placement.

The neighbourhood is the classic one for quadratic-assignment-style mapping
problems: swap the switches of two cores, or move one core to a switch that
still has a free NI port.  Every candidate placement is re-mapped from
scratch (path selection and slot reservation re-run) on the *same* topology,
so a candidate is only accepted if it still satisfies every use-case's
constraints; among feasible placements the total communication cost
(Σ bandwidth × hops over all use-cases) is minimised.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.mapping import UnifiedMapper
from repro.core.result import MappingResult
from repro.core.usecase import UseCaseSet
from repro.exceptions import ConfigurationError, MappingError

__all__ = ["RefinementResult", "AnnealingRefiner", "refine_mapping", "communication_cost"]


def communication_cost(result: MappingResult) -> float:
    """Total bandwidth-hop product over all use-cases (power/latency proxy)."""
    return sum(
        configuration.total_bandwidth_hops()
        for configuration in result.configurations.values()
    )


@dataclass
class RefinementResult:
    """Outcome of a refinement pass."""

    initial: MappingResult
    refined: MappingResult
    initial_cost: float
    refined_cost: float
    iterations: int
    accepted_moves: int

    @property
    def improvement(self) -> float:
        """Fractional cost reduction achieved by the refinement (>= 0)."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.refined_cost / self.initial_cost)


class AnnealingRefiner:
    """Simulated annealing over core swaps and moves."""

    def __init__(
        self,
        iterations: int = 200,
        initial_temperature: float = 0.08,
        cooling: float = 0.97,
        seed: int = 0,
    ) -> None:
        if iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        if initial_temperature <= 0 or not 0 < cooling < 1:
            raise ConfigurationError("invalid annealing schedule")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed

    def refine(
        self,
        result: MappingResult,
        use_cases: UseCaseSet,
        groups=None,
    ) -> RefinementResult:
        """Refine the core placement of an existing mapping result."""
        rng = random.Random(self.seed)
        mapper = UnifiedMapper(params=result.params, config=result.config)
        group_spec = groups if groups is not None else [list(g) for g in result.groups]
        # Validate once here; every candidate below re-maps the same design on
        # the same topology (reusing the mapper's cached PathSelector), so
        # per-candidate re-validation is skipped.
        use_cases.validate()
        current = result
        current_cost = communication_cost(result)
        best = current
        best_cost = current_cost
        temperature = self.initial_temperature
        accepted = 0

        cores = sorted(result.core_mapping)
        for _ in range(self.iterations):
            placement = self._neighbour(current.core_mapping, cores, result, rng)
            if placement is None:
                temperature *= self.cooling
                continue
            try:
                candidate = mapper.map_with_placement(
                    use_cases, result.topology, placement, groups=group_spec,
                    method_name=result.method, validate=False,
                )
            except MappingError:
                temperature *= self.cooling
                continue
            candidate_cost = communication_cost(candidate)
            delta = (candidate_cost - current_cost) / max(current_cost, 1e-9)
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current, current_cost = candidate, candidate_cost
                accepted += 1
                if candidate_cost < best_cost:
                    best, best_cost = candidate, candidate_cost
            temperature *= self.cooling
        return RefinementResult(
            initial=result,
            refined=best,
            initial_cost=communication_cost(result),
            refined_cost=best_cost,
            iterations=self.iterations,
            accepted_moves=accepted,
        )

    def _neighbour(
        self,
        placement: Dict[str, int],
        cores,
        result: MappingResult,
        rng: random.Random,
    ) -> Optional[Dict[str, int]]:
        """A random swap of two cores or move of one core to a free switch."""
        if len(cores) < 2:
            return None
        candidate = dict(placement)
        if rng.random() < 0.5:
            first, second = rng.sample(cores, 2)
            candidate[first], candidate[second] = candidate[second], candidate[first]
            return candidate
        core = rng.choice(cores)
        limit = result.params.max_cores_per_switch
        occupancy: Dict[int, int] = {}
        for switch in candidate.values():
            occupancy[switch] = occupancy.get(switch, 0) + 1
        options = [
            switch.index
            for switch in result.topology.switches
            if switch.index != candidate[core]
            and (limit is None or occupancy.get(switch.index, 0) < limit)
        ]
        if not options:
            return None
        candidate[core] = rng.choice(options)
        return candidate


def refine_mapping(
    result: MappingResult,
    use_cases: UseCaseSet,
    iterations: int = 200,
    seed: int = 0,
) -> RefinementResult:
    """Convenience wrapper around :class:`AnnealingRefiner`."""
    refiner = AnnealingRefiner(iterations=iterations, seed=seed)
    return refiner.refine(result, use_cases)
