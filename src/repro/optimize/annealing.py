"""Simulated-annealing refinement of the core placement.

The neighbourhood is the classic one for quadratic-assignment-style mapping
problems: swap the switches of two cores, or move one core to a switch that
still has a free NI port.  Every candidate placement is re-mapped (path
selection and slot reservation re-run) on the *same* topology, so a
candidate is only accepted if it still satisfies every use-case's
constraints; among feasible placements the total communication cost
(Σ bandwidth × hops over all use-cases) is minimised.

Candidate evaluation goes through a
:class:`~repro.core.engine.MappingEngine`: the specification is compiled
once, the ``GroupRequirement``/worklist derivation is cached for the whole
run, and group evaluations are memoised on the placement of their endpoint
cores, so revisited placements (swap/swap-back is common at low
temperature) cost a cache lookup instead of a re-map.  Decisions are
bit-identical to re-mapping from scratch.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.engine import MappingEngine
from repro.core.result import MappingResult
from repro.core.usecase import UseCaseSet
from repro.exceptions import ConfigurationError, MappingError

__all__ = [
    "RefinementResult",
    "AnnealingRefiner",
    "refine_mapping",
    "communication_cost",
    "DEFAULT_INITIAL_TEMPERATURE",
]

#: the annealing schedule's default starting temperature; portfolio chains
#: scale this by a per-chain factor to diversify their acceptance behaviour
DEFAULT_INITIAL_TEMPERATURE = 0.08


def communication_cost(result: MappingResult) -> float:
    """Total bandwidth-hop product over all use-cases (power/latency proxy)."""
    if result.cached_communication_cost is not None:
        return result.cached_communication_cost
    return sum(
        configuration.total_bandwidth_hops()
        for configuration in result.configurations.values()
    )


@dataclass
class RefinementResult:
    """Outcome of a refinement pass."""

    initial: MappingResult
    refined: MappingResult
    initial_cost: float
    refined_cost: float
    iterations: int
    accepted_moves: int

    @property
    def improvement(self) -> float:
        """Fractional cost reduction achieved by the refinement (>= 0)."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.refined_cost / self.initial_cost)


class AnnealingRefiner:
    """Simulated annealing over core swaps and moves."""

    def __init__(
        self,
        iterations: int = 200,
        initial_temperature: float = DEFAULT_INITIAL_TEMPERATURE,
        cooling: float = 0.97,
        seed: int = 0,
        screen: bool = True,
    ) -> None:
        if iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        if initial_temperature <= 0 or not 0 < cooling < 1:
            raise ConfigurationError("invalid annealing schedule")
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.seed = seed
        #: evaluate candidates through the engine's batched candidate
        #: screen (bit-identical to the scalar path; ``False`` keeps the
        #: historical placement_cost walk for equivalence testing)
        self.screen = screen

    def refine(
        self,
        result: MappingResult,
        use_cases: UseCaseSet,
        groups=None,
        engine: MappingEngine | None = None,
    ) -> RefinementResult:
        """Refine the core placement of an existing mapping result."""
        rng = random.Random(self.seed)
        engine = engine or MappingEngine(params=result.params, config=result.config)
        group_spec = groups if groups is not None else [list(g) for g in result.groups]
        # Compiling validates (and freezes) the specification once; every
        # candidate below re-evaluates the same compiled spec on the same
        # topology through the engine's requirement and evaluation caches.
        spec = engine.compile(use_cases)
        # Cost-only candidate evaluation: the walk tracks placements and
        # costs alone, and only the single best placement is materialised
        # into a full result after the loop (the evaluation cache makes
        # that final call assembly-only).  Results are pure functions of
        # the placement, so this is decision-for-decision identical to
        # materialising every accepted move.  The candidate screen answers
        # the same costs through the same cache hierarchy without copying
        # a ResourceState per candidate, returning None exactly where
        # placement_cost raises MappingError.
        candidate_screen = (
            engine.screener(spec, result.topology, groups=group_spec)
            if self.screen
            else None
        )
        current_placement = result.core_mapping
        current_cost = communication_cost(result)
        best_placement: Optional[Dict[str, int]] = None  # None = the initial
        best_cost = current_cost
        temperature = self.initial_temperature
        accepted = 0

        cores = sorted(result.core_mapping)
        for _ in range(self.iterations):
            placement = self._neighbour(current_placement, cores, result, rng)
            if placement is None:
                temperature *= self.cooling
                continue
            if candidate_screen is not None:
                candidate_cost = candidate_screen.cost(placement)
                if candidate_cost is None:
                    temperature *= self.cooling
                    continue
            else:
                try:
                    candidate_cost = engine.placement_cost(
                        spec, result.topology, placement, groups=group_spec,
                    )
                except MappingError:
                    temperature *= self.cooling
                    continue
            delta = (candidate_cost - current_cost) / max(current_cost, 1e-9)
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current_placement, current_cost = placement, candidate_cost
                accepted += 1
                if candidate_cost < best_cost:
                    best_placement, best_cost = placement, candidate_cost
            temperature *= self.cooling
        if best_placement is None:
            best = result
        else:
            best = engine.evaluate_placement(
                spec, result.topology, best_placement, groups=group_spec,
                method_name=result.method,
            )
        return RefinementResult(
            initial=result,
            refined=best,
            initial_cost=communication_cost(result),
            refined_cost=best_cost,
            iterations=self.iterations,
            accepted_moves=accepted,
        )

    def _neighbour(
        self,
        placement: Dict[str, int],
        cores,
        result: MappingResult,
        rng: random.Random,
    ) -> Optional[Dict[str, int]]:
        """A random swap of two cores or move of one core to a free switch."""
        if len(cores) < 2:
            return None
        candidate = dict(placement)
        if rng.random() < 0.5:
            first, second = rng.sample(cores, 2)
            candidate[first], candidate[second] = candidate[second], candidate[first]
            return candidate
        core = rng.choice(cores)
        limit = result.params.max_cores_per_switch
        occupancy: Dict[int, int] = {}
        for switch in candidate.values():
            occupancy[switch] = occupancy.get(switch, 0) + 1
        options = [
            switch.index
            for switch in result.topology.switches
            if switch.index != candidate[core]
            and (limit is None or occupancy.get(switch.index, 0) < limit)
        ]
        if not options:
            return None
        candidate[core] = rng.choice(options)
        return candidate


def refine_mapping(
    result: MappingResult,
    use_cases: UseCaseSet,
    iterations: int = 200,
    seed: int = 0,
) -> RefinementResult:
    """Convenience wrapper around :class:`AnnealingRefiner`."""
    refiner = AnnealingRefiner(iterations=iterations, seed=seed)
    return refiner.refine(result, use_cases)
