"""Batched candidate screening for the refinement hot loop.

The refiners evaluate hundreds of neighbour placements per run, and almost
all of that budget is spent re-deriving per-group mapping decisions the
engine has not cached yet.  This module provides a
:class:`CandidateScreen` bound to one (engine, spec, grouping, topology)
refinement context that answers candidate costs three ways, cheapest
first:

1. **Run-local memo** — a (group, endpoint projection) that was already
   screened this run returns its per-use-case cost sums immediately
   (``screen_hits`` in :meth:`MappingEngine.cache_info`).
2. **Engine recall** — the engine's evaluation cache, imported corpus and
   attached :class:`~repro.jobs.store.EngineStateStore` are consulted with
   the exact counters the unscreened path would report
   (``evaluation_hits`` / ``imported_evaluations``).
3. **Screening kernel** — an exact replica of
   :meth:`UnifiedMapper.evaluate_group_fixed` that evolves the group's
   resource state on throwaway dicts (lazy defaults: every link residual
   starts at capacity, every slot-table free mask starts full) instead of
   copying the topology-wide ``ResourceState`` per candidate — the
   dominant cost on big meshes.  Slot admissibility for all of a pair's
   candidate paths is computed at once by rotate-and-AND over the hop-mask
   matrix (:func:`~repro.noc.slot_table.hop_mask_matrix`) through a numpy
   backend when numpy is importable, the slot table fits in 64 bits *and*
   the batch is wide enough to amortise the int-to-uint64 conversion
   (:data:`NUMPY_MIN_ROWS`), or a pure-python packed-int fallback
   otherwise.  Kernel decisions are
   admitted into the engine's evaluation cache in the serialised
   ``(path, starts)`` form, so exports, warm starts and the final
   :meth:`MappingEngine.evaluate_placement` materialisation are
   bit-identical to the unscreened path (``screen_misses`` counts kernel
   evaluations; they are also ``evaluation_misses``, because a kernel
   evaluation *is* a computed evaluation).

Bit-identity is the contract everything else hangs off: both backends
perform the same integer mask operations, every float accumulation keeps
the scalar evaluation's operation order, and only provably-losing
candidates may be skipped by callers (see :meth:`CandidateScreen.screen`'s
lower bounds).  The fingerprint suites in ``tests/test_screen.py`` pin
this for numpy and fallback alike.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.noc.resources import INFEASIBLE_COST
from repro.noc.slot_table import (
    hop_mask_matrix,
    lowest_set_bits,
    pipelined_free_mask,
    slots_needed_cached,
)

__all__ = [
    "CandidateScreen",
    "ScreenedCandidate",
    "NumpyMaskBackend",
    "PackedIntMaskBackend",
    "NUMPY_MIN_ROWS",
    "select_backend",
]

try:  # pragma: no cover - exercised via the backend-selection tests
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class PackedIntMaskBackend:
    """Pure-python fallback: reduce each hop-mask row with big-int ops."""

    name = "fallback"

    def __init__(self, size: int) -> None:
        self.size = size

    def admissible_start_masks(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Admissible starting-slot mask per row (one row = one path)."""
        size = self.size
        return [pipelined_free_mask(row, size) for row in rows]


class NumpyMaskBackend:
    """Vectorised rotate-and-AND over a uint64 hop-mask matrix.

    Only usable for slot tables of at most 64 slots (the masks must pack
    into one lane); :func:`select_backend` falls back above that.  The
    integer results are exactly :func:`pipelined_free_mask`'s — the float
    side of screening never goes through numpy, which is what keeps the
    two backends bit-identical.
    """

    name = "numpy"

    def __init__(self, size: int) -> None:
        if _np is None:  # pragma: no cover - guarded by select_backend
            raise RuntimeError("numpy is not available")
        if size > 64:
            raise ValueError("numpy mask backend requires slot tables <= 64 slots")
        self.size = size
        self._full = _np.uint64((1 << size) - 1)

    def admissible_start_masks(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Admissible starting-slot mask per row (one row = one path)."""
        if not rows:
            return []
        size = self.size
        full_int = (1 << size) - 1
        width = max(len(row) for row in rows)
        matrix = _np.full((len(rows), width), full_int, dtype=_np.uint64)
        for index, row in enumerate(rows):
            if row:
                matrix[index, : len(row)] = row
        # Rotate hop column ``j`` right by ``j mod size`` into the
        # start-slot frame, then AND-reduce across hops.  Padding columns
        # hold the full mask, whose rotation is itself, so ragged rows are
        # unaffected.  ``rotation == 0`` skips the shift pair (a shift by
        # ``size`` would be undefined for size == 64).
        admissible = _np.full(len(rows), full_int, dtype=_np.uint64)
        for hop in range(width):
            column = matrix[:, hop]
            rotation = hop % size
            if rotation:
                column = (
                    (column >> _np.uint64(rotation))
                    | (column << _np.uint64(size - rotation))
                ) & self._full
            admissible &= column
        return [int(value) for value in admissible]


#: Measured CPython 3.11 crossover: numpy's per-call cost is dominated by
#: converting Python ints into the uint64 matrix, so the vectorised
#: reduction only wins once a batch is ~64 rows wide; below that the
#: packed-int loop is faster (2-5x at the <=8-row batches minimal-path
#: budgets produce on small meshes).
NUMPY_MIN_ROWS = 64


def select_backend(size: int, rows: Optional[int] = None):
    """The mask backend for one batch: numpy for wide batches, else ints.

    ``rows`` is the batch width about to be screened; ``None`` means
    "unknown / large" and selects numpy whenever it is usable at all (the
    table must fit one uint64 lane).  Both backends are bit-identical, so
    the choice is purely a throughput decision.
    """
    if (
        _np is not None
        and size <= 64
        and (rows is None or rows >= NUMPY_MIN_ROWS)
    ):
        return NumpyMaskBackend(size)
    return PackedIntMaskBackend(size)


class ScreenedCandidate:
    """Batch-screening verdict for one candidate placement.

    ``admissible`` is ``False`` only when the scalar path would provably
    reject the candidate (placement validation failed, or a group's
    endpoint projection is a memoised infeasibility) — skipping such a
    candidate is decision-identical to evaluating it.  ``cost`` is the
    exact communication cost when every group projection was already
    memoised this run, else ``None``.  ``lower_bound`` never exceeds the
    exact cost of a feasible candidate by more than float-accumulation
    noise: unknown groups contribute Σ bandwidth × shortest-hop-distance
    (chosen paths can only be longer), known groups contribute their exact
    sums.  Callers may therefore skip candidates whose lower bound exceeds
    a strictly better cost plus a relative margin.
    """

    __slots__ = ("admissible", "cost", "lower_bound")

    def __init__(self, admissible: bool, cost: Optional[float], lower_bound: float) -> None:
        self.admissible = admissible
        self.cost = cost
        self.lower_bound = lower_bound

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScreenedCandidate(admissible={self.admissible}, "
            f"cost={self.cost}, lower_bound={self.lower_bound})"
        )


#: relative pruning margin guaranteeing float-accumulation noise can never
#: misclassify the true winner (costs are bandwidth-scale, noise is ~ulp)
PRUNE_MARGIN = 1e-9


class CandidateScreen:
    """Batched admissibility / cost screening for one refinement context.

    Built by :meth:`MappingEngine.screener`; holds the compiled bundle and
    topology the refiners loop over.  :meth:`cost` is the exact drop-in for
    :meth:`MappingEngine.placement_cost` (returning ``None`` where the
    engine raises :class:`MappingError`); :meth:`screen` batches the cheap
    admissibility and lower-bound pass over a whole neighbour set.
    """

    def __init__(self, engine, spec, resolved, bundle, topology) -> None:
        self._engine = engine
        self._spec = spec
        self._resolved = resolved
        self._bundle = bundle
        self._topology = topology
        self._selector = engine.mapper._selector_for(topology)
        params = engine.params
        self._capacity = params.link_capacity
        self._size = params.slot_table_size
        self._full_mask = (1 << self._size) - 1
        self._limit = params.max_cores_per_switch
        config = engine.config
        self._hop_weight = config.hop_weight
        self._bandwidth_weight = config.bandwidth_weight
        self._slot_weight = config.slot_weight
        self._packed = PackedIntMaskBackend(self._size)
        self._numpy = (
            NumpyMaskBackend(self._size)
            if _np is not None and self._size <= 64
            else None
        )
        #: (group_id, projection) -> name-sums tuple | None (infeasibility)
        self._memo: Dict[Tuple[int, Tuple[int, ...]], Optional[Tuple[float, ...]]] = {}
        #: path tuple -> directed link tuple
        self._links_memo: Dict[Tuple[int, ...], Tuple[Tuple[int, int], ...]] = {}
        #: (switch, switch) -> shortest hop count (lower-bound distances)
        self._distance_memo: Dict[Tuple[int, int], int] = {}
        core_names = bundle.spec_core_names
        self._core_names = core_names
        #: per group: (source position, destination position, bandwidth) per
        #: member flow, positions indexing the group's endpoint projection —
        #: the ingredients of the distance lower bound
        self._lb_terms: Dict[int, List[Tuple[int, int, float]]] = {}
        for requirement in bundle.requirements:
            group_id = requirement.group_id
            position_of = {
                core_names[core_index]: position
                for position, core_index in enumerate(bundle.group_endpoints[group_id])
            }
            terms: List[Tuple[int, int, float]] = []
            for req, members in bundle.group_plans[group_id]:
                source = position_of[req.source]
                destination = position_of[req.destination]
                for _name, flow in members:
                    terms.append((source, destination, flow.bandwidth))
            self._lb_terms[group_id] = terms

    @property
    def backend_name(self) -> str:
        """The backend wide batches go through (``"numpy"`` / ``"fallback"``).

        Narrow batches always take the packed-int reduction — below
        :data:`NUMPY_MIN_ROWS` rows it is simply faster — so this names
        the vectorised engine available for the wide ones.
        """
        return self._packed.name if self._numpy is None else self._numpy.name

    def _admissible(self, rows: Sequence[Sequence[int]]) -> List[int]:
        """Admissible starting-slot mask per row, via the profitable backend."""
        numpy_backend = self._numpy
        if numpy_backend is not None and len(rows) >= NUMPY_MIN_ROWS:
            return numpy_backend.admissible_start_masks(rows)
        return self._packed.admissible_start_masks(rows)

    # ------------------------------------------------------------------ #
    # batched screening
    # ------------------------------------------------------------------ #
    def screen(self, placements: Sequence[Mapping[str, int]]) -> List[ScreenedCandidate]:
        """Admissibility and cost lower bound for a whole neighbour set.

        One :class:`ScreenedCandidate` per placement, in order.  Verdicts
        only use information that is exact (placement validation, the
        run-local memo) or a true lower bound (shortest-hop distances), so
        pruning on them never changes which candidate the scalar reference
        walk would select.
        """
        return [self._screen_one(placement) for placement in placements]

    def _screen_one(self, placement: Mapping[str, int]) -> ScreenedCandidate:
        bundle = self._bundle
        core_names = self._core_names
        if any(name not in placement for name in core_names):
            return ScreenedCandidate(True, None, 0.0)
        if not self._placement_valid(placement):
            return ScreenedCandidate(False, None, math.inf)
        memo = self._memo
        distance = self._distance
        terms: List[float] = []
        all_known = True
        for requirement in bundle.requirements:
            group_id = requirement.group_id
            projection = tuple(
                placement[core_names[index]]
                for index in bundle.group_endpoints[group_id]
            )
            key = (group_id, projection)
            if key in memo:
                sums = memo[key]
                if sums is None:
                    return ScreenedCandidate(False, None, math.inf)
                terms.extend(sums)
            else:
                all_known = False
                for source, dest, bandwidth in self._lb_terms[group_id]:
                    terms.append(
                        bandwidth * distance(projection[source], projection[dest])
                    )
        if all_known:
            # Exact: reproduce placement_cost's reduction order precisely.
            cost = sum(terms)
            return ScreenedCandidate(True, cost, cost)
        # fsum is exactly rounded, so both backends (and repeat runs)
        # produce the identical lower bound regardless of term order.
        return ScreenedCandidate(True, None, math.fsum(terms))

    # ------------------------------------------------------------------ #
    # exact evaluation
    # ------------------------------------------------------------------ #
    def cost(self, placement: Mapping[str, int]) -> Optional[float]:
        """Exact communication cost of a placement, ``None`` if infeasible.

        Bit-identical to :meth:`MappingEngine.placement_cost` (which raises
        :class:`MappingError` where this returns ``None``): identical
        per-group decisions, identical float accumulation order.
        """
        bundle = self._bundle
        core_names = self._core_names
        if any(name not in placement for name in core_names):
            # Incomplete placements take the engine's general fallback.
            from repro.exceptions import MappingError

            try:
                return self._engine.placement_cost(
                    self._spec,
                    self._topology,
                    placement,
                    groups=[list(group) for group in self._resolved],
                )
            except MappingError:
                return None
        if not self._placement_valid(placement):
            return None
        values: List[float] = []
        for requirement in bundle.requirements:
            group_id = requirement.group_id
            projection = tuple(
                placement[core_names[index]]
                for index in bundle.group_endpoints[group_id]
            )
            sums = self._group_sums(
                group_id, projection, placement, requirement.member_names
            )
            if sums is None:
                return None
            values.extend(sums)
        return sum(values)

    def _placement_valid(self, placement: Mapping[str, int]) -> bool:
        """The global validation of ``MappingEngine._evaluate_groups``.

        Same checks in the same order; returns ``False`` where the engine
        raises ``MappingError`` (unknown switch indices raise identically
        through ``topology.switch``).
        """
        topology = self._topology
        limit = self._limit
        occupancy: Dict[int, int] = {}
        for _core, switch in placement.items():
            topology.switch(switch)
            if topology.is_switch_down(switch):
                return False
            occupancy[switch] = occupancy.get(switch, 0) + 1
            if limit is not None and occupancy[switch] > limit:
                return False
        return True

    def _group_sums(
        self,
        group_id: int,
        projection: Tuple[int, ...],
        placement: Mapping[str, int],
        member_names: Sequence[str],
    ) -> Optional[Tuple[float, ...]]:
        """Per-use-case cost sums for one group, ``None`` if infeasible."""
        key = (group_id, projection)
        memo = self._memo
        if key in memo:
            self._engine._counters["screen_hits"] += 1
            return memo[key]
        found, outcome = self._engine._recall_group_outcome(
            self._bundle, self._topology, group_id, projection
        )
        if not found:
            pairs = self._kernel(group_id, placement)
            outcome = self._engine._admit_screened_outcome(
                self._bundle, self._topology, group_id, projection, pairs
            )
        sums = None if outcome is None else outcome.name_sums(member_names)
        memo[key] = sums
        return sums

    # ------------------------------------------------------------------ #
    # the screening kernel (exact evaluate_group_fixed replica)
    # ------------------------------------------------------------------ #
    def _kernel(
        self, group_id: int, placement: Mapping[str, int]
    ) -> Optional[List[Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
        """Evaluate one group exactly, without copying a ``ResourceState``.

        Replays :meth:`UnifiedMapper.evaluate_group_fixed` decision for
        decision — same candidate paths, same hop budgets, same ranking
        floats, same reservation checks in the same order — against lazily
        defaulted dicts (untouched links hold ``capacity`` residual and a
        full free mask, exactly a freshly seeded group state).  Returns the
        serialised ``(switch path, starting slots)`` decision per plan
        entry, or ``None`` when the group is infeasible — the same document
        shape stored evaluations use, so admitting the outcome to the
        engine cache reproduces the scalar path's entries bit-for-bit.
        """
        engine = self._engine
        bundle = self._bundle
        plan = bundle.group_plans[group_id]
        budgets = engine.mapper._budgets_for(plan)
        candidate_paths = self._selector.candidate_paths
        links_of = self._links_of
        full = self._full_mask
        admissible_start_masks = self._admissible
        link_residual: Dict[Tuple[int, int], float] = {}
        free_masks: Dict[Tuple[int, int], int] = {}
        ingress: Dict[str, float] = {}
        egress: Dict[str, float] = {}
        pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        for index, (req, _members) in enumerate(plan):
            max_hops = budgets[index]
            if max_hops is not None and max_hops < 0:
                return None
            bandwidth = req.bandwidth
            guaranteed = req.guaranteed
            threshold = bandwidth - 1e-9
            paths = candidate_paths(placement[req.source], placement[req.destination])
            starts: Optional[Tuple[int, ...]] = None
            if len(paths) == 1:
                path = paths[0]
                if max_hops is None or len(path) - 1 <= max_hops:
                    links = links_of(path)
                    admissible = full
                    if guaranteed and links:
                        admissible = admissible_start_masks(
                            hop_mask_matrix(free_masks, (links,), full)
                        )[0]
                    starts = self._try_reserve(
                        links, bandwidth, guaranteed, threshold,
                        req.source, req.destination, admissible,
                        link_residual, free_masks, ingress, egress,
                    )
            else:
                ranked: List[Tuple[float, Tuple[int, ...]]] = []
                for path in paths:
                    if max_hops is not None and len(path) - 1 > max_hops:
                        continue
                    cost = self._path_cost(
                        links_of(path), bandwidth, guaranteed, threshold,
                        link_residual, free_masks,
                    )
                    if cost != INFEASIBLE_COST:
                        ranked.append((cost, path))
                ranked.sort()
                if ranked:
                    if guaranteed:
                        # One rotate-and-AND over the whole candidate-path
                        # hop-mask matrix: every ranked path's admissible
                        # starting slots in a single backend call.
                        admissibles = admissible_start_masks(
                            hop_mask_matrix(
                                free_masks,
                                [links_of(path) for _cost, path in ranked],
                                full,
                            )
                        )
                    else:
                        admissibles = [full] * len(ranked)
                    for (_cost, path), admissible in zip(ranked, admissibles):
                        starts = self._try_reserve(
                            links_of(path), bandwidth, guaranteed, threshold,
                            req.source, req.destination, admissible,
                            link_residual, free_masks, ingress, egress,
                        )
                        if starts is not None:
                            break
            if starts is None:
                return None
            pairs.append((path, starts))
        return pairs

    def _path_cost(
        self,
        links: Tuple[Tuple[int, int], ...],
        bandwidth: float,
        guaranteed: bool,
        threshold: float,
        link_residual: Dict[Tuple[int, int], float],
        free_masks: Dict[Tuple[int, int], int],
    ) -> float:
        """``ResourceState.path_cost`` on the kernel's lazy dicts.

        Same float operations in the same order, so ranking ties and
        near-ties resolve identically to the scalar path.
        """
        capacity = self._capacity
        full = self._full_mask
        hops = len(links)
        cost = self._hop_weight * hops
        needed = (
            slots_needed_cached(bandwidth, capacity, self._size) if guaranteed else 0
        )
        bandwidth_weight = self._bandwidth_weight
        slot_weight = self._slot_weight
        for link in links:
            residual = link_residual.get(link, capacity)
            if residual < threshold:
                return INFEASIBLE_COST
            cost += bandwidth_weight * (bandwidth / (residual if residual > 1e-9 else 1e-9))
            if guaranteed:
                free = free_masks.get(link, full).bit_count()
                if free < needed:
                    return INFEASIBLE_COST
                cost += slot_weight * (needed / free)
        return cost

    def _try_reserve(
        self,
        links: Tuple[Tuple[int, int], ...],
        bandwidth: float,
        guaranteed: bool,
        threshold: float,
        source: str,
        destination: str,
        admissible: int,
        link_residual: Dict[Tuple[int, int], float],
        free_masks: Dict[Tuple[int, int], int],
        ingress: Dict[str, float],
        egress: Dict[str, float],
    ) -> Optional[Tuple[int, ...]]:
        """``ResourceState._plan`` + ``_commit`` on the kernel's lazy dicts.

        Returns the starting-slot tuple on success (empty for best-effort
        flows and same-switch pairs), ``None`` when the reservation is
        infeasible — with the feasibility checks in ``_plan``'s exact
        order.  The endpoint-attachment checks are skipped: candidate
        paths start and end at the endpoints' placed switches by
        construction, so they can never fail here.
        """
        capacity = self._capacity
        if ingress.get(source, capacity) < threshold:
            return None
        if egress.get(destination, capacity) < threshold:
            return None
        for link in links:
            if link_residual.get(link, capacity) < threshold:
                return None
        starts: Tuple[int, ...] = ()
        if guaranteed and links:
            size = self._size
            needed = slots_needed_cached(bandwidth, capacity, size)
            if needed > size:
                return None
            found = lowest_set_bits(admissible, needed)
            if found is None:
                return None
            starts = found
        # commit (mirrors ResourceState._commit's mutation order)
        ingress[source] = ingress.get(source, capacity) - bandwidth
        egress[destination] = egress.get(destination, capacity) - bandwidth
        for link in links:
            link_residual[link] = link_residual.get(link, capacity) - bandwidth
        if starts:
            size = self._size
            full = self._full_mask
            start_mask = 0
            for start in starts:
                start_mask |= 1 << start
            for hop, link in enumerate(links):
                rotation = hop % size
                rotated = (
                    start_mask
                    if not rotation
                    else ((start_mask << rotation) | (start_mask >> (size - rotation)))
                    & full
                )
                free_masks[link] = free_masks.get(link, full) & ~rotated
        return starts

    # ------------------------------------------------------------------ #
    # small derived-state memos
    # ------------------------------------------------------------------ #
    def _links_of(self, path: Tuple[int, ...]) -> Tuple[Tuple[int, int], ...]:
        memo = self._links_memo
        links = memo.get(path)
        if links is None:
            links = tuple(zip(path, path[1:]))
            memo[path] = links
        return links

    def _distance(self, source: int, destination: int) -> int:
        """Shortest hop count between two switches (true path-length bound)."""
        if source == destination:
            return 0
        key = (source, destination)
        memo = self._distance_memo
        distance = memo.get(key)
        if distance is None:
            distance = self._topology.shortest_hop_count(source, destination)
            memo[key] = distance
        return distance
