"""The injectable clock every loop in the repo tells time through.

Loops that sleep — the monitor's poll period, the serve loop's poll
interval, retry backoff — never call :func:`time.sleep` directly.  They
take a :class:`Clock`, which in production is the :class:`SystemClock`
singleton and in tests a :class:`FakeClock` whose ``sleep`` returns
instantly while advancing virtual time.  That one seam is what makes the
whole live-operations subsystem (and the service's retry/poll behaviour)
testable in milliseconds with zero real sleeping.

The protocol is deliberately tiny: ``now()`` is a monotonic float of
seconds (epoch-free — only differences are meaningful, matching
:func:`time.monotonic`), ``sleep(seconds)`` blocks for that long.
"""

from __future__ import annotations

import time
from typing import List

__all__ = ["Clock", "SystemClock", "FakeClock"]


class Clock:
    """Protocol: a monotonic time source with a blocking sleep."""

    def now(self) -> float:
        """Current monotonic time in seconds (differences only)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for non-positive values)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing: :func:`time.monotonic` + :func:`time.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """Virtual time for tests: ``sleep`` advances instantly and is recorded.

    ``now()`` starts at ``start`` and only moves when ``sleep`` or
    :meth:`advance` is called, so a test drives exactly the schedule it
    wants and asserts on :attr:`sleeps` — the durations the code under test
    *asked* to sleep — without a single real wall-clock stall.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: every duration passed to :meth:`sleep`, in call order
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        if seconds > 0:
            self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move virtual time forward without recording a sleep."""
        self._now += float(seconds)
