"""Live-operations layer: probing, event logs and the monitoring loop.

The static mapping methodology only pays off operationally when a deployed
mapping reacts to the network it actually has.  This package closes that
loop:

* :mod:`repro.ops.clock` — the injectable :class:`Clock` protocol every
  loop in the repo sleeps through (:class:`SystemClock` in production, a
  fake in tests, so the entire subsystem is testable without sleeping);
* :mod:`repro.ops.probe` — the pluggable :class:`ProbeSource` contract
  (one :class:`Observation` of link/switch failures plus per-flow traffic
  readings per poll), with a deterministic scripted source for tests/CI
  and a callback source for real deployments;
* :mod:`repro.ops.events` — the append-only, crash-replayable
  ``events.jsonl`` log (schema ``repro/events@1``): replaying it
  reconstructs monitor state byte-identically, plus the
  :class:`TrafficEvent` re-characterisation model that re-freezes affected
  use cases;
* :mod:`repro.ops.monitor` — the :class:`Monitor` loop itself: probe,
  diff against the last known state, and enqueue warm
  :class:`~repro.jobs.spec.RepairJob` files into a ``repro serve`` inbox
  (full remaps when the splice repair reports unrepairable use cases).

``python -m repro monitor INBOX --probe-script F --period S`` is the CLI
front end; ``repro serve --status`` surfaces the monitor section of any
inbox that has one.
"""

from repro.ops.clock import Clock, FakeClock, SystemClock
from repro.ops.events import (
    EVENTS_SCHEMA,
    MONITOR_STATE_SCHEMA,
    EventLog,
    MonitorState,
    TrafficEvent,
    apply_traffic,
    canonical_state_bytes,
    read_events,
    replay_events,
)
from repro.ops.monitor import Monitor
from repro.ops.probe import (
    PROBE_SCRIPT_SCHEMA,
    CallbackProbeSource,
    Observation,
    ProbeSource,
    ScriptProbeSource,
)

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "EVENTS_SCHEMA",
    "MONITOR_STATE_SCHEMA",
    "EventLog",
    "MonitorState",
    "TrafficEvent",
    "apply_traffic",
    "canonical_state_bytes",
    "read_events",
    "replay_events",
    "Monitor",
    "PROBE_SCRIPT_SCHEMA",
    "Observation",
    "ProbeSource",
    "ScriptProbeSource",
    "CallbackProbeSource",
]
