"""The live-operations loop: probe, diff, log, enqueue warm repairs.

:class:`Monitor` closes the probe → detect → splice-repair loop around the
failure machinery: on a configurable period it asks its
:class:`~repro.ops.probe.ProbeSource` for the network's current state,
diffs the observed :class:`~repro.noc.failures.FailureSet` and traffic
overrides against the last known state, appends the deltas to the
append-only event log (:mod:`repro.ops.events` — the source of truth, so a
crashed monitor restarts by replaying its own log), and reacts by
enqueuing a warm :class:`~repro.jobs.spec.RepairJob` into a ``repro
serve`` inbox.  When the local splice check reports unrepairable use
cases, the enqueued job additionally carries the full remap
(``compare_full_remap=True``) so the serve farm computes the fallback
mapping in the same envelope.

Everything the monitor computes locally (the baseline, the repairability
probe) flows through an engine attached to the shared
:class:`~repro.jobs.store.EngineStateStore`, so the enqueued job's
execution warm-starts from it — a monitor-driven repair performs **zero**
evaluation misses on the serve side and is bit-identical to a
directly-constructed repair job for the same failure set.

Time comes exclusively from the injectable :class:`~repro.ops.clock.Clock`
(the loop never touches :func:`time.sleep`), which is what lets the whole
subsystem run under virtual time in tests.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import MappingEngine
from repro.core.repair import repair_mapping
from repro.exceptions import SpecificationError
from repro.jobs.spec import RepairJob, UseCaseSource, job_hash, save_job
from repro.noc.topology import Topology
from repro.ops.clock import Clock, SystemClock
from repro.ops.events import EventLog, apply_traffic, canonical_state_bytes
from repro.ops.probe import Observation, ProbeSource
from repro.params import MapperConfig, NoCParameters

__all__ = ["Monitor"]


class Monitor:
    """Periodic probing loop feeding live events into a serve inbox.

    Parameters
    ----------
    inbox:
        The ``repro serve`` inbox directory repair jobs are enqueued into
        (created if missing).
    probe_source:
        Where observations come from (scripted for tests/CI, a process
        callback for real deployments).
    use_cases:
        The deployed design — anything
        :meth:`~repro.jobs.spec.UseCaseSource.from_value` accepts.  The
        *original* (design-time) bandwidths; live re-characterisations ride
        as overrides on top, never mutate the source.
    params, config:
        The operating point and mapper configuration the enqueued jobs run
        under (defaults match the job-spec defaults, so a monitor-enqueued
        job hashes identically to a hand-written one).
    provision:
        ``(rows, cols)`` mesh the baseline is computed on.  Fault tolerance
        needs headroom — on the minimal mesh most failures are
        unsurvivable by construction — so a real deployment should always
        provision.
    period_s:
        Seconds between polls in :meth:`run`.
    state_dir:
        Where ``events.jsonl`` and ``state.json`` live; defaults to
        ``INBOX/monitor/`` so ``repro serve --status`` finds them.
    store_path:
        Directory of the shared :class:`~repro.jobs.store.EngineStateStore`
        — point it at the serve cache's store so monitor-side probing
        warm-starts the farm's executions.
    clock:
        The time source (default: the real :class:`SystemClock`).
    """

    def __init__(
        self,
        inbox: Union[str, Path],
        probe_source: ProbeSource,
        use_cases,
        params: Optional[NoCParameters] = None,
        config: Optional[MapperConfig] = None,
        provision: Optional[Tuple[int, int]] = None,
        groups: Optional[Sequence[Sequence[str]]] = None,
        period_s: float = 5.0,
        state_dir: Union[str, Path, None] = None,
        store_path: Union[str, Path, None] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.inbox = Path(inbox)
        self.inbox.mkdir(parents=True, exist_ok=True)
        self.probe_source = probe_source
        self.source = UseCaseSource.from_value(use_cases)
        self.params = params or NoCParameters()
        self.config = config or MapperConfig()
        self.provision = provision
        self.groups = (
            None if groups is None else tuple(tuple(group) for group in groups)
        )
        self.period_s = float(period_s)
        self.clock = clock or SystemClock()
        self.state_dir = Path(state_dir) if state_dir else self.inbox / "monitor"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.events_path = self.state_dir / "events.jsonl"
        self.state_path = self.state_dir / "state.json"
        #: crash-replay: reconstruct everything we knew from the log
        self.log = EventLog(self.events_path)
        self.engine = MappingEngine(params=self.params, config=self.config)
        if store_path is not None:
            from repro.jobs.store import EngineStateStore

            self._store = EngineStateStore(store_path)
            self.engine.attach_store(self._store)
        else:
            self._store = None
        self._design = None
        self._baseline = None
        self._stop = False
        #: polls performed over this monitor's lifetime (not replayed)
        self.polls = 0

    # ------------------------------------------------------------------ #
    # lazy design/baseline
    # ------------------------------------------------------------------ #
    @property
    def state(self):
        """The folded event-log state (see :class:`MonitorState`)."""
        return self.log.state

    def _ensure_design(self):
        if self._design is None:
            self._design = self.source.build()
        return self._design

    def _ensure_baseline(self):
        """The pre-failure mapping repairs splice against (computed once)."""
        if self._baseline is not None:
            return self._baseline
        design = self._ensure_design()
        groups = None if self.groups is None else [list(g) for g in self.groups]
        if self.provision is not None:
            rows, cols = self.provision
            self._baseline = self.engine.mapper.map_with_placement(
                design, Topology.mesh(rows, cols), {}, groups=groups,
                validate=False,
            )
        else:
            self._baseline = self.engine.map(design, groups=groups)
        return self._baseline

    def _validate_observation(self, observation: Observation) -> None:
        """Reject garbage before it reaches the log.

        Failure ids are checked against the baseline topology and traffic
        readings against the design's flows — an observation that does not
        validate raises and nothing is appended, so the log only ever holds
        events that replay cleanly.
        """
        observation.failures.validate_for(self._ensure_baseline().topology)
        design = self._ensure_design()
        for (name, source, destination), bandwidth in \
                observation.traffic_map().items():
            if name not in design:
                raise SpecificationError(
                    f"probe reports traffic for unknown use case {name!r}"
                )
            if design[name].flow_between(source, destination) is None:
                raise SpecificationError(
                    f"probe reports traffic for unknown flow "
                    f"{source!r}->{destination!r} in use case {name!r}"
                )
            # NaN fails both comparisons, so this also rejects it
            if not 0 < bandwidth < math.inf:
                raise SpecificationError(
                    f"probe reports non-positive or non-finite bandwidth "
                    f"{bandwidth!r} for flow {source!r}->{destination!r} "
                    f"in use case {name!r}"
                )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def recover(self) -> Optional[Dict]:
        """Finish a poll interrupted between logging deltas and enqueuing.

        Delta events are durable the moment they are appended, but the
        repair they call for is only durable once the matching ``enqueue``
        event follows.  A log whose last event is not an ``enqueue`` is the
        signature of a crash (or an exception) in that window: the failure
        is already folded into replayed state, so the next observation
        would produce no delta and the repair would be silently lost.
        This re-runs the enqueue for the replayed state; :meth:`poll_once`
        calls it before every probe, so the ordinary restart path heals
        itself.  Returns the enqueue record, or ``None`` if the log is
        complete.
        """
        state = self.log.state
        if state.seq == 0 or state.last_type == "enqueue":
            return None
        record = self._enqueue_repair(self.clock.now(), None, 0)
        self._write_state()
        return record

    def poll_once(self) -> Optional[Dict]:
        """One probe → diff → log → enqueue cycle.

        Returns ``None`` when the observation matches the last known state
        (nothing is logged, nothing is enqueued — a steady network costs
        one probe per period and nothing else), otherwise a record of what
        changed and what was enqueued.
        """
        recovery = self.recover()
        self.polls += 1
        now = self.clock.now()
        observation = self.probe_source.observe(now)
        self._validate_observation(observation)

        state = self.log.state
        delta = state.failures.diff(observation.failures)
        design = self._ensure_design()
        # a reading at a flow's design bandwidth is not an override — treat
        # it as absent so it never logs a no-op event (and clears any prior
        # override for the flow, via the ordinary null-revert path)
        observed_traffic = {
            key: bandwidth
            for key, bandwidth in observation.traffic_map().items()
            if design[key[0]].flow_between(key[1], key[2]).bandwidth
            != bandwidth
        }
        traffic_keys = sorted(set(state.traffic) | set(observed_traffic))
        traffic_changes = [
            (key, observed_traffic.get(key))
            for key in traffic_keys
            if state.traffic.get(key) != observed_traffic.get(key)
        ]
        if delta.is_empty and not traffic_changes:
            return recovery

        for source, destination in delta.failed_links:
            self.log.append("link_down", now,
                            {"source": source, "destination": destination})
        for source, destination in delta.healed_links:
            self.log.append("link_up", now,
                            {"source": source, "destination": destination})
        for index in delta.failed_switches:
            self.log.append("switch_down", now, {"index": index})
        for index in delta.healed_switches:
            self.log.append("switch_up", now, {"index": index})
        for (name, source, destination), bandwidth in traffic_changes:
            self.log.append("traffic", now, {
                "use_case": name, "source": source,
                "destination": destination, "bandwidth": bandwidth,
            })

        record = self._enqueue_repair(now, delta, len(traffic_changes))
        self._write_state()
        return record

    def _enqueue_repair(self, now: float, delta, traffic_changes: int) -> Dict:
        """Probe repairability locally, enqueue the job, log the enqueue.

        The local :func:`repair_mapping` run decides ``action``: a clean
        splice enqueues a plain repair; unrepairable use cases escalate to
        a full-remap job (``compare_full_remap=True``).  Its evaluations go
        through the store-attached engine, which is exactly what makes the
        serve-side execution of the enqueued job warm.  ``delta`` is
        ``None`` on the :meth:`recover` path, where the deltas are already
        in the log and only the enqueue is owed.
        """
        state = self.log.state
        baseline = self._ensure_baseline()
        design = self._ensure_design()
        if state.traffic:
            current, changed = apply_traffic(design, state.traffic)
        else:
            current, changed = design, ()
        groups = None if self.groups is None else [list(g) for g in self.groups]
        outcome = repair_mapping(
            self.engine, current, baseline, state.failures,
            groups=groups, changed_use_cases=changed,
        )
        unrepairable = outcome.repaired is None
        if self._store is not None:
            # Persist what the probe computed so the serve-side execution
            # of the job below starts warm (zero evaluation misses).
            self._store.ingest(
                self.engine.export_results(), self.engine.export_evaluations()
            )

        job = RepairJob(
            use_cases=self.source,
            failures=state.failures.to_dict(),
            params=self.params,
            config=self.config,
            provision=self.provision,
            groups=self.groups,
            traffic=tuple(
                (name, source, destination, state.traffic[(name, source, destination)])
                for name, source, destination in sorted(state.traffic)
            ),
            compare_full_remap=unrepairable,
        )
        action = "remap" if unrepairable else "repair"
        # the hash suffix keeps an orphan file from a crash between
        # save_job and the enqueue event from being silently overwritten
        # by a *different* job that later lands on the same sequence number
        digest = job_hash(job)
        file_name = f"monitor-{state.seq + 1:06d}-{digest[:8]}.json"
        save_job(job, self.inbox / file_name)
        self.log.append("enqueue", now, {
            "file": file_name,
            "job_hash": digest,
            "kind": job.KIND,
            "action": action,
            "unrepairable": list(outcome.unrepairable),
        })
        return {
            "seq": state.seq,
            "delta": "recovered" if delta is None else delta.describe(),
            "traffic_changes": traffic_changes,
            "file": file_name,
            "action": action,
            "unrepairable": list(outcome.unrepairable),
        }

    def _write_state(self) -> None:
        """Publish the canonical derived state atomically.

        ``state.json`` is a convenience projection — the log is the source
        of truth — but it must never be torn, so it is written to a
        temporary file and renamed into place.
        """
        tmp = self.state_path.with_suffix(".json.tmp")
        tmp.write_bytes(canonical_state_bytes(self.log.state))
        tmp.replace(self.state_path)

    def run(self, max_polls: Optional[int] = None) -> List[Dict]:
        """Poll repeatedly, sleeping ``period_s`` between polls.

        Runs until :meth:`stop` is called or ``max_polls`` polls have
        happened; returns the records of the polls that observed changes.
        """
        records: List[Dict] = []
        polls = 0
        while not self._stop:
            record = self.poll_once()
            if record is not None:
                records.append(record)
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
            if not self._stop:
                self.clock.sleep(self.period_s)
        return records

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the poll currently in flight."""
        self._stop = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Monitor({str(self.inbox)!r}, seq={self.log.state.seq}, "
            f"polls={self.polls})"
        )
