"""Pluggable probe sources: where the monitor's observations come from.

A probe source answers one question per poll: *what does the network look
like right now?* — packaged as an :class:`Observation` holding the absolute
:class:`~repro.noc.failures.FailureSet` (not a delta; diffing against the
last known state is the monitor's job) and the full set of active traffic
overrides (flows currently measured away from their design bandwidth).

Two implementations cover the two deployment modes:

* :class:`ScriptProbeSource` — a deterministic script file (schema
  ``repro/probe-script@1``), one step per poll, clamping at the last step.
  This is what tests and the CI smoke drive: the whole
  fail → repair → heal choreography is data.
* :class:`CallbackProbeSource` — a callable for real deployments, where
  the observation comes from hardware path probes
  (``mark_path_down``-style runtime monitors) or an external telemetry
  process.

The script shape::

    {
      "schema": "repro/probe-script@1",
      "steps": [
        {"failures": {"links": [[1, 4], [4, 1]], "switches": []},
         "traffic": [["uc1", "C1", "C2", 25000000.0]]},
        {"failures": {"links": [], "switches": []}}
      ]
    }

Each step is the *complete* observed state: ``failures`` defaults to none,
``traffic`` to no overrides, and a flow absent from ``traffic`` is at its
design bandwidth.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Tuple, Union

from repro.exceptions import SerializationError
from repro.noc.failures import FailureSet
from repro.ops.events import TrafficEvent

__all__ = [
    "PROBE_SCRIPT_SCHEMA",
    "Observation",
    "ProbeSource",
    "ScriptProbeSource",
    "CallbackProbeSource",
]

PROBE_SCRIPT_SCHEMA = "repro/probe-script@1"


@dataclass(frozen=True)
class Observation:
    """One poll's complete view of the network.

    ``failures`` is the absolute failure state; ``traffic`` the complete
    set of active overrides (``bandwidth`` is never ``None`` here — a flow
    back at its design value is simply absent).
    """

    failures: FailureSet
    traffic: Tuple[TrafficEvent, ...] = ()

    def traffic_map(self) -> Dict[Tuple[str, str, str], float]:
        """The overrides as a ``{(use_case, source, destination): bw}`` map."""
        return {reading.key: float(reading.bandwidth) for reading in self.traffic}

    @classmethod
    def from_dict(cls, document: Dict) -> "Observation":
        """Build an observation from one script-step-shaped document."""
        if not isinstance(document, dict):
            raise SerializationError(
                f"probe step must be a mapping, got {type(document).__name__}"
            )
        readings = []
        for row in document.get("traffic", ()):
            try:
                use_case, source, destination, bandwidth = row
            except (TypeError, ValueError):
                raise SerializationError(
                    "probe traffic rows must be "
                    f"[use_case, source, destination, bandwidth], got {row!r}"
                ) from None
            if bandwidth is None:
                raise SerializationError(
                    "probe traffic rows carry absolute bandwidths; omit the "
                    "row to revert a flow to its design value"
                )
            try:
                bandwidth = float(bandwidth)
            except (TypeError, ValueError):
                raise SerializationError(
                    f"probe traffic bandwidth must be a number, "
                    f"got {bandwidth!r}"
                ) from None
            # Python's json happily parses Infinity and NaN; NaN fails
            # both comparisons, so this rejects it too
            if not 0 < bandwidth < math.inf:
                raise SerializationError(
                    f"probe traffic bandwidth must be positive and finite, "
                    f"got {bandwidth!r}"
                )
            readings.append(TrafficEvent(
                str(use_case), str(source), str(destination), bandwidth
            ))
        return cls(
            failures=FailureSet.from_dict(document.get("failures") or {}),
            traffic=tuple(readings),
        )


class ProbeSource:
    """Protocol: one :class:`Observation` per monitor poll."""

    def observe(self, now: float) -> Observation:
        """The network's current state, as of clock time ``now``."""
        raise NotImplementedError


class ScriptProbeSource(ProbeSource):
    """Deterministic observations from a ``repro/probe-script@1`` file.

    Poll ``n`` returns step ``n`` (0-based); polls past the end keep
    returning the final step, so a script describes a finite choreography
    followed by a steady state.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        source = Path(path)
        try:
            document = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"cannot read probe script from {source}: {exc}"
            ) from exc
        if not isinstance(document, dict) or (
            document.get("schema") != PROBE_SCRIPT_SCHEMA
        ):
            raise SerializationError(
                f"{source} is not a {PROBE_SCRIPT_SCHEMA} probe script"
            )
        steps = document.get("steps")
        if not isinstance(steps, list) or not steps:
            raise SerializationError(
                f"probe script {source} needs a non-empty 'steps' list"
            )
        self.path = source
        self._steps = [Observation.from_dict(step) for step in steps]
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def exhausted(self) -> bool:
        """Whether every scripted step has been observed at least once."""
        return self._cursor >= len(self._steps)

    def observe(self, now: float) -> Observation:
        step = self._steps[min(self._cursor, len(self._steps) - 1)]
        self._cursor += 1
        return step


class CallbackProbeSource(ProbeSource):
    """Observations from a callable (the real-deployment adapter).

    The callable receives the clock's ``now`` and returns either an
    :class:`Observation` or a script-step-shaped dictionary (coerced via
    :meth:`Observation.from_dict`), so telemetry processes can hand over
    plain JSON without importing the model classes.
    """

    def __init__(self, callback: Callable[[float], Union[Observation, Dict]]) -> None:
        self._callback = callback

    def observe(self, now: float) -> Observation:
        observed = self._callback(now)
        if isinstance(observed, Observation):
            return observed
        return Observation.from_dict(observed)
