"""The append-only, crash-replayable monitor event log (``repro/events@1``).

The event log is the monitor's *source of truth*.  Every observation the
:class:`~repro.ops.monitor.Monitor` reacts to — a link or switch failing or
healing, a flow's bandwidth being re-characterised, a repair job being
enqueued — is appended to ``events.jsonl`` as one JSON object per line
**before** any derived state is written, and the derived ``state.json`` is
a pure fold over the log: :func:`replay_events` from an empty
:class:`MonitorState` reconstructs it byte-identically
(:func:`canonical_state_bytes`).  A monitor that crashes mid-operation
restarts by replaying its own log; nothing else needs to be durable.

Event lines share four envelope fields — ``schema`` (``repro/events@1``),
``seq`` (1-based, strictly increasing), ``t`` (the injectable clock's
monotonic seconds) and ``type`` — plus a per-type payload:

==============  ==========================================================
type            payload
==============  ==========================================================
``link_down``   ``source``, ``destination`` (one *directed* link)
``link_up``     ``source``, ``destination``
``switch_down``  ``index``
``switch_up``   ``index``
``traffic``     ``use_case``, ``source``, ``destination``, ``bandwidth``
                (bytes/s; ``null`` reverts the flow to its design value)
``enqueue``     ``file``, ``job_hash``, ``kind``, ``action``
                (``"repair"`` | ``"remap"``), ``unrepairable`` (names)
==============  ==========================================================

Directed links keep replay exact: a probe that sees only one direction of
a channel fail produces exactly that single-direction event.

:class:`TrafficEvent` / :func:`apply_traffic` are the re-characterisation
half: overrides rebuild and re-freeze only the affected
:class:`~repro.core.usecase.UseCase`\\ s (frozen use cases are immutable, so
a changed bandwidth means a *new* use case with a new content hash — which
is what keys engine state correctly per traffic state).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.core.usecase import Flow, UseCase, UseCaseSet
from repro.exceptions import SerializationError, SpecificationError
from repro.noc.failures import FailureSet

__all__ = [
    "EVENTS_SCHEMA",
    "MONITOR_STATE_SCHEMA",
    "TrafficEvent",
    "apply_traffic",
    "MonitorState",
    "EventLog",
    "read_events",
    "replay_events",
    "canonical_state_bytes",
]

EVENTS_SCHEMA = "repro/events@1"
MONITOR_STATE_SCHEMA = "repro/monitor-state@1"

#: (use_case, source, destination) — the identity of one overridable flow
_FlowKey = Tuple[str, str, str]


# --------------------------------------------------------------------------- #
# traffic re-characterisation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TrafficEvent:
    """One flow's bandwidth re-characterised by a live measurement.

    ``bandwidth`` is the newly observed requirement in bytes/s; ``None``
    reverts the flow to its design value (the override is dropped).
    """

    use_case: str
    source: str
    destination: str
    bandwidth: Optional[float]

    @property
    def key(self) -> _FlowKey:
        return (self.use_case, self.source, self.destination)


def apply_traffic(
    use_cases: UseCaseSet,
    overrides: Mapping[_FlowKey, float],
) -> Tuple[UseCaseSet, Tuple[str, ...]]:
    """Re-characterise a design: a new frozen set with overridden bandwidths.

    Returns ``(recharacterised_set, changed_names)``.  Only use cases whose
    bandwidth actually changes are rebuilt (and re-frozen, giving them new
    content hashes); untouched use cases are the *same objects*, so engine
    state keyed on their hashes stays valid.  An override naming an unknown
    use case or flow raises :class:`SpecificationError` — the monitor
    validates observations before logging them.
    """
    by_use_case: Dict[str, Dict[Tuple[str, str], float]] = {}
    for (name, source, destination), bandwidth in overrides.items():
        if name not in use_cases:
            raise SpecificationError(
                f"traffic override names unknown use case {name!r}"
            )
        if use_cases[name].flow_between(source, destination) is None:
            raise SpecificationError(
                f"traffic override names unknown flow "
                f"{source!r}->{destination!r} in use case {name!r}"
            )
        by_use_case.setdefault(name, {})[(source, destination)] = float(bandwidth)

    changed: List[str] = []
    rebuilt: List[UseCase] = []
    for use_case in use_cases:
        pairs = by_use_case.get(use_case.name)
        if pairs is None or all(
            use_case.flow_between(*pair).bandwidth == bandwidth
            for pair, bandwidth in pairs.items()
        ):
            rebuilt.append(use_case)
            continue
        changed.append(use_case.name)
        flows = [
            flow if flow.pair not in pairs else Flow(
                source=flow.source,
                destination=flow.destination,
                bandwidth=pairs[flow.pair],
                latency=flow.latency,
                traffic_class=flow.traffic_class,
                name=flow.name,
            )
            for flow in use_case.flows
        ]
        rebuilt.append(
            UseCase(use_case.name, flows=flows, cores=use_case.cores,
                    parents=use_case.parents).freeze()
        )
    return (
        UseCaseSet(rebuilt, name=use_cases.name).freeze(),
        tuple(sorted(changed)),
    )


# --------------------------------------------------------------------------- #
# replayable state
# --------------------------------------------------------------------------- #
class MonitorState:
    """The fold of an event log: everything the monitor knows.

    Mutated exclusively through :meth:`apply` — the live monitor and the
    replayer go through the same method with the same event documents,
    which is what makes replay byte-identical *by construction* rather
    than by careful bookkeeping.
    """

    def __init__(self) -> None:
        self.seq = 0
        self.time = 0.0
        self.failures = FailureSet()
        #: active overrides: (use_case, source, destination) -> bytes/s
        self.traffic: Dict[_FlowKey, float] = {}
        self.counts: Dict[str, int] = {}
        self.enqueued: List[Dict] = []
        #: type of the most recent event; a log whose last event is not an
        #: ``enqueue`` was interrupted between logging deltas and enqueuing
        #: the repair (not part of :meth:`to_dict` — it is derivable)
        self.last_type: Optional[str] = None

    def apply(self, event: Dict) -> None:
        """Fold one event document into the state."""
        kind = event["type"]
        self.seq = int(event["seq"])
        self.time = float(event["t"])
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.last_type = kind
        if kind == "link_down":
            self.failures.mark_link_down(
                event["source"], event["destination"], bidirectional=False
            )
        elif kind == "link_up":
            self.failures.mark_link_up(
                event["source"], event["destination"], bidirectional=False
            )
        elif kind == "switch_down":
            self.failures.mark_switch_down(event["index"])
        elif kind == "switch_up":
            self.failures.mark_switch_up(event["index"])
        elif kind == "traffic":
            key = (event["use_case"], event["source"], event["destination"])
            if event["bandwidth"] is None:
                self.traffic.pop(key, None)
            else:
                self.traffic[key] = float(event["bandwidth"])
        elif kind == "enqueue":
            self.enqueued.append({
                "file": event["file"],
                "job_hash": event["job_hash"],
                "kind": event["kind"],
                "action": event["action"],
                "unrepairable": list(event.get("unrepairable", ())),
            })
        else:
            raise SerializationError(f"unknown monitor event type {kind!r}")

    def traffic_rows(self) -> List[List]:
        """Active overrides as sorted ``[use_case, source, destination, bw]``."""
        return [
            [name, source, destination, self.traffic[(name, source, destination)]]
            for name, source, destination in sorted(self.traffic)
        ]

    def to_dict(self) -> Dict:
        """Canonical JSON-ready state (the ``state.json`` document)."""
        return {
            "schema": MONITOR_STATE_SCHEMA,
            "seq": self.seq,
            "time": self.time,
            "failures": self.failures.to_dict(),
            "traffic": self.traffic_rows(),
            "events": dict(sorted(self.counts.items())),
            "enqueued": list(self.enqueued),
        }


def canonical_state_bytes(state: Union[MonitorState, Dict]) -> bytes:
    """The exact bytes ``state.json`` holds for a state (sorted, newline-terminated)."""
    document = state.to_dict() if isinstance(state, MonitorState) else state
    return (json.dumps(document, sort_keys=True, indent=2) + "\n").encode()


def read_events(path: Union[str, Path]) -> Iterator[Dict]:
    """Iterate the event documents of a log file, oldest first.

    A missing file yields nothing (a monitor that never observed anything
    has an empty history).  A torn final line — the signature of a crashed
    writer — is skipped; anything else malformed (bad JSON mid-file, a
    foreign schema, a sequence gap) raises :class:`SerializationError`,
    because silently replaying half a log would *look* like a consistent
    state while lying about it.
    """
    source = Path(path)
    try:
        raw = source.read_text()
    except FileNotFoundError:
        return
    lines = raw.splitlines()
    expected_seq = 1
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                return  # torn tail from a crashed writer: the log ends here
            raise SerializationError(
                f"{source}:{index + 1}: undecodable event line"
            ) from None
        if not isinstance(event, dict) or event.get("schema") != EVENTS_SCHEMA:
            raise SerializationError(
                f"{source}:{index + 1}: not a {EVENTS_SCHEMA} event"
            )
        if int(event.get("seq", -1)) != expected_seq:
            raise SerializationError(
                f"{source}:{index + 1}: expected seq {expected_seq}, "
                f"got {event.get('seq')!r}"
            )
        expected_seq += 1
        yield event


def replay_events(path: Union[str, Path]) -> MonitorState:
    """Reconstruct monitor state purely from an event log.

    Replay performs no probing and no mapping work — ``enqueue`` events
    carry everything the state needs — so it is cheap and side-effect-free.
    """
    state = MonitorState()
    for event in read_events(path):
        state.apply(event)
    return state


class EventLog:
    """Appender half of the log: write an event, fold it, one durable line.

    The live monitor owns one of these.  :meth:`append` assigns the next
    sequence number, applies the event to the in-memory state *through the
    same* :meth:`MonitorState.apply` the replayer uses, then appends the
    line — so the in-memory state can never drift from what a replay of
    the file would produce (modulo the final line during a crash, which
    replay then simply does not know about either).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.state = MonitorState()
        for event in read_events(self.path):
            self.state.apply(event)
        self._mend_tail()

    def _mend_tail(self) -> None:
        """Make the file end exactly where the replayed history ends.

        :func:`read_events` forgives a torn final line (the signature of a
        crashed writer) — but an *appender* must not leave it in place, or
        the next event would concatenate onto the fragment and the merged
        line would poison every future replay.  A torn tail is truncated
        away; a valid final event missing only its newline (the event *was*
        replayed) gets the newline appended.  Either way every append
        starts on a fresh line.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not raw:
            return
        tail = raw.splitlines(keepends=True)[-1]
        body = tail.strip()
        if body:
            try:
                json.loads(body)
            except ValueError:
                # the torn tail replay forgave: drop it
                with self.path.open("r+b") as log:
                    log.truncate(len(raw) - len(tail))
                return
        if not raw.endswith(b"\n"):
            with self.path.open("ab") as log:
                log.write(b"\n")

    def append(self, kind: str, t: float, payload: Dict) -> Dict:
        """Append one event; returns the full document written."""
        event = {"schema": EVENTS_SCHEMA, "seq": self.state.seq + 1,
                 "t": float(t), "type": kind}
        event.update(payload)
        self.state.apply(event)
        with self.path.open("a") as log:
            log.write(json.dumps(event, sort_keys=True) + "\n")
        return event
