"""Unit conventions and conversion helpers used throughout the library.

The paper quotes bandwidths in MB/s, frequencies in MHz and link widths in
bits.  Internally the library uses a single consistent set of base units so
that arithmetic never needs unit-juggling:

* bandwidth           — bytes per second (B/s)
* frequency           — hertz (Hz)
* latency             — seconds (s)
* link width          — bits
* area                — square millimetres (mm^2)
* power               — watts (W)
* energy              — joules (J)

The helpers below convert between the paper-facing units (MB/s, MHz, ns, ...)
and the internal base units.  They are deliberately trivial functions rather
than a unit-type system: the guide-recommended "most straightforward way"
keeps every call site readable (``mbps(200)`` reads exactly like the paper's
"200 MB/s").
"""

from __future__ import annotations

#: Bytes per megabyte — the paper uses decimal MB (10^6 bytes).
BYTES_PER_MB = 1_000_000.0

#: Hertz per megahertz.
HZ_PER_MHZ = 1_000_000.0

#: Hertz per gigahertz.
HZ_PER_GHZ = 1_000_000_000.0

#: Seconds per nanosecond.
SECONDS_PER_NS = 1e-9

#: Seconds per microsecond.
SECONDS_PER_US = 1e-6

#: Seconds per millisecond.
SECONDS_PER_MS = 1e-3


def mbps(value: float) -> float:
    """Convert a bandwidth in MB/s (paper units) to bytes/s (internal units)."""
    return float(value) * BYTES_PER_MB


def to_mbps(bytes_per_second: float) -> float:
    """Convert a bandwidth in bytes/s back to MB/s for reporting."""
    return float(bytes_per_second) / BYTES_PER_MB


def mhz(value: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return float(value) * HZ_PER_MHZ


def ghz(value: float) -> float:
    """Convert a frequency in GHz to Hz."""
    return float(value) * HZ_PER_GHZ


def to_mhz(hertz: float) -> float:
    """Convert a frequency in Hz back to MHz for reporting."""
    return float(hertz) / HZ_PER_MHZ


def ns(value: float) -> float:
    """Convert a latency in nanoseconds to seconds."""
    return float(value) * SECONDS_PER_NS


def us(value: float) -> float:
    """Convert a latency in microseconds to seconds."""
    return float(value) * SECONDS_PER_US


def ms(value: float) -> float:
    """Convert a latency in milliseconds to seconds."""
    return float(value) * SECONDS_PER_MS


def to_ns(seconds: float) -> float:
    """Convert a latency in seconds back to nanoseconds for reporting."""
    return float(seconds) / SECONDS_PER_NS


def link_capacity(frequency_hz: float, link_width_bits: int) -> float:
    """Raw capacity of a NoC link in bytes/s.

    A link transfers ``link_width_bits`` bits per cycle, so its capacity is
    ``frequency * width / 8`` bytes per second.  The paper's reference
    configuration (500 MHz, 32-bit links) therefore offers 2 GB/s per link.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    if link_width_bits <= 0:
        raise ValueError(f"link width must be positive, got {link_width_bits}")
    return frequency_hz * link_width_bits / 8.0
