"""Synthetic multi-use-case benchmark generators (Sp and Bot families).

Section 6.1 of the paper describes two classes of synthetic benchmarks that
mirror the application patterns of real SoCs:

* **Spread (Sp)** benchmarks — every core communicates with a few other
  cores, traffic is spread evenly over the design.  This models streaming
  architectures with many small local memories (the TV-processor style).
* **Bottleneck (Bot)** benchmarks — one or two bottleneck cores (shared
  external memory, external I/O devices) attract most of the traffic.  This
  models the set-top-box style with one large off-chip memory.

All benchmarks use 20 cores and 60-100 communicating pairs per use-case
(configurable), with bandwidth/latency values drawn from the 3-4 clusters of
:mod:`repro.gen.clusters` with small in-cluster deviations — exactly the
structure the paper describes.  Generation is deterministic for a given
seed.

Every generated use-case is individually feasible at the reference operating
point (the per-core traffic is rescaled to stay below a configurable
fraction of one NI link's capacity); the *combination* of many use-cases is
what stresses the worst-case baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SpecificationError
from repro.gen.clusters import TrafficCluster, default_video_clusters, pick_cluster
from repro.units import mbps

__all__ = [
    "SyntheticBenchmark",
    "SpreadBenchmark",
    "BottleneckBenchmark",
    "generate_benchmark",
]


@dataclass
class SyntheticBenchmark:
    """Common machinery of the synthetic benchmark families.

    Parameters
    ----------
    core_count:
        Number of cores in the design (20 in the paper's experiments).
    use_case_count:
        Number of use-cases to generate (the paper sweeps 2-40).
    flows_per_use_case:
        Inclusive (low, high) range of communicating pairs per use-case
        (60-100 in the paper).
    clusters:
        Traffic clusters flows are drawn from; defaults to the video-SoC
        clusters.
    seed:
        Seed of the deterministic pseudo-random generator.
    max_core_load:
        Per-use-case cap (bytes/s) on any single core's total injected or
        absorbed traffic; sampled traffic is rescaled to respect it so every
        individual use-case remains mappable at the reference 500 MHz /
        32-bit operating point.
    name:
        Name given to the generated :class:`UseCaseSet`.
    """

    core_count: int = 20
    use_case_count: int = 10
    flows_per_use_case: Tuple[int, int] = (60, 100)
    clusters: Sequence[TrafficCluster] = field(default_factory=default_video_clusters)
    seed: int = 1
    max_core_load: float = mbps(1500)
    name: str = "synthetic"

    #: Benchmark family label, overridden by subclasses.
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.core_count < 2:
            raise SpecificationError(f"need at least 2 cores, got {self.core_count}")
        if self.use_case_count < 1:
            raise SpecificationError(
                f"need at least one use-case, got {self.use_case_count}"
            )
        low, high = self.flows_per_use_case
        max_pairs = self.core_count * (self.core_count - 1)
        if low < 1 or high < low:
            raise SpecificationError(
                f"flows_per_use_case must be a valid (low, high) range, got "
                f"{self.flows_per_use_case}"
            )
        if high > max_pairs:
            raise SpecificationError(
                f"at most {max_pairs} distinct ordered pairs exist for "
                f"{self.core_count} cores; requested up to {high}"
            )
        if self.max_core_load <= 0:
            raise SpecificationError("max_core_load must be positive")

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def core_names(self) -> List[str]:
        """Names of the benchmark's cores."""
        return [f"core{i:02d}" for i in range(self.core_count)]

    def cores(self) -> List[Core]:
        """The benchmark's cores, with simple kind labels."""
        kinds = ["processor", "dsp", "accelerator", "memory", "io"]
        return [
            Core(name, kinds[index % len(kinds)])
            for index, name in enumerate(self.core_names())
        ]

    def generate(self) -> UseCaseSet:
        """Generate the full use-case set of the benchmark."""
        rng = random.Random(self.seed)
        cores = self.cores()
        use_cases = []
        for index in range(self.use_case_count):
            use_cases.append(self._generate_use_case(index, cores, rng))
        return UseCaseSet(use_cases, name=f"{self.name}-{self.kind}-{self.use_case_count}uc")

    # ------------------------------------------------------------------ #
    # per-use-case generation
    # ------------------------------------------------------------------ #
    def _generate_use_case(
        self, index: int, cores: Sequence[Core], rng: random.Random
    ) -> UseCase:
        low, high = self.flows_per_use_case
        flow_count = rng.randint(low, high)
        pairs = self._sample_pairs(flow_count, cores, rng)
        flows = []
        for source, destination in pairs:
            cluster = self._cluster_for_pair(source, destination, rng)
            flows.append(
                Flow(
                    source=source,
                    destination=destination,
                    bandwidth=cluster.sample_bandwidth(rng),
                    latency=cluster.latency,
                )
            )
        flows = self._rescale_for_feasibility(flows)
        return UseCase(f"uc{index:02d}", flows=flows, cores=cores)

    def _sample_pairs(
        self, count: int, cores: Sequence[Core], rng: random.Random
    ) -> List[Tuple[str, str]]:
        """Sample ``count`` distinct ordered core pairs (family-specific)."""
        raise NotImplementedError

    def _cluster_for_pair(
        self, source: str, destination: str, rng: random.Random
    ) -> TrafficCluster:
        """The cluster a pair's traffic is drawn from (family-specific hook).

        The cluster is chosen *per core pair*, deterministically from the
        benchmark seed, not per use-case: a port that carries HD video in
        one use-case carries HD video in every use-case it appears in (only
        the exact rate varies).  Without this, the worst-case baseline would
        be penalised by an artefact (the same pair drawing a heavy cluster
        in at least one of many use-cases) rather than by the genuine
        over-specification the paper describes.
        """
        del rng
        pair_rng = random.Random(f"{self.seed}:{source}->{destination}")
        return pick_cluster(self.clusters, pair_rng)

    def _rescale_for_feasibility(self, flows: List[Flow]) -> List[Flow]:
        """Scale a use-case's traffic so no core exceeds ``max_core_load``."""
        egress: Dict[str, float] = {}
        ingress: Dict[str, float] = {}
        for flow in flows:
            egress[flow.source] = egress.get(flow.source, 0.0) + flow.bandwidth
            ingress[flow.destination] = ingress.get(flow.destination, 0.0) + flow.bandwidth
        peak = max(
            max(egress.values(), default=0.0), max(ingress.values(), default=0.0)
        )
        if peak <= self.max_core_load or peak == 0.0:
            return flows
        factor = self.max_core_load / peak
        return [flow.scaled(factor) for flow in flows]


@dataclass
class SpreadBenchmark(SyntheticBenchmark):
    """Spread-communication (Sp) benchmarks: traffic spread over all cores."""

    kind: str = "spread"
    #: Maximum number of destination cores any core talks to in one use-case.
    max_partners: int = 6

    def _sample_pairs(
        self, count: int, cores: Sequence[Core], rng: random.Random
    ) -> List[Tuple[str, str]]:
        names = [core.name for core in cores]
        pairs: List[Tuple[str, str]] = []
        chosen = set()
        out_degree: Dict[str, int] = {name: 0 for name in names}
        attempts = 0
        while len(pairs) < count and attempts < count * 50:
            attempts += 1
            source, destination = rng.sample(names, 2)
            if (source, destination) in chosen:
                continue
            if out_degree[source] >= self.max_partners:
                continue
            chosen.add((source, destination))
            out_degree[source] += 1
            pairs.append((source, destination))
        if len(pairs) < count:
            # Degree limits made the target unreachable; fill with any
            # remaining distinct pairs so the flow count stays in range.
            for source in names:
                for destination in names:
                    if len(pairs) >= count:
                        break
                    if source != destination and (source, destination) not in chosen:
                        chosen.add((source, destination))
                        pairs.append((source, destination))
        return pairs


@dataclass
class BottleneckBenchmark(SyntheticBenchmark):
    """Bottleneck-communication (Bot) benchmarks: hubs attract most traffic.

    One or two bottleneck cores (a shared external memory and, optionally,
    an I/O bridge) terminate or source most flows; hub traffic is drawn from
    the heavier (video) clusters because memory traffic dominates set-top-box
    designs.
    """

    kind: str = "bottleneck"
    #: Number of bottleneck (hub) cores.
    hub_count: int = 2
    #: Fraction of flows that involve a hub core.
    hub_fraction: float = 0.7
    #: Probability that a hub-bound pair carries HD-class (heaviest cluster)
    #: traffic; the remaining hub pairs carry the second-heaviest cluster.
    hub_hd_fraction: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.hub_count < self.core_count:
            raise SpecificationError(
                f"hub_count must be in [1, {self.core_count - 1}], got {self.hub_count}"
            )
        if not 0.0 < self.hub_fraction <= 1.0:
            raise SpecificationError(
                f"hub_fraction must be in (0, 1], got {self.hub_fraction}"
            )

    def hub_names(self) -> List[str]:
        """Names of the bottleneck cores (the first ``hub_count`` cores)."""
        return self.core_names()[: self.hub_count]

    def cores(self) -> List[Core]:
        cores = super().cores()
        hubs = set(self.hub_names())
        return [
            Core(core.name, "memory" if core.name in hubs else core.kind)
            for core in cores
        ]

    def _sample_pairs(
        self, count: int, cores: Sequence[Core], rng: random.Random
    ) -> List[Tuple[str, str]]:
        names = [core.name for core in cores]
        hubs = self.hub_names()
        others = [name for name in names if name not in hubs]
        pairs: List[Tuple[str, str]] = []
        chosen = set()
        attempts = 0
        while len(pairs) < count and attempts < count * 50:
            attempts += 1
            if rng.random() < self.hub_fraction:
                hub = rng.choice(hubs)
                other = rng.choice(others)
                # Memory writes dominate reads roughly 60/40.
                pair = (other, hub) if rng.random() < 0.6 else (hub, other)
            else:
                pair = tuple(rng.sample(others, 2))
            if pair in chosen:
                continue
            chosen.add(pair)
            pairs.append(pair)
        return pairs

    def _cluster_for_pair(
        self, source: str, destination: str, rng: random.Random
    ) -> TrafficCluster:
        hubs = set(self.hub_names())
        if source in hubs or destination in hubs:
            # Memory traffic is video-dominated: hub pairs carry either the
            # heaviest (HD) or the second-heaviest (SD) cluster, again chosen
            # deterministically per pair.  The HD share is kept moderate so
            # that a single use-case never saturates the memory port — only
            # the worst-case combination of many use-cases does.
            heavy = sorted(self.clusters, key=lambda c: c.bandwidth, reverse=True)[:2]
            pair_rng = random.Random(f"{self.seed}:{source}->{destination}")
            if len(heavy) == 1 or pair_rng.random() < self.hub_hd_fraction:
                return heavy[0]
            return heavy[1]
        return super()._cluster_for_pair(source, destination, rng)


def generate_benchmark(
    kind: str,
    use_case_count: int,
    core_count: int = 20,
    seed: int = 1,
    flows_per_use_case: Tuple[int, int] = (60, 100),
    **overrides,
) -> UseCaseSet:
    """Generate a synthetic benchmark by family name (``"spread"`` / ``"bottleneck"``)."""
    families = {
        "spread": SpreadBenchmark,
        "sp": SpreadBenchmark,
        "bottleneck": BottleneckBenchmark,
        "bot": BottleneckBenchmark,
    }
    try:
        factory = families[kind.lower()]
    except KeyError:
        raise SpecificationError(
            f"unknown benchmark kind {kind!r}; expected one of {sorted(families)}"
        ) from None
    benchmark = factory(
        core_count=core_count,
        use_case_count=use_case_count,
        flows_per_use_case=flows_per_use_case,
        seed=seed,
        **overrides,
    )
    return benchmark.generate()
