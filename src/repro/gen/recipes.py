"""Named workload recipes: the campaign subsystem's workload vocabulary.

A *recipe* bundles a :func:`repro.gen.synthetic.generate_benchmark` call
with the mesh the workload is meant to stress, under a stable name that
campaign specs (and humans) can reference instead of re-spelling the knobs.
The registry spans the scaling axis the ROADMAP's open item 3 names: from
the paper-scale designs every benchmark already runs (20 cores, a 2x2
carries them) up to 8x8 and 16x16 meshes with hundreds of use cases —
the regime where the single-int free-set mask and minimal-path enumeration
start to hurt (see PERFORMANCE.md).

``mesh`` is the placement target for the refinement-style methods (the
unified flow would select the smallest feasible topology on its own — for
these designs that is far smaller than the mesh under study, so campaign
cells force it).  Recipes are plain data: resolving one never generates
the use-case set, so expanding a campaign over 16x16 recipes stays
instant; generation happens inside the jobs the cells become.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.exceptions import SpecificationError

__all__ = ["WORKLOAD_RECIPES", "workload_recipe", "recipe_names"]


#: name -> {"generator": generate_benchmark recipe, "mesh": (rows, cols) | None}
#:
#: Flow counts shrink as core counts grow: hundreds of flows per use case
#: on 48+ cores would saturate every NI link and make the workload about
#: infeasibility, not mapping quality.  The 8x8/16x16 entries mirror the
#: ``spread_mesh8x8`` benchmark's shape (sparse per-core fan-out) scaled up.
WORKLOAD_RECIPES: Dict[str, Dict] = {
    # paper scale — the designs every BENCH_mapper.json workload ran until
    # now; minimal topology, no forced mesh
    "paper_spread10": {
        "generator": {"kind": "spread", "use_case_count": 10, "seed": 3},
        "mesh": None,
    },
    "paper_spread40": {
        "generator": {"kind": "spread", "use_case_count": 40, "seed": 3},
        "mesh": None,
    },
    "paper_bottleneck10": {
        "generator": {"kind": "bottleneck", "use_case_count": 10, "seed": 3},
        "mesh": None,
    },
    # mid scale — 4x4 mesh, 16 cores
    "mesh4x4_spread24": {
        "generator": {
            "kind": "spread", "use_case_count": 24, "core_count": 16,
            "flows_per_use_case": [8, 14], "seed": 3,
        },
        "mesh": (4, 4),
    },
    # big mesh — 64 switches, 112 links, thousands of minimal paths
    "mesh8x8_spread120": {
        "generator": {
            "kind": "spread", "use_case_count": 120, "core_count": 48,
            "flows_per_use_case": [8, 14], "seed": 3,
        },
        "mesh": (8, 8),
    },
    "mesh8x8_bottleneck100": {
        "generator": {
            "kind": "bottleneck", "use_case_count": 100, "core_count": 48,
            "flows_per_use_case": [8, 14], "seed": 3,
        },
        "mesh": (8, 8),
    },
    # the 16x16 frontier — 256 switches; minimal-path enumeration between
    # distant corners is the dominant cost here (PERFORMANCE.md profile)
    "mesh16x16_spread200": {
        "generator": {
            "kind": "spread", "use_case_count": 200, "core_count": 160,
            "flows_per_use_case": [6, 10], "seed": 3,
        },
        "mesh": (16, 16),
    },
}


def recipe_names() -> Tuple[str, ...]:
    """The registered recipe names, sorted."""
    return tuple(sorted(WORKLOAD_RECIPES))


def workload_recipe(name: str) -> Tuple[Dict, Optional[Tuple[int, int]]]:
    """Resolve a recipe name to its ``(generator, mesh)`` pair.

    The generator dictionary is a fresh copy (callers mutate it to override
    seeds); the mesh is ``None`` for minimal-topology workloads.
    """
    try:
        entry = WORKLOAD_RECIPES[name]
    except KeyError:
        raise SpecificationError(
            f"unknown workload recipe {name!r}; expected one of "
            f"{list(recipe_names())}"
        ) from None
    mesh = entry["mesh"]
    return dict(entry["generator"]), None if mesh is None else tuple(mesh)
