"""Traffic-parameter clusters used by the benchmark generators.

The paper observes that video-processing SoC traffic falls into a few (3-4)
clusters: high-definition video streams need a few hundred MB/s, standard-
definition streams a few tens of MB/s, audio streams a few MB/s, and control
streams need almost no bandwidth but are latency-critical.  The synthetic
benchmarks draw every flow's bandwidth from one of these clusters with a
small deviation around the cluster value, which is exactly what
:class:`TrafficCluster` models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.exceptions import SpecificationError
from repro.units import mbps, us

__all__ = ["TrafficCluster", "default_video_clusters", "pick_cluster"]


@dataclass(frozen=True)
class TrafficCluster:
    """One cluster of traffic-flow parameters.

    Parameters
    ----------
    name:
        Label of the cluster (``"hd_video"``, ``"control"`` ...).
    bandwidth:
        Central bandwidth value in bytes/s.
    deviation:
        Relative spread of the cluster: a sampled flow's bandwidth is drawn
        uniformly from ``bandwidth * (1 ± deviation)``.
    latency:
        Latency constraint (seconds) given to flows of this cluster.
    weight:
        Relative probability of a flow belonging to this cluster.
    """

    name: str
    bandwidth: float
    deviation: float
    latency: float
    weight: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SpecificationError(f"cluster {self.name!r}: bandwidth must be positive")
        if not 0.0 <= self.deviation < 1.0:
            raise SpecificationError(
                f"cluster {self.name!r}: deviation must be in [0, 1), got {self.deviation}"
            )
        if self.latency <= 0:
            raise SpecificationError(f"cluster {self.name!r}: latency must be positive")
        if self.weight <= 0:
            raise SpecificationError(f"cluster {self.name!r}: weight must be positive")

    def sample_bandwidth(self, rng: random.Random) -> float:
        """Draw one flow bandwidth from the cluster (bytes/s)."""
        low = self.bandwidth * (1.0 - self.deviation)
        high = self.bandwidth * (1.0 + self.deviation)
        return rng.uniform(low, high)


def default_video_clusters() -> Tuple[TrafficCluster, ...]:
    """The paper's 4 video-SoC traffic clusters (HD, SD, audio, control)."""
    return (
        TrafficCluster("hd_video", bandwidth=mbps(150), deviation=0.25,
                       latency=us(100), weight=0.20),
        TrafficCluster("sd_video", bandwidth=mbps(40), deviation=0.25,
                       latency=us(200), weight=0.35),
        TrafficCluster("audio", bandwidth=mbps(4), deviation=0.25,
                       latency=us(500), weight=0.25),
        TrafficCluster("control", bandwidth=mbps(1), deviation=0.20,
                       latency=us(2), weight=0.20),
    )


def pick_cluster(
    clusters: Sequence[TrafficCluster], rng: random.Random
) -> TrafficCluster:
    """Pick one cluster according to the clusters' relative weights."""
    if not clusters:
        raise SpecificationError("at least one traffic cluster is required")
    total = sum(cluster.weight for cluster in clusters)
    threshold = rng.uniform(0.0, total)
    cumulative = 0.0
    for cluster in clusters:
        cumulative += cluster.weight
        if threshold <= cumulative:
            return cluster
    return clusters[-1]
