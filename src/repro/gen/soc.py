"""Parameterised stand-ins for the paper's real SoC designs (D1-D4).

The paper evaluates four simplified versions of real Philips SoC designs:

* **D1** — a set-top-box SoC with 4 use-cases (Viper2-style), built around
  one large external memory through which almost all data passes.
* **D2** — a scaled set-top-box SoC with 20 use-cases.
* **D3** — a TV-processor SoC with 8 use-cases, using a streaming
  architecture with many small local memories, so traffic is spread across
  the design and differs strongly between picture modes.
* **D4** — a scaled TV-processor SoC with 20 use-cases.

The original traffic specifications are proprietary, so these generators
synthesise designs with the *structure* the paper describes: the set-top box
is bottlenecked on its external memory and its use-cases overlap heavily
(all of them stream through the same memory), while the TV processor
activates different processing pipelines in different picture modes, so its
use-cases differ strongly — which is exactly the property that makes the
worst-case baseline degrade on D3/D4.

Each use-case is composed from *function templates* (decode, display,
record, scale, enhance, ...), whose bandwidths are drawn from the video
traffic clusters with per-use-case variation.  Generation is deterministic
per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.usecase import Core, Flow, UseCase, UseCaseSet
from repro.exceptions import SpecificationError
from repro.units import mbps, us

__all__ = ["SocDesign", "set_top_box_design", "tv_processor_design", "standard_designs"]


@dataclass(frozen=True)
class SocDesign:
    """A named SoC benchmark design with its generated use-case set."""

    name: str
    description: str
    use_cases: UseCaseSet

    @property
    def use_case_count(self) -> int:
        """Number of use-cases in the design."""
        return len(self.use_cases)

    @property
    def core_count(self) -> int:
        """Number of cores in the design."""
        return len(self.use_cases.all_cores())


# --------------------------------------------------------------------------- #
# set-top box (external-memory-centric, Viper2-style)
# --------------------------------------------------------------------------- #

_STB_CORES = [
    Core("ext_mem", "memory"),
    Core("cpu", "processor"),
    Core("mpeg_dec0", "accelerator"),
    Core("mpeg_dec1", "accelerator"),
    Core("video_in", "io"),
    Core("video_out", "io"),
    Core("audio_dsp", "dsp"),
    Core("audio_out", "io"),
    Core("graphics", "accelerator"),
    Core("scaler", "accelerator"),
    Core("transport", "io"),
    Core("disk_ctrl", "io"),
    Core("usb", "io"),
    Core("ethernet", "io"),
    Core("crypto", "accelerator"),
    Core("pci", "io"),
]

#: Set-top-box function templates: (name, flows through the external memory).
#: Each flow is (source, destination, nominal bandwidth in MB/s, latency in us).
_STB_FUNCTIONS: Dict[str, List[Tuple[str, str, float, float]]] = {
    "hd_decode": [
        ("transport", "ext_mem", 40, 200),
        ("ext_mem", "mpeg_dec0", 180, 100),
        ("mpeg_dec0", "ext_mem", 220, 100),
        ("ext_mem", "video_out", 240, 50),
        ("cpu", "mpeg_dec0", 2, 5),
    ],
    "sd_decode": [
        ("transport", "ext_mem", 12, 200),
        ("ext_mem", "mpeg_dec1", 45, 100),
        ("mpeg_dec1", "ext_mem", 55, 100),
        ("ext_mem", "scaler", 50, 100),
        ("scaler", "ext_mem", 60, 100),
        ("cpu", "mpeg_dec1", 2, 5),
    ],
    "display": [
        ("ext_mem", "video_out", 200, 50),
        ("graphics", "ext_mem", 70, 200),
        ("ext_mem", "graphics", 60, 200),
        ("cpu", "video_out", 1, 5),
    ],
    "record": [
        ("video_in", "ext_mem", 90, 200),
        ("ext_mem", "disk_ctrl", 95, 300),
        ("cpu", "disk_ctrl", 2, 5),
    ],
    "audio": [
        ("ext_mem", "audio_dsp", 6, 300),
        ("audio_dsp", "ext_mem", 6, 300),
        ("audio_dsp", "audio_out", 4, 100),
        ("cpu", "audio_dsp", 1, 5),
    ],
    "internet": [
        ("ethernet", "ext_mem", 25, 400),
        ("ext_mem", "cpu", 60, 200),
        ("cpu", "ext_mem", 50, 200),
        ("crypto", "ext_mem", 20, 400),
        ("ext_mem", "crypto", 20, 400),
    ],
    "file_transfer": [
        ("usb", "ext_mem", 30, 400),
        ("ext_mem", "disk_ctrl", 35, 400),
        ("cpu", "usb", 1, 5),
    ],
    "pip": [
        ("ext_mem", "scaler", 90, 100),
        ("scaler", "ext_mem", 90, 100),
        ("ext_mem", "video_out", 110, 50),
    ],
}

#: Function mixes for the base 4 set-top-box use-cases (D1).
_STB_BASE_USE_CASES: List[Tuple[str, List[str]]] = [
    ("hd_playback", ["hd_decode", "display", "audio"]),
    ("sd_playback_record", ["sd_decode", "display", "audio", "record"]),
    ("pip_browsing", ["sd_decode", "pip", "audio", "internet"]),
    ("file_services", ["file_transfer", "internet", "audio"]),
]


def _build_use_case(
    name: str,
    functions: Sequence[str],
    templates: Dict[str, List[Tuple[str, str, float, float]]],
    cores: Sequence[Core],
    rng: random.Random,
    scale_range: Tuple[float, float] = (0.8, 1.2),
    bandwidth_scale: float = 1.0,
) -> UseCase:
    """Instantiate one use-case from a list of function templates.

    Each template's nominal bandwidths are scaled by a per-use-case random
    factor (picture resolutions, bit-rates and codec settings differ between
    use-cases), and flows sharing a core pair are merged by the use-case
    itself (bandwidths add up).
    """
    use_case = UseCase(name, cores=cores)
    for function in functions:
        try:
            template = templates[function]
        except KeyError:
            raise SpecificationError(f"unknown function template {function!r}") from None
        scale = rng.uniform(*scale_range) * bandwidth_scale
        for source, destination, bandwidth_mbps, latency_us in template:
            use_case.add_flow(
                Flow(
                    source=source,
                    destination=destination,
                    bandwidth=mbps(bandwidth_mbps * scale),
                    latency=us(latency_us),
                )
            )
    return use_case


def set_top_box_design(
    use_case_count: int = 4,
    seed: int = 7,
    name: str = "set-top-box",
    bandwidth_scale: float = 1.4,
) -> SocDesign:
    """A set-top-box SoC design (D1 with 4 use-cases, D2 with 20).

    The first four use-cases are the canonical Viper2-style modes; further
    use-cases are variations that mix the same function templates with
    different scaling factors (different channels, resolutions and
    concurrent services), which keeps the traffic memory-centric and highly
    overlapping across use-cases.
    """
    if use_case_count < 1:
        raise SpecificationError("use_case_count must be at least 1")
    rng = random.Random(seed)
    function_names = list(_STB_FUNCTIONS)
    use_cases: List[UseCase] = []
    for index in range(use_case_count):
        if index < len(_STB_BASE_USE_CASES):
            base_name, functions = _STB_BASE_USE_CASES[index]
            uc_name = base_name
        else:
            count = rng.randint(2, 4)
            functions = rng.sample(function_names, count)
            uc_name = f"stb_mode{index:02d}"
        use_cases.append(
            _build_use_case(uc_name, functions, _STB_FUNCTIONS, _STB_CORES, rng,
                            bandwidth_scale=bandwidth_scale)
        )
    return SocDesign(
        name=name,
        description=(
            f"Set-top-box SoC, {use_case_count} use-cases, external-memory-centric "
            "(bottleneck) traffic"
        ),
        use_cases=UseCaseSet(use_cases, name=name),
    )


# --------------------------------------------------------------------------- #
# TV processor (streaming architecture with local memories)
# --------------------------------------------------------------------------- #

_TV_CORES = [
    Core("hdmi_in", "io"),
    Core("tuner_in", "io"),
    Core("noise_red", "accelerator"),
    Core("deinterlace", "accelerator"),
    Core("scaler_main", "accelerator"),
    Core("scaler_pip", "accelerator"),
    Core("frame_mem0", "memory"),
    Core("frame_mem1", "memory"),
    Core("frame_mem2", "memory"),
    Core("sharpness", "accelerator"),
    Core("color_proc", "accelerator"),
    Core("motion_comp", "accelerator"),
    Core("blender", "accelerator"),
    Core("osd", "accelerator"),
    Core("panel_out", "io"),
    Core("audio_proc", "dsp"),
    Core("audio_out", "io"),
    Core("host_cpu", "processor"),
    Core("teletext", "accelerator"),
    Core("hist_analyzer", "accelerator"),
]

_TV_FUNCTIONS: Dict[str, List[Tuple[str, str, float, float]]] = {
    "hd_main_path": [
        ("hdmi_in", "noise_red", 190, 100),
        ("noise_red", "frame_mem0", 190, 100),
        ("frame_mem0", "deinterlace", 200, 100),
        ("deinterlace", "scaler_main", 210, 100),
        ("scaler_main", "frame_mem1", 210, 100),
        ("frame_mem1", "sharpness", 210, 100),
        ("sharpness", "color_proc", 210, 100),
        ("color_proc", "blender", 215, 50),
    ],
    "sd_main_path": [
        ("tuner_in", "noise_red", 45, 200),
        ("noise_red", "frame_mem0", 45, 200),
        ("frame_mem0", "deinterlace", 50, 200),
        ("deinterlace", "scaler_main", 55, 200),
        ("scaler_main", "frame_mem1", 55, 200),
        ("frame_mem1", "color_proc", 55, 200),
        ("color_proc", "blender", 60, 100),
    ],
    "pip_path": [
        ("tuner_in", "scaler_pip", 45, 200),
        ("scaler_pip", "frame_mem2", 30, 200),
        ("frame_mem2", "blender", 35, 100),
    ],
    "motion_flow": [
        ("frame_mem1", "motion_comp", 150, 100),
        ("motion_comp", "frame_mem2", 150, 100),
        ("frame_mem2", "scaler_main", 155, 100),
    ],
    "enhance": [
        ("frame_mem1", "hist_analyzer", 60, 400),
        ("hist_analyzer", "host_cpu", 2, 10),
        ("host_cpu", "color_proc", 2, 10),
    ],
    "osd_overlay": [
        ("host_cpu", "osd", 25, 300),
        ("osd", "blender", 40, 100),
    ],
    "teletext_svc": [
        ("tuner_in", "teletext", 3, 500),
        ("teletext", "osd", 5, 300),
        ("host_cpu", "teletext", 1, 10),
    ],
    "audio_path": [
        ("hdmi_in", "audio_proc", 6, 300),
        ("audio_proc", "audio_out", 5, 100),
        ("host_cpu", "audio_proc", 1, 10),
    ],
    "display_out": [
        ("blender", "panel_out", 230, 50),
        ("host_cpu", "panel_out", 1, 10),
    ],
}

#: Function mixes of the 8 canonical TV-processor picture modes (D3).
_TV_BASE_USE_CASES: List[Tuple[str, List[str]]] = [
    ("hd_cinema", ["hd_main_path", "motion_flow", "enhance", "audio_path", "display_out"]),
    ("hd_sport", ["hd_main_path", "motion_flow", "audio_path", "display_out"]),
    ("sd_broadcast", ["sd_main_path", "enhance", "audio_path", "display_out"]),
    ("sd_pip", ["sd_main_path", "pip_path", "osd_overlay", "audio_path", "display_out"]),
    ("hd_pip", ["hd_main_path", "pip_path", "osd_overlay", "audio_path", "display_out"]),
    ("split_screen", ["sd_main_path", "pip_path", "motion_flow", "audio_path", "display_out"]),
    ("teletext_mode", ["sd_main_path", "teletext_svc", "osd_overlay", "audio_path", "display_out"]),
    ("menu_browse", ["osd_overlay", "teletext_svc", "audio_path", "display_out"]),
]


def tv_processor_design(
    use_case_count: int = 8,
    seed: int = 11,
    name: str = "tv-processor",
    bandwidth_scale: float = 3.0,
) -> SocDesign:
    """A TV-processor SoC design (D3 with 8 use-cases, D4 with 20).

    Traffic streams between dedicated accelerators and small local frame
    memories, so load is spread over the design and the set of active
    components differs strongly between picture modes.
    """
    if use_case_count < 1:
        raise SpecificationError("use_case_count must be at least 1")
    rng = random.Random(seed)
    function_names = list(_TV_FUNCTIONS)
    use_cases: List[UseCase] = []
    for index in range(use_case_count):
        if index < len(_TV_BASE_USE_CASES):
            base_name, functions = _TV_BASE_USE_CASES[index]
            uc_name = base_name
        else:
            count = rng.randint(3, 5)
            functions = rng.sample(function_names, count)
            if "display_out" not in functions:
                functions.append("display_out")
            uc_name = f"tv_mode{index:02d}"
        use_cases.append(
            _build_use_case(uc_name, functions, _TV_FUNCTIONS, _TV_CORES, rng,
                            scale_range=(0.6, 1.3), bandwidth_scale=bandwidth_scale)
        )
    return SocDesign(
        name=name,
        description=(
            f"TV-processor SoC, {use_case_count} use-cases, streaming traffic spread "
            "over local memories"
        ),
        use_cases=UseCaseSet(use_cases, name=name),
    )


def standard_designs(seed: int = 7) -> Dict[str, SocDesign]:
    """The four SoC designs of the paper's evaluation (D1-D4)."""
    return {
        "D1": set_top_box_design(use_case_count=4, seed=seed, name="D1-set-top-box-4uc"),
        "D2": set_top_box_design(use_case_count=20, seed=seed + 1, name="D2-set-top-box-20uc"),
        "D3": tv_processor_design(use_case_count=8, seed=seed + 2, name="D3-tv-processor-8uc"),
        "D4": tv_processor_design(use_case_count=20, seed=seed + 3, name="D4-tv-processor-20uc"),
    }
