"""Workload generators: synthetic benchmarks and SoC design models.

The paper evaluates the methodology on four simplified real SoC designs
(set-top box and TV-processor SoCs, 4 to 20 use-cases each) and on two
families of synthetic benchmarks (Spread and Bottleneck).  The original
traffic specifications are Philips-internal, so this package generates
parameterised equivalents with the structure the paper describes:

* :mod:`repro.gen.clusters` — the 3-4 bandwidth/latency clusters video SoC
  traffic falls into (HD video, SD video, audio, latency-critical control).
* :mod:`repro.gen.synthetic` — Spread (Sp) and Bottleneck (Bot) benchmark
  generators: 20 cores, 60-100 flows per use-case, cluster-valued traffic.
* :mod:`repro.gen.soc` — the D1-D4 SoC design stand-ins (set-top box with
  external-memory-centric traffic, TV processor with streaming/local-memory
  traffic).
"""

from repro.gen.clusters import TrafficCluster, default_video_clusters
from repro.gen.synthetic import (
    BottleneckBenchmark,
    SpreadBenchmark,
    SyntheticBenchmark,
    generate_benchmark,
)
from repro.gen.soc import (
    SocDesign,
    set_top_box_design,
    tv_processor_design,
    standard_designs,
)
from repro.gen.recipes import WORKLOAD_RECIPES, recipe_names, workload_recipe

__all__ = [
    "WORKLOAD_RECIPES",
    "recipe_names",
    "workload_recipe",
    "TrafficCluster",
    "default_video_clusters",
    "SyntheticBenchmark",
    "SpreadBenchmark",
    "BottleneckBenchmark",
    "generate_benchmark",
    "SocDesign",
    "set_top_box_design",
    "tv_processor_design",
    "standard_designs",
]
