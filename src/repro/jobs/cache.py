"""Persistent on-disk job-result cache.

Closes ROADMAP follow-up (e): the :class:`~repro.core.engine.MappingEngine`
caches live per process, so a sweep farm that re-evaluates the same designs
across many invocations — or many worker machines sharing a filesystem —
used to redo every mapping.  :class:`JobCache` persists finished
:class:`~repro.jobs.runner.JobResult` envelopes as one JSON file per key,
where the key is :func:`repro.jobs.spec.job_hash` — a content hash over the
resolved job (design contents, operating point, mapper configuration, job
kind and knobs) — so a hit is valid by construction and never stale.

The store is deliberately simple and concurrency-tolerant:

* one file per key, named by the hash — no index to corrupt, safe to prune
  with ``rm`` or share over NFS;
* writes go through a per-process temporary file and ``os.replace`` — a
  reader never observes a half-written entry, and concurrent writers of the
  same key overwrite each other with identical content (payloads are pure
  functions of the key);
* unreadable or corrupt entries count as misses and are re-computed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.jobs.store import EngineStateStore

__all__ = ["JobCache"]


class JobCache:
    """Directory-backed result store keyed by job content hashes.

    Besides the envelope files, the cache owns an
    :class:`~repro.jobs.store.EngineStateStore` under
    ``<directory>/engine-state/`` — the seed corpus is *delegated* to it:
    engines attached to the store read previously exported mappings and
    fixed-placement evaluations directly from disk, keyed, instead of the
    whole corpus being collected from envelopes and shipped around (see
    :meth:`sync_store` for how envelope-borne exports are folded in).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: the keyed on-disk engine-state store this cache's seed corpus
        #: lives in (envelope files stay at the top level; the store's
        #: subtree never collides with the ``*.json`` envelope glob)
        self.store = EngineStateStore(self.directory / "engine-state")
        #: number of lookups answered from disk / missed since construction
        self.hits = 0
        self.misses = 0
        #: number of results written since construction
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """The file one key's result lives in."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored result document for a key, or ``None`` on a miss."""
        target = self.path_for(key)
        try:
            document = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, key: str, document: Dict) -> Path:
        """Atomically store one result document; returns the path written."""
        target = self.path_for(key)
        scratch = target.with_suffix(f".tmp.{os.getpid()}")
        scratch.write_text(json.dumps(document, indent=2))
        os.replace(scratch, target)
        self.stores += 1
        return target

    def engine_exports(self, seen: Optional[set] = None) -> List[Dict]:
        """Every engine-result entry attached to the stored envelopes.

        Stored :class:`~repro.jobs.runner.JobResult` documents carry the
        executing engine's :meth:`~repro.core.engine.MappingEngine.export_results`
        entries; this collects them across the whole store (unreadable
        entries are skipped, and the hit/miss counters are deliberately left
        untouched — seeding is not a lookup).  Feed the list to
        :meth:`~repro.core.engine.MappingEngine.import_results`, or use
        :meth:`seed_engine` directly.

        ``seen`` makes repeated collection incremental: envelope file names
        recorded in the set are skipped and newly read names are added, so
        a long-lived caller (the service's :class:`JobRunner`) re-parses
        only the envelopes stored since its last call instead of the whole
        directory on every drain.
        """
        exports: List[Dict] = []
        for stored in sorted(self.directory.glob("*.json")):
            if seen is not None and stored.name in seen:
                continue
            try:
                document = json.loads(stored.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if seen is not None:
                seen.add(stored.name)
            if not isinstance(document, dict):
                continue
            entries = document.get("engine_results")
            if isinstance(entries, list):
                exports.extend(entry for entry in entries if isinstance(entry, dict))
        return exports

    def sync_store(self, seen: Optional[set] = None) -> Dict[str, int]:
        """Fold envelope-borne engine exports into the engine-state store.

        Envelopes written before the store existed (or by foreign writers
        that only drop result documents) carry their engine exports inline;
        this reads them (incrementally, via the same ``seen`` discipline as
        :meth:`engine_exports`) and ingests them into :attr:`store`, after
        which store-attached engines can read them keyed.  Idempotent: the
        store skips keys it already holds.
        """
        return self.store.ingest(self.engine_exports(seen=seen))

    def seed_engine(self, engine) -> int:
        """Seed a :class:`~repro.core.engine.MappingEngine` from this cache.

        Closes ROADMAP follow-up (h): a fresh engine inherits every mapping
        any cached job computed, so a job that merely *contains* one of
        those mappings (a refine job whose initial mapping a design-flow job
        already produced, a frequency probe at an already-solved operating
        point) performs zero mapping re-evaluations.  Also attaches
        :attr:`store`, so fixed-placement evaluations a sibling run
        persisted are read on demand too.  Returns the number of result
        entries the engine newly indexed from the envelopes.
        """
        engine.attach_store(self.store)
        return engine.import_results(self.engine_exports())

    def keys(self) -> Iterator[str]:
        """All keys currently stored."""
        for entry in sorted(self.directory.glob("*.json")):
            yield entry.stem

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for entry in self.directory.glob("*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
