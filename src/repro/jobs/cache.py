"""Persistent on-disk job-result cache.

Closes ROADMAP follow-up (e): the :class:`~repro.core.engine.MappingEngine`
caches live per process, so a sweep farm that re-evaluates the same designs
across many invocations — or many worker machines sharing a filesystem —
used to redo every mapping.  :class:`JobCache` persists finished
:class:`~repro.jobs.runner.JobResult` envelopes as one JSON file per key,
where the key is :func:`repro.jobs.spec.job_hash` — a content hash over the
resolved job (design contents, operating point, mapper configuration, job
kind and knobs) — so a hit is valid by construction and never stale.

The store is deliberately simple and concurrency-tolerant:

* one file per key, named by the hash — no index to corrupt, safe to prune
  with ``rm`` or share over NFS;
* writes go through a per-process temporary file and ``os.replace`` — a
  reader never observes a half-written entry, and concurrent writers of the
  same key overwrite each other with identical content (payloads are pure
  functions of the key);
* unreadable or corrupt entries count as misses and are re-computed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

__all__ = ["JobCache"]


class JobCache:
    """Directory-backed result store keyed by job content hashes."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: number of lookups answered from disk / missed since construction
        self.hits = 0
        self.misses = 0
        #: number of results written since construction
        self.stores = 0

    def path_for(self, key: str) -> Path:
        """The file one key's result lives in."""
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored result document for a key, or ``None`` on a miss."""
        target = self.path_for(key)
        try:
            document = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, key: str, document: Dict) -> Path:
        """Atomically store one result document; returns the path written."""
        target = self.path_for(key)
        scratch = target.with_suffix(f".tmp.{os.getpid()}")
        scratch.write_text(json.dumps(document, indent=2))
        os.replace(scratch, target)
        self.stores += 1
        return target

    def keys(self) -> Iterator[str]:
        """All keys currently stored."""
        for entry in sorted(self.directory.glob("*.json")):
            yield entry.stem

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        removed = 0
        for entry in self.directory.glob("*.json"):
            entry.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
