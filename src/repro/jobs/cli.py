"""The ``python -m repro`` / ``repro`` command-line front door.

Three subcommands cover the common workflows without writing any Python:

``repro run job.json [more.json ...]``
    Execute job files (each holding one job, a list, or ``{"jobs": [...]}``)
    — optionally in parallel and against a persistent cache::

        python -m repro run examples/jobs/quickstart_job.json \\
            --workers 4 --cache-dir .repro-cache --out results.json

``repro sweep --study use_case_count --benchmark spread --counts 2,5,10``
    Build and run one :class:`~repro.jobs.spec.SweepJob` from flags.

``repro worst-case design.json``
    Map a use-case-set file with the worst-case baseline.

``repro failures DESIGN.json [--provision RxC] [--baseline RESULT.json]``
    Failure-sweep analysis: enumerate every single link/switch failure of
    the baseline mapping's topology (or just the failures named with
    ``--fail-link A,B`` / ``--fail-switch N``) and report which break
    schedulability, how many groups each repair had to remap, and at what
    cost (:mod:`repro.analysis.failures`)::

        python -m repro failures examples/designs/mesh_2x2_design.json \\
            --provision 3x3
        python -m repro failures design.json --provision 3x3 \\
            --fail-link 0,1 --compare

``repro gap DESIGN.json [--solver auto|pulp|native] [--report-dir DIR]``
    Optimality-gap measurement: run the exact backend
    (:mod:`repro.optimize.ilp`) next to the ordinary heuristic mapping of
    the same design (and, with ``--refine-iterations N``, an annealing
    refinement of it) and report heuristic-vs-optimal cost gaps.
    ``--report-dir DIR`` writes a byte-deterministic ``gap_report.json``
    plus a ``gap_report.md`` digest; ``--spread N`` generates a synthetic
    design instead of reading a file.  Exact search is exponential — meant
    for small/medium specs (``--node-limit`` bounds it)::

        python -m repro gap examples/designs/mesh_2x2_design.json \\
            --solver native --report-dir gap-out

``repro campaign run|report|status CAMPAIGN.json [--out-dir DIR]``
    Drive a declarative study matrix (:mod:`repro.campaign`): ``run``
    executes the campaign's expanded cells resumably (settled cells under
    ``OUT/cells/`` are never re-executed) and reduces them into a ranked,
    byte-deterministic ``report.json``, a markdown digest and an appended
    ``trajectory.jsonl`` line; ``report`` re-reduces from whatever cells
    are settled; ``status`` prints progress read-only.  ``--submit INBOX``
    fans the pending cells out to a ``repro serve`` inbox instead of
    executing locally, and ``--collect INBOX`` folds the farm's result
    envelopes back in before executing the remainder::

        python -m repro campaign run study.json --workers 4
        python -m repro campaign status study.json

``repro serve INBOX [--once] [--poll-interval S] [--status]``
    Run the job-directory service loop
    (:class:`~repro.jobs.service.JobDirectoryService`): watch ``INBOX`` for
    ``*.json`` job specs, execute them, settle them into ``done/`` or
    ``failed/`` and append to ``INBOX/manifest.jsonl`` (rotated at a size
    threshold).  ``--once`` drains the inbox and exits (what CI and tests
    drive); without it the service polls until interrupted.  Transiently
    failing files (crashes, timeouts, corrupt results) are retried with
    backoff up to ``--max-attempts`` and then quarantined;
    ``--job-timeout S`` runs each attempt in a terminable child process.
    ``--status`` prints the inbox's aggregate state (file counts, the whole
    rotated manifest history, retry/quarantine totals) read-only and
    exits; given several inboxes it adds a fleet summary across all of
    them, and with ``--cache-dir`` the engine-state store's footprint
    (without creating it)::

        python -m repro serve jobs-inbox --once --workers 4 \\
            --cache-dir .repro-cache
        python -m repro serve jobs-inbox --status

``repro monitor INBOX --probe-script F [--period S] [--once] [--replay]``
    Run the live-operations loop (:class:`repro.ops.Monitor`): poll the
    probe source every ``--period`` seconds, append observed link/switch
    failures, heals and traffic re-characterisations to the crash-
    replayable ``INBOX/monitor/events.jsonl``, and enqueue a warm
    :class:`~repro.jobs.spec.RepairJob` into ``INBOX`` for every change
    (escalated to a full remap when the splice repair reports
    unrepairable use cases).  ``--replay`` reconstructs monitor state
    purely from the event log (``--replay-out FILE`` writes bytes
    identical to the live ``state.json``)::

        python -m repro monitor jobs-inbox --probe-script probe.json \\
            --spread 8 --provision 3x3 --once --cache-dir .repro-cache
        python -m repro monitor jobs-inbox --replay

Every subcommand accepts ``--workers N`` (process-pool fan-out) and
``--cache-dir DIR`` (persistent result cache; executions additionally
warm-start from the cache's engine-state store unless ``--no-seed`` is
given); all but ``serve`` also take ``--out FILE`` (write the full
:class:`~repro.jobs.runner.JobResult` envelopes as JSON — ``serve`` writes
per-file envelopes into ``INBOX/results/`` instead).  A short
human-readable digest always goes to stdout.  Exit status is 0 on success
and 1 on any error (for ``serve --once``: if any submitted file failed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def _fail(message: str) -> int:
    """The one-line CLI diagnostic contract: ``error: ...`` on stderr, 1.

    Every subcommand funnels its own early validation through this helper
    (and :func:`main` routes raised :class:`ReproError`/:class:`OSError`
    through the same shape), so a malformed spec — campaign, job file,
    design — always dies with a single diagnostic line, never a traceback.
    """
    print(f"error: {message}", file=sys.stderr)
    return 1


def _add_common_options(
    parser: argparse.ArgumentParser, include_out: bool = True
) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="process-pool workers for job execution (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="directory of the persistent result cache (created if missing); "
             "already-computed jobs are returned from disk instead of re-run, "
             "and executions read previously computed engine state from the "
             "cache's engine-state store",
    )
    parser.add_argument(
        "--no-seed", action="store_true",
        help="do not warm-start executions from the cache's engine-state "
             "store (only meaningful with --cache-dir)",
    )
    if include_out:
        parser.add_argument(
            "--out", default=None, metavar="FILE",
            help="write the full JSON result envelopes to FILE",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative job runner for the multi-use-case NoC mapping "
                    "methodology (Murali et al., DATE 2006 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute one or more job JSON files",
        description="Execute job files; each may hold a single job object, a "
                    "list of jobs, or a {\"jobs\": [...]} wrapper.",
    )
    run.add_argument("job_files", nargs="+", metavar="JOB.json")
    _add_common_options(run)

    sweep = commands.add_parser(
        "sweep", help="run one analysis study without writing a job file",
    )
    sweep.add_argument(
        "--study", default="use_case_count",
        help="study name (default: use_case_count); see repro.jobs.SWEEP_STUDIES",
    )
    sweep.add_argument("--benchmark", default="spread",
                       help="synthetic benchmark family (spread / bottleneck)")
    sweep.add_argument("--counts", default=None, metavar="N,N,...",
                       help="comma-separated use-case counts for the sweep")
    sweep.add_argument("--core-count", type=int, default=20)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument("--design", default=None, metavar="DESIGN.json",
                       help="use-case-set file (required by the ablation studies)")
    _add_common_options(sweep)

    worst = commands.add_parser(
        "worst-case", help="map a use-case-set file with the worst-case baseline",
    )
    worst.add_argument("design_file", metavar="DESIGN.json")
    _add_common_options(worst)

    refine = commands.add_parser(
        "refine", help="map a design and refine its placement, optionally "
                       "with a portfolio of chains",
        description="Unified mapping followed by annealing/tabu refinement. "
                    "--chains N (N >= 2) runs a portfolio of N diversified "
                    "chains sharing one engine-state store and keeps the "
                    "deterministic best-of.",
    )
    refine.add_argument("design_file", nargs="?", default=None, metavar="DESIGN.json",
                        help="use-case-set file to refine")
    refine.add_argument(
        "--spread", type=int, default=None, metavar="N",
        help="generate a spread benchmark with N use cases instead of "
             "reading a design file",
    )
    refine.add_argument("--design-seed", type=int, default=3, metavar="S",
                        help="generator seed for --spread (default: 3)")
    refine.add_argument("--method", choices=("annealing", "tabu"),
                        default="annealing")
    refine.add_argument("--iterations", type=int, default=200, metavar="N",
                        help="refinement iterations per chain (default: 200)")
    refine.add_argument("--seed", type=int, default=0, metavar="S",
                        help="refinement seed; chain i refines with seed+i")
    refine.add_argument(
        "--chains", type=int, default=1, metavar="N",
        help="refinement chains (default: 1 = a plain refine job; the "
             "1-chain portfolio payload is bit-identical to it)",
    )
    refine.add_argument(
        "--chain-workers", type=int, default=0, metavar="N",
        help="process-pool workers for the portfolio's chains "
             "(default: 0, chains run serially; payloads are identical)",
    )
    _add_common_options(refine)

    gap = commands.add_parser(
        "gap", help="measure the heuristic-vs-optimal mapping cost gap",
        description="Run the exact backend (repro.optimize.ilp) next to the "
                    "ordinary heuristic mapping of the same design and report "
                    "optimality gaps.  Exact search is exponential: meant for "
                    "small/medium specs.",
    )
    gap.add_argument("design_file", nargs="?", default=None, metavar="DESIGN.json",
                     help="use-case-set file to measure")
    gap.add_argument(
        "--spread", type=int, default=None, metavar="N",
        help="generate a spread benchmark with N use cases instead of "
             "reading a design file",
    )
    gap.add_argument("--design-seed", type=int, default=3, metavar="S",
                     help="generator seed for --spread (default: 3)")
    gap.add_argument(
        "--core-count", type=int, default=None, metavar="N",
        help="core count for --spread (default: the generator's default; "
             "exact search is exponential in this)",
    )
    gap.add_argument(
        "--flows", default=None, metavar="MIN,MAX",
        help="flows-per-use-case range for --spread (default: the "
             "generator's default, which needs >= 11 cores)",
    )
    gap.add_argument(
        "--solver", choices=("auto", "pulp", "native"), default="auto",
        help="exact solver: 'pulp' (CBC MILP, needs the optional 'pulp' "
             "dependency), 'native' (pure-Python branch-and-bound), or "
             "'auto' = pulp if importable else native (default)",
    )
    gap.add_argument(
        "--refine-iterations", type=int, default=0, metavar="N",
        help="also refine the heuristic result for N annealing iterations "
             "and report its gap (default: 0 = skip)",
    )
    gap.add_argument("--seed", type=int, default=0, metavar="S",
                     help="refinement seed (default: 0)")
    gap.add_argument(
        "--node-limit", type=int, default=None, metavar="N",
        help="abort the exact search after expanding N nodes (native "
             "solver) / N lazy cuts (pulp); unbounded by default",
    )
    gap.add_argument(
        "--report-dir", default=None, metavar="DIR",
        help="write a byte-deterministic gap_report.json plus a "
             "gap_report.md digest into DIR",
    )
    _add_common_options(gap)

    failures = commands.add_parser(
        "failures", help="failure-sweep analysis of a design's baseline mapping",
        description="Repair the baseline mapping around single link/switch "
                    "failures and report which failures break schedulability. "
                    "Without --fail-link/--fail-switch, every single failure "
                    "of the baseline topology is swept.",
    )
    failures.add_argument("design_file", metavar="DESIGN.json",
                          help="use-case-set file to analyse")
    failures.add_argument(
        "--baseline", default=None, metavar="RESULT.json",
        help="mapping-result file to repair (default: compute a baseline)",
    )
    failures.add_argument(
        "--provision", default=None, metavar="RxC",
        help="mesh dimensions (e.g. 3x3) to compute the baseline on; fault "
             "tolerance needs spare capacity — on the minimal mesh most "
             "failures are unsurvivable by construction",
    )
    failures.add_argument(
        "--fail-link", action="append", default=None, metavar="A,B",
        help="fail one specific link (both directions); repeatable",
    )
    failures.add_argument(
        "--fail-switch", action="append", default=None, metavar="N",
        help="fail one specific switch; repeatable",
    )
    failures.add_argument(
        "--links-only", action="store_true",
        help="sweep only link failures",
    )
    failures.add_argument(
        "--switches-only", action="store_true",
        help="sweep only switch failures",
    )
    failures.add_argument(
        "--frequencies", default=None, metavar="MHZ,MHZ,...",
        help="repeat the sweep at these NoC clock frequencies (MHz)",
    )
    failures.add_argument(
        "--compare", action="store_true",
        help="with --fail-link/--fail-switch: also run and report the "
             "from-scratch remap of the degraded topology",
    )
    _add_common_options(failures)

    campaign = commands.add_parser(
        "campaign", help="run, reduce or inspect a declarative study matrix",
        description="Campaigns declare workloads x methods x parameter sets "
                    "as one JSON file (repro.campaign.CampaignSpec) and run "
                    "the expanded cells resumably through the job fabric: "
                    "completed cells are settled under OUT/cells/ keyed by "
                    "job hash, so re-running after a crash executes zero of "
                    "them again.  'run' executes and reduces into "
                    "OUT/report.json + OUT/report.md + OUT/trajectory.jsonl; "
                    "'report' re-reduces from the settled cells (tolerating "
                    "missing ones); 'status' prints progress read-only.",
    )
    campaign.add_argument("action", choices=("run", "report", "status"),
                          metavar="ACTION",
                          help="run | report | status")
    campaign.add_argument("campaign_file", metavar="CAMPAIGN.json",
                          help="campaign spec file")
    campaign.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="campaign directory for cells/cache/report artifacts "
             "(default: CAMPAIGN.json's name next to it, e.g. study.campaign/)",
    )
    campaign.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="execute at most N pending cells this run (settled cells are "
             "free); the report is only written once every cell is settled",
    )
    campaign.add_argument(
        "--trajectory", default=None, metavar="FILE",
        help="append the run's history line to FILE instead of "
             "OUT/trajectory.jsonl (e.g. a single tracked trajectory file)",
    )
    campaign.add_argument(
        "--submit", default=None, metavar="INBOX",
        help="with ACTION=run: drop the pending cells' job specs into a "
             "'repro serve' INBOX and exit instead of executing locally",
    )
    campaign.add_argument(
        "--collect", default=None, metavar="INBOX",
        help="with ACTION=run: first fold the INBOX's result envelopes into "
             "settled cells, then execute whatever is still pending",
    )
    _add_common_options(campaign, include_out=False)

    serve = commands.add_parser(
        "serve", help="watch a job inbox directory and execute submitted specs",
        description="Run the job-directory service: *.json specs dropped into "
                    "INBOX are executed and settled into INBOX/done/ or "
                    "INBOX/failed/, with result envelopes in INBOX/results/ "
                    "and a rolling INBOX/manifest.jsonl.",
    )
    serve.add_argument("inbox", nargs="+", metavar="INBOX",
                       help="inbox directory to watch (created if missing); "
                            "--status accepts several and prints a fleet "
                            "summary across all of them")
    serve.add_argument(
        "--once", action="store_true",
        help="drain the inbox once and exit instead of polling forever",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=1.0, metavar="S",
        help="seconds to sleep between inbox polls (default: 1.0)",
    )
    serve.add_argument(
        "--status", action="store_true",
        help="print the inbox's aggregate state (pending/running/done/failed "
             "counts and manifest history, rotated segments included) and "
             "exit without touching anything",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="executions per file before a transiently failing job is "
             "quarantined into failed/ (default: 3)",
    )
    serve.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="S",
        help="base sleep between attempts, doubled each retry (default: 0.05)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="per-attempt wall-clock budget; attempts run in a terminable "
             "child process when set (default: no timeout, in-process)",
    )
    _add_common_options(serve, include_out=False)

    monitor = commands.add_parser(
        "monitor", help="probe the network periodically and enqueue warm "
                        "repair jobs into a serve inbox",
        description="Run the live-operations loop (repro.ops.Monitor): poll a "
                    "probe source for link/switch failures and per-flow "
                    "traffic readings, append the deltas to the crash-"
                    "replayable INBOX/monitor/events.jsonl, and enqueue a "
                    "warm RepairJob into INBOX for every observed change "
                    "(escalated to a full remap when the splice repair "
                    "reports unrepairable use cases).  --replay reconstructs "
                    "the monitor state purely from the event log and prints "
                    "it, probing nothing.",
    )
    monitor.add_argument("inbox", metavar="INBOX",
                         help="'repro serve' inbox to enqueue repair jobs "
                              "into (created if missing)")
    monitor.add_argument(
        "--probe-script", default=None, metavar="FILE",
        help="repro/probe-script@1 file: one scripted observation per poll, "
             "clamping at the last step (the deterministic probe source)",
    )
    monitor.add_argument("--design", default=None, metavar="DESIGN.json",
                         help="use-case-set file of the deployed design")
    monitor.add_argument(
        "--spread", type=int, default=None, metavar="N",
        help="generate a spread benchmark with N use cases instead of "
             "reading a design file",
    )
    monitor.add_argument("--design-seed", type=int, default=3, metavar="S",
                         help="generator seed for --spread (default: 3)")
    monitor.add_argument(
        "--provision", default=None, metavar="RxC",
        help="mesh dimensions (e.g. 3x3) the baseline is computed on; fault "
             "tolerance needs spare capacity, so deployments should "
             "provision",
    )
    monitor.add_argument("--period", type=float, default=5.0, metavar="S",
                         help="seconds between probe polls (default: 5.0)")
    monitor.add_argument("--once", action="store_true",
                         help="poll exactly once and exit")
    monitor.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="exit after N polls (default: poll until interrupted)",
    )
    monitor.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="directory for events.jsonl and state.json "
             "(default: INBOX/monitor/)",
    )
    monitor.add_argument(
        "--replay", action="store_true",
        help="reconstruct monitor state from the event log and print it; "
             "probes nothing, writes nothing unless --replay-out is given",
    )
    monitor.add_argument(
        "--replay-out", default=None, metavar="FILE",
        help="with --replay: write the reconstructed state's canonical "
             "bytes to FILE (byte-identical to the live state.json)",
    )
    _add_common_options(monitor, include_out=False)

    return parser


def _print_result(result, index: int, total: int) -> None:
    origin = "cache" if result.cached else f"{result.elapsed_s:.2f}s"
    print(f"[{index + 1}/{total}] {result.kind}  spec={result.spec_hash[:12]}  ({origin})")
    payload = result.payload
    if "summary" in payload:
        summary = payload["summary"]
        print(f"    topology {summary['topology']}  switches {summary['switch_count']}  "
              f"groups {summary['groups']}  max-util {summary['max_utilization']}")
    if payload.get("mapped") is False:
        print(f"    MAPPING FAILED: {payload.get('error', 'unknown error')}")
    if "required_frequency_mhz" in payload:
        frequency = payload["required_frequency_mhz"]
        print("    required frequency: "
              + ("unachievable on the grid" if frequency is None else f"{frequency:g} MHz"))
    if "refined_cost" in payload:
        print(f"    refinement: cost {payload['initial_cost']:.4g} -> "
              f"{payload['refined_cost']:.4g} "
              f"({payload['accepted_moves']} accepted moves)")
    if "portfolio" in payload:
        portfolio = payload["portfolio"]
        costs = ", ".join(
            f"{entry['refined_cost']:.4g}" if entry.get("mapped") else "failed"
            for entry in portfolio["chain_results"]
        )
        print(f"    portfolio: best of {portfolio['chains']} chain(s) = "
              f"chain {portfolio['best_chain']}  [{costs}]")
    if "repair" in payload:
        repair = payload["repair"]
        print(f"    repair: {repair['failures']}  "
              f"remapped {repair['groups_remapped']}/{repair['groups_total']} group(s)  "
              f"displaced {len(repair['displaced_cores'])} core(s)")
        if repair.get("repaired"):
            delta = repair.get("cost_delta")
            print(f"    repaired on {repair['degraded_topology']}"
                  + ("" if delta is None else f"  cost delta {delta:+.4g}"))
        else:
            names = ", ".join(repair.get("unrepairable", ())) or "all use cases"
            print(f"    UNREPAIRABLE: {names}")
    if "gap" in payload:
        gap = payload["gap"]
        exact = gap["exact"]
        validated = "validated" if gap.get("validated") else "VALIDATION FAILED"
        print(f"    exact ({gap['solver']}): cost {exact['cost']:.6g} on "
              f"{exact['topology']}  [{validated}]")
        for label, key in (("heuristic", "heuristic"), ("refined", "refined")):
            entry = gap.get(key)
            if entry is None:
                continue
            if entry.get("mapped") is False:
                print(f"    {label}: MAPPING FAILED: {entry.get('error', 'unknown')}")
                continue
            print(f"    {label}: cost {entry['cost']:.6g}  "
                  f"gap {entry['gap_absolute']:+.6g} "
                  f"({entry['gap_relative'] * 100:.2f}%)")
    if "rows" in payload:
        from repro.io.report import format_rows

        print(format_rows(payload["rows"]))
    if "headline" in payload:
        from repro.io.report import format_summary

        print(format_summary(payload["headline"]))


def _run_jobs(jobs, args, base_dir: Optional[Path] = None) -> int:
    code, _results = _execute_jobs(jobs, args, base_dir)
    return code


def _execute_jobs(jobs, args, base_dir: Optional[Path] = None):
    """Run ``jobs``, print/persist them, and return ``(exit_code, results)``.

    Commands that post-process payloads (``gap`` writes report files) use
    this directly; plain commands go through :func:`_run_jobs`.
    """
    from repro.jobs.runner import JobRunner

    if args.out:
        # Fail before executing anything: discovering a bad --out only after
        # minutes of mapping would throw the results away.
        out_parent = Path(args.out).absolute().parent
        if not out_parent.is_dir():
            return _fail(f"--out directory {out_parent} does not exist"), []
    runner = JobRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        base_dir=base_dir,
        seed_engines=args.cache_dir is not None and not args.no_seed,
    )
    results = runner.run_many(jobs)
    for index, result in enumerate(results):
        _print_result(result, index, len(results))
    if args.out:
        target = Path(args.out)
        target.write_text(json.dumps([result.to_dict() for result in results], indent=2))
        print(f"wrote {len(results)} result(s) to {target}")
    if args.cache_dir:
        cached = sum(1 for result in results if result.cached)
        print(f"cache: {cached} hit(s), {runner.executed_jobs} executed, "
              f"dir {args.cache_dir}")
    return 0, results


def _command_run(args) -> int:
    from repro.jobs.spec import load_jobs

    jobs = []
    for job_file in args.job_files:
        jobs.extend(load_jobs(job_file))
    if not jobs:
        return _fail("no jobs found in the given file(s)")
    return _run_jobs(jobs, args)


def _command_sweep(args) -> int:
    from repro.jobs.spec import SweepJob, UseCaseSource

    knobs = {}
    if args.counts:
        knobs["use_case_counts"] = tuple(
            int(value) for value in args.counts.split(",") if value.strip()
        )
    job = SweepJob(
        study=args.study,
        benchmark=args.benchmark,
        core_count=args.core_count,
        seed=args.seed,
        use_cases=None if args.design is None else UseCaseSource(path=args.design),
        **knobs,
    )
    return _run_jobs([job], args)


def _command_worst_case(args) -> int:
    from repro.jobs.spec import UseCaseSource, WorstCaseJob

    job = WorstCaseJob(use_cases=UseCaseSource(path=args.design_file))
    return _run_jobs([job], args)


def _command_refine(args) -> int:
    from repro.jobs.spec import PortfolioRefineJob, RefineJob, UseCaseSource

    if (args.design_file is None) == (args.spread is None):
        return _fail("refine needs a DESIGN.json file or --spread N (not both)")
    if args.design_file is not None:
        source = UseCaseSource(path=args.design_file)
    else:
        source = UseCaseSource(generator={
            "kind": "spread",
            "use_case_count": args.spread,
            "seed": args.design_seed,
        })
    if args.chains > 1:
        job = PortfolioRefineJob(
            use_cases=source,
            method=args.method,
            iterations=args.iterations,
            seed=args.seed,
            chains=args.chains,
            workers=args.chain_workers,
        )
    else:
        job = RefineJob(
            use_cases=source,
            method=args.method,
            iterations=args.iterations,
            seed=args.seed,
        )
    return _run_jobs([job], args)


def _design_label(job) -> str:
    source = job.use_cases
    if source.path is not None:
        return source.path
    if source.generator is not None:
        recipe = source.generator
        label = f"{recipe.get('kind', '?')}-{recipe.get('use_case_count', '?')}"
        if "core_count" in recipe:
            label += f"-c{recipe['core_count']}"
        if "seed" in recipe:
            label += f"-s{recipe['seed']}"
        return label
    return "inline"


def _gap_cell(entry, exact_cost: bool = False):
    if entry is None:
        return "-", "-"
    if entry.get("mapped") is False:
        return "failed", "-"
    cost = f"{entry['cost']:.6g}"
    if exact_cost:
        return cost, "-"
    return cost, f"{entry['gap_relative'] * 100:.2f}%"


def _gap_report_document(jobs, results):
    """Byte-deterministic report document + markdown digest for ``gap``.

    Built purely from job payloads (which are canonical JSON) and spec
    hashes; volatile per-run data (timings, cache provenance) lives only
    in the result envelopes, never here.
    """
    cells = []
    for job, result in zip(jobs, results):
        payload = result.payload
        cells.append({
            "design": _design_label(job),
            "job_hash": result.spec_hash,
            "summary": payload.get("summary"),
            "gap": payload.get("gap"),
        })
    document = {"schema": "repro/gap-report@1", "cells": cells}

    lines = [
        "# Optimality gap report",
        "",
        "| design | solver | exact cost | heuristic cost | gap | "
        "refined cost | refined gap |",
        "|---|---|---|---|---|---|---|",
    ]
    for cell in cells:
        gap = cell["gap"] or {}
        exact_cost, _ = _gap_cell(gap.get("exact"), exact_cost=True)
        heuristic_cost, heuristic_gap = _gap_cell(gap.get("heuristic"))
        refined_cost, refined_gap = _gap_cell(gap.get("refined"))
        lines.append(
            f"| {cell['design']} | {gap.get('solver', '-')} | {exact_cost} "
            f"| {heuristic_cost} | {heuristic_gap} "
            f"| {refined_cost} | {refined_gap} |"
        )
    lines += [
        "",
        "Gaps are (cost - exact cost) / exact cost; 0.00% means the "
        "heuristic found an optimal mapping.",
    ]
    return document, "\n".join(lines) + "\n"


def _command_gap(args) -> int:
    from repro.jobs.spec import GapJob, UseCaseSource

    if (args.design_file is None) == (args.spread is None):
        return _fail("gap needs a DESIGN.json file or --spread N (not both)")
    if args.solver == "pulp":
        from repro.optimize.ilp import available_solvers

        if "pulp" not in available_solvers():
            return _fail("the 'pulp' solver needs the optional dependency "
                         "'pulp' (pip install 'repro-noc[ilp]') — or use "
                         "--solver native")
    if args.design_file is not None:
        source = UseCaseSource(path=args.design_file)
    else:
        recipe = {
            "kind": "spread",
            "use_case_count": args.spread,
            "seed": args.design_seed,
        }
        if args.core_count is not None:
            recipe["core_count"] = args.core_count
        if args.flows is not None:
            parts = args.flows.split(",")
            if len(parts) != 2:
                return _fail("--flows expects MIN,MAX (e.g. 12,24)")
            try:
                recipe["flows_per_use_case"] = [int(part) for part in parts]
            except ValueError:
                return _fail("--flows expects MIN,MAX (e.g. 12,24)")
        source = UseCaseSource(generator=recipe)
    job = GapJob(
        use_cases=source,
        solver=args.solver,
        refine_iterations=args.refine_iterations,
        seed=args.seed,
        node_limit=args.node_limit,
    )
    code, results = _execute_jobs([job], args)
    if code != 0:
        return code
    failed = [r for r in results if r.payload.get("mapped") is False]
    if failed:
        return _fail("design cannot be mapped exactly: "
                     f"{failed[0].payload.get('error', 'unknown error')}")
    if args.report_dir is not None:
        report_dir = Path(args.report_dir)
        report_dir.mkdir(parents=True, exist_ok=True)
        document, digest = _gap_report_document([job], results)
        report_path = report_dir / "gap_report.json"
        report_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        digest_path = report_dir / "gap_report.md"
        digest_path.write_text(digest)
        print(f"report {report_path}  digest {digest_path}")
    return 0


def _parse_provision(value: Optional[str]):
    if value is None:
        return None
    from repro.exceptions import SpecificationError

    parts = value.lower().replace("x", ",").split(",")
    try:
        rows, cols = (int(part) for part in parts)
    except ValueError:
        raise SpecificationError(
            f"--provision expects RxC mesh dimensions (e.g. 3x3), got {value!r}"
        ) from None
    return (rows, cols)


def _parse_failure_flags(args) -> Optional[dict]:
    """The explicit ``--fail-link/--fail-switch`` flags as a FailureSet doc."""
    if not args.fail_link and not args.fail_switch:
        return None
    from repro.exceptions import SpecificationError

    links = []
    for value in args.fail_link or ():
        parts = value.split(",")
        try:
            source, destination = (int(part) for part in parts)
        except ValueError:
            raise SpecificationError(
                f"--fail-link expects two switch indices A,B, got {value!r}"
            ) from None
        links.extend([[source, destination], [destination, source]])
    try:
        switches = [int(value) for value in args.fail_switch or ()]
    except ValueError as exc:
        raise SpecificationError(f"--fail-switch expects a switch index: {exc}") from None
    return {"links": links, "switches": switches}


def _command_failures(args) -> int:
    explicit = _parse_failure_flags(args)
    provision = _parse_provision(args.provision)
    if explicit is not None:
        # One concrete failure set: run it as a RepairJob so caching, pool
        # workers and --out behave exactly like `repro run`.
        from repro.jobs.spec import RepairJob, UseCaseSource

        job = RepairJob(
            use_cases=UseCaseSource(path=args.design_file),
            failures=explicit,
            baseline=None if args.baseline is None else {"path": args.baseline},
            provision=provision,
            compare_full_remap=args.compare,
        )
        return _run_jobs([job], args)

    from repro.analysis.failures import failure_sweep
    from repro.core.engine import MappingEngine
    from repro.io.serialization import load_mapping_result, load_use_case_set

    use_cases = load_use_case_set(args.design_file)
    baseline = None if args.baseline is None else load_mapping_result(args.baseline)
    engine = MappingEngine()
    if args.cache_dir is not None and not args.no_seed:
        from repro.jobs.cache import JobCache

        engine.attach_store(JobCache(args.cache_dir).store)
    frequencies = None
    if args.frequencies:
        frequencies = [float(value) for value in args.frequencies.split(",")
                       if value.strip()]
    rows = failure_sweep(
        use_cases,
        baseline=baseline,
        engine=engine,
        provision=provision,
        include_links=not args.switches_only,
        include_switches=not args.links_only,
        frequencies_mhz=frequencies,
    )
    documents = [row.as_dict() for row in rows]
    from repro.io.report import format_rows

    print(format_rows(documents))
    broken = [row for row in rows if not row.schedulable]
    print(f"{len(rows)} failure(s) swept, {len(broken)} break schedulability")
    if args.out:
        Path(args.out).write_text(json.dumps(documents, indent=2))
        print(f"wrote {len(documents)} row(s) to {args.out}")
    return 0


def _command_campaign(args) -> int:
    from repro.campaign import CampaignRunner, campaign_hash, load_campaign

    spec = load_campaign(args.campaign_file)
    source = Path(args.campaign_file)
    out_dir = (
        Path(args.out_dir) if args.out_dir
        else source.with_suffix(".campaign")
    )
    runner = CampaignRunner(
        out_dir,
        workers=args.workers,
        cache_dir=args.cache_dir,
        seed_engines=not args.no_seed,
        trajectory_path=args.trajectory,
    )
    print(f"campaign {spec.name}  hash {campaign_hash(spec)[:16]}  "
          f"{spec.cell_count()} cell(s)  dir {out_dir}")

    if args.action == "status":
        status = runner.status(spec)
        print(f"{status['done']}/{status['cells']} cell(s) settled, "
              f"{status['pending']} pending"
              + ("; report written" if status["report_written"] else ""))
        for method, counts in sorted(status["by_method"].items()):
            print(f"  {method}: {counts['done']} done, "
                  f"{counts['pending']} pending")
        for cell_id in status["pending_cells"][:10]:
            print(f"  pending: {cell_id}")
        if len(status["pending_cells"]) > 10:
            print(f"  ... and {len(status['pending_cells']) - 10} more")
        return 0

    if args.action == "report":
        outcome = runner.reduce(spec, write_trajectory=False)
        print(f"report {outcome['report']}  digest {outcome['digest']}"
              + (f"  ({outcome['missing']} cell(s) missing)"
                 if outcome["missing"] else ""))
        return 0

    # action == "run"
    if args.submit and args.collect:
        return _fail("--submit and --collect are mutually exclusive")
    if args.submit:
        submitted = runner.submit(spec, args.submit)
        print(f"submitted {len(submitted)} pending cell(s) to {args.submit}")
        return 0
    if args.collect:
        folded = runner.collect(spec, args.collect)
        print(f"collected {folded['collected']} cell(s) from {args.collect}; "
              f"{folded['pending']} still pending")
    summary = runner.run(spec, max_cells=args.max_cells)
    print(f"executed {summary['executed']} cell(s), resumed "
          f"{summary['resumed']} from {runner.cells_dir}"
          + (f", {summary['pending']} still pending" if summary["pending"] else ""))
    if summary["pending"]:
        print("report deferred until every cell is settled "
              "(re-run without --max-cells, or collect the farm results)")
        return 0
    print(f"report {summary['report']}  digest {summary['digest']}")
    entry = summary.get("trajectory_entry")
    if entry is not None:
        best = ", ".join(
            f"{workload}={details['cost']:g}"
            for workload, details in sorted(entry["best_known"].items())
        )
        print(f"trajectory +1 line -> {summary['trajectory']}"
              + (f"  best known: {best}" if best else ""))
    return 0


def _print_service_record(record) -> None:
    if record["status"] == "failed":
        marker = "quarantined" if record.get("quarantined") else "failed"
        attempts = record.get("attempts", 1)
        suffix = f"  ({attempts} attempt(s))" if attempts > 1 else ""
        print(f"[{marker}] {record['file']}  "
              f"{record.get('error', 'unknown error')}{suffix}")
        return
    print(f"[done] {record['file']}  {record['jobs']} job(s)  "
          f"{record['cached']} cached  {record['executed']} executed  "
          f"({record['elapsed_s']:.2f}s)")


def _print_status(status) -> None:
    files = status["files"]
    manifest = status["manifest"]
    print(f"inbox {status['inbox']}: {files['pending']} pending, "
          f"{files['running']} running, {files['done']} done, "
          f"{files['failed']} failed")
    print(f"manifest: {manifest['records']} record(s) in "
          f"{manifest['segments']} segment(s); {manifest['jobs']} job(s), "
          f"{manifest['cached']} cached, {manifest['executed']} executed, "
          f"{manifest['failed']} failed file(s)")
    retries = status.get("retries", {})
    if retries.get("files_retried"):
        print(f"retries: {retries['files_retried']} file(s) retried, "
              f"{retries['extra_attempts']} extra attempt(s)")
    for entry in status.get("quarantined", ()):
        print(f"[quarantined] {entry['file']}  after {entry['attempts']} "
              f"attempt(s): {entry['error']}")
    monitor = status.get("monitor")
    if monitor is not None:
        if "error" in monitor:
            print(f"monitor: event log unreadable: {monitor['error']}")
        else:
            print(f"monitor: {monitor['events']} event(s), "
                  f"{monitor['enqueued']} job(s) enqueued; "
                  f"failures: {monitor['failures']}; "
                  f"{monitor['traffic_overrides']} traffic override(s)")
            last_enqueued = monitor.get("last_enqueued")
            if last_enqueued is not None:
                print(f"monitor last enqueue: {last_enqueued['file']} "
                      f"({last_enqueued['action']})")
    last = status["last_record"]
    if last is not None:
        _print_service_record(last)


def _print_fleet_status(fleet) -> None:
    for status in fleet["inboxes"]:
        _print_status(status)
    totals = fleet["totals"]
    if totals["inboxes"] > 1:
        files = totals["files"]
        manifest = totals["manifest"]
        print(f"fleet: {totals['inboxes']} inboxes, {files['pending']} pending, "
              f"{files['running']} running, {files['done']} done, "
              f"{files['failed']} failed"
              + (f", {totals['quarantined']} quarantined"
                 if totals["quarantined"] else ""))
        print(f"fleet manifest: {manifest['records']} record(s), "
              f"{manifest['jobs']} job(s), {manifest['cached']} cached, "
              f"{manifest['executed']} executed")
    store = fleet["store"]
    if store is not None:
        print(f"engine-state store {store['directory']}: "
              f"{store['results']} result(s), {store['evaluations']} "
              f"evaluation(s) in {store['evaluation_contexts']} context(s), "
              f"{store['bytes']} bytes")


def _command_serve(args) -> int:
    from repro.jobs.service import JobDirectoryService, fleet_status

    if args.status:
        _print_fleet_status(fleet_status(args.inbox, cache_dir=args.cache_dir))
        return 0
    if len(args.inbox) > 1:
        return _fail("serve executes one INBOX at a time "
                     "(several are only meaningful with --status)")
    service = JobDirectoryService(
        args.inbox[0],
        workers=args.workers,
        cache_dir=args.cache_dir,
        seed_engines=not args.no_seed,
        max_attempts=args.max_attempts,
        retry_backoff_s=args.retry_backoff,
        job_timeout_s=args.job_timeout,
    )
    if args.once:
        records = service.run_once()
        for record in records:
            _print_service_record(record)
        failures = sum(1 for record in records if record["status"] == "failed")
        print(f"processed {len(records)} file(s), {failures} failed; "
              f"manifest {service.manifest_path}")
        return 1 if failures else 0
    print(f"serving {service.inbox} "
          f"(poll every {args.poll_interval:g}s; Ctrl-C to stop)")
    try:
        service.serve_forever(poll_interval=args.poll_interval)
    except KeyboardInterrupt:
        print(f"\nstopped after {service.processed_files} file(s)")
    return 0


def _command_monitor(args) -> int:
    from repro.jobs.spec import UseCaseSource

    if args.replay:
        from repro.ops.events import canonical_state_bytes, replay_events

        state_dir = (
            Path(args.state_dir) if args.state_dir
            else Path(args.inbox) / "monitor"
        )
        events_path = state_dir / "events.jsonl"
        state = replay_events(events_path)
        payload = canonical_state_bytes(state)
        if args.replay_out:
            Path(args.replay_out).write_bytes(payload)
            print(f"replayed {state.seq} event(s) from {events_path} "
                  f"-> {args.replay_out}")
        else:
            print(payload.decode(), end="")
        return 0

    if (args.design is None) == (args.spread is None):
        return _fail("monitor needs a --design DESIGN.json or --spread N "
                     "(not both)")
    if args.probe_script is None:
        return _fail("monitor needs --probe-script FILE (the process-"
                     "callback source is Python-API only: "
                     "repro.ops.CallbackProbeSource)")
    if args.design is not None:
        # Resolved: the enqueued job files are executed from the inbox's
        # running/ directory, where a relative design path would not load.
        source = UseCaseSource(path=str(Path(args.design).resolve()))
    else:
        source = UseCaseSource(generator={
            "kind": "spread",
            "use_case_count": args.spread,
            "seed": args.design_seed,
        })
    from repro.ops.monitor import Monitor
    from repro.ops.probe import ScriptProbeSource

    store_path = None
    if args.cache_dir is not None and not args.no_seed:
        from repro.jobs.cache import JobCache

        store_path = JobCache(args.cache_dir).store.directory
    monitor = Monitor(
        args.inbox,
        ScriptProbeSource(args.probe_script),
        source,
        provision=_parse_provision(args.provision),
        period_s=args.period,
        state_dir=args.state_dir,
        store_path=store_path,
    )
    max_polls = 1 if args.once else args.max_polls
    try:
        records = monitor.run(max_polls=max_polls)
    except KeyboardInterrupt:
        records = []
        print()
    for record in records:
        changes = record["delta"]
        if record["traffic_changes"]:
            changes += f", {record['traffic_changes']} traffic change(s)"
        print(f"[{record['action']}] {record['file']}  {changes}"
              + (f"  UNREPAIRABLE: {', '.join(record['unrepairable'])}"
                 if record["unrepairable"] else ""))
    print(f"{monitor.polls} poll(s), {len(records)} change(s) enqueued; "
          f"state {monitor.state_path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "sweep": _command_sweep,
        "worst-case": _command_worst_case,
        "refine": _command_refine,
        "gap": _command_gap,
        "failures": _command_failures,
        "campaign": _command_campaign,
        "serve": _command_serve,
        "monitor": _command_monitor,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
