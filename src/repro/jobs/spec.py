"""Declarative, JSON-serializable job specifications.

A *job* is the unit of work of the public API: one frozen dataclass that
bundles everything needed to reproduce a computation — the use-case set (by
value, by file path or by synthetic-generator recipe), the NoC operating
point, the mapper configuration and the job-specific knobs.  Jobs

* round-trip losslessly through plain dictionaries and JSON
  (:func:`job_to_dict` / :func:`job_from_dict` / :func:`save_job` /
  :func:`load_jobs`), so they can be written by hand, produced by other
  tools, queued, or diffed in version control;
* hash stably (:func:`job_hash`) over their *content* — a job referencing a
  design by path hashes the file's contents, not its name — which is the key
  of the persistent result cache; and
* know nothing about execution: :class:`repro.jobs.runner.JobRunner`
  dispatches each kind to the engine-backed consumer that already existed
  (``DesignFlow``, the worst-case baseline, the refiners, the frequency
  search, the analysis sweeps).

The eight kinds cover the paper's evaluation surface plus failure recovery
and the optimality-gap oracle:

========================  ====================================================
kind                      computation
========================  ====================================================
``design_flow``           phases 1-4 of the methodology on one design
``worst_case``            the WC baseline mapping of one design
``refine``                unified mapping + annealing/tabu refinement
``portfolio_refine``      N diversified refinement chains sharing one
                          engine-state store, reduced to a deterministic
                          best-of (:mod:`repro.optimize.portfolio`)
``frequency``             minimum-frequency search over the grid
``sweep``                 one of the figure/ablation studies in
                          :mod:`repro.analysis.sweeps`
``repair``                failure-aware incremental remap of a baseline
                          mapping (:func:`repro.core.repair.repair_mapping`)
``gap``                   exact mapping (:mod:`repro.optimize.ilp`) plus the
                          heuristic (and optionally refined) mapping of the
                          same design, reduced to optimality-gap metrics
========================  ====================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.compound import CompoundModeSpec
from repro.core.usecase import UseCaseSet
from repro.exceptions import SerializationError, SpecificationError
from repro.io.serialization import (
    load_use_case_set,
    use_case_set_from_dict,
    use_case_set_to_dict,
)
from repro.params import MapperConfig, NoCParameters

__all__ = [
    "UseCaseSource",
    "DesignFlowJob",
    "WorstCaseJob",
    "RefineJob",
    "PortfolioRefineJob",
    "FrequencyJob",
    "SweepJob",
    "RepairJob",
    "GapJob",
    "JobSpec",
    "JOB_KINDS",
    "SWEEP_STUDIES",
    "job_to_dict",
    "job_from_dict",
    "job_hash",
    "save_job",
    "load_jobs",
]


# --------------------------------------------------------------------------- #
# use-case sources
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class UseCaseSource:
    """Where a job's use-case set comes from: inline, a file, or a generator.

    Exactly one of the three fields is set:

    * ``inline`` — the use-case-set document itself (the
      :func:`repro.io.serialization.use_case_set_to_dict` shape);
    * ``path`` — a JSON file in the same shape (resolved relative to the job
      file by the CLI);
    * ``generator`` — a recipe for :func:`repro.gen.synthetic.generate_benchmark`,
      e.g. ``{"kind": "spread", "use_case_count": 10, "seed": 3}``.
    """

    inline: Optional[Dict] = None
    path: Optional[str] = None
    generator: Optional[Dict] = None

    def __post_init__(self) -> None:
        populated = sum(value is not None for value in (self.inline, self.path, self.generator))
        if populated != 1:
            raise SpecificationError(
                "a use-case source needs exactly one of 'inline', 'path' or "
                f"'generator', got {populated}"
            )

    @classmethod
    def from_value(cls, value: "UseCaseSourceLike") -> "UseCaseSource":
        """Coerce the natural Python spellings into a source.

        Accepts an existing source, a :class:`UseCaseSet` (stored inline), a
        path, a source dictionary (``{"path": ...}`` etc.) or a raw
        use-case-set document (recognised by its ``use_cases`` list).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, UseCaseSet):
            return cls(inline=use_case_set_to_dict(value))
        if isinstance(value, (str, Path)):
            return cls(path=str(value))
        if isinstance(value, dict):
            if set(value) & {"inline", "path", "generator"}:
                return cls(
                    inline=value.get("inline"),
                    path=value.get("path"),
                    generator=value.get("generator"),
                )
            if "use_cases" in value:
                return cls(inline=value)
        raise SerializationError(f"cannot interpret use-case source {value!r}")

    def to_dict(self) -> Dict:
        """JSON-ready dictionary form."""
        if self.inline is not None:
            return {"inline": self.inline}
        if self.path is not None:
            return {"path": self.path}
        return {"generator": self.generator}

    def resolve(self, base_dir: Union[str, Path, None] = None) -> "UseCaseSource":
        """A path-free equivalent source (file contents pulled inline).

        Resolving before hashing/dispatching makes cache keys depend on the
        *content* of a referenced design file and spares worker processes
        from re-reading (and possibly racing on) the file.
        """
        if self.path is None:
            return self
        target = Path(self.path)
        if base_dir is not None and not target.is_absolute():
            target = Path(base_dir) / target
        return UseCaseSource(inline=use_case_set_to_dict(load_use_case_set(target)))

    def build(self, base_dir: Union[str, Path, None] = None) -> UseCaseSet:
        """Materialise the use-case set this source describes."""
        if self.inline is not None:
            return use_case_set_from_dict(self.inline)
        if self.path is not None:
            return self.resolve(base_dir).build()
        from repro.gen.synthetic import generate_benchmark

        recipe = dict(self.generator or {})
        try:
            kind = recipe.pop("kind")
        except KeyError:
            raise SerializationError(
                "generator source needs a 'kind' (e.g. 'spread' or 'bottleneck')"
            ) from None
        if "flows_per_use_case" in recipe:
            recipe["flows_per_use_case"] = tuple(recipe["flows_per_use_case"])
        try:
            return generate_benchmark(kind, **recipe)
        except TypeError as exc:
            # An unknown or mistyped recipe knob is a document error, not a
            # programming error: surface it through the CLI's one-line
            # diagnostic contract instead of a traceback.
            raise SerializationError(
                f"invalid generator recipe for benchmark kind {kind!r}: {exc}"
            ) from exc


UseCaseSourceLike = Union[UseCaseSource, UseCaseSet, str, Path, Dict]


# --------------------------------------------------------------------------- #
# shared (de)serialisation helpers
# --------------------------------------------------------------------------- #
def _parse_params(document: Dict) -> NoCParameters:
    return NoCParameters.from_dict(document.get("params", {}))


def _parse_config(document: Dict) -> MapperConfig:
    return MapperConfig.from_dict(document.get("config", {}))


def _parse_source(document: Dict, *, required: bool = True) -> Optional[UseCaseSource]:
    value = document.get("use_cases")
    if value is None:
        if required:
            raise SerializationError("job document is missing its 'use_cases' source")
        return None
    return UseCaseSource.from_value(value)


def _parse_groups(value) -> Optional[Tuple[Tuple[str, ...], ...]]:
    if value is None:
        return None
    return tuple(tuple(group) for group in value)


def _parse_modes(value) -> Tuple[CompoundModeSpec, ...]:
    modes: List[CompoundModeSpec] = []
    for entry in value or ():
        if isinstance(entry, CompoundModeSpec):
            modes.append(entry)
        elif isinstance(entry, dict):
            modes.append(CompoundModeSpec(entry["members"], entry.get("name", "")))
        else:
            modes.append(CompoundModeSpec(entry))
    return tuple(modes)


def _modes_to_dicts(modes: Tuple[CompoundModeSpec, ...]) -> List[Dict]:
    return [{"members": list(mode.members), "name": mode.name} for mode in modes]


def _validate_mesh(mesh: Optional[Tuple[int, int]]) -> None:
    if mesh is None:
        return
    if (
        len(mesh) != 2
        or not all(isinstance(side, int) and side >= 1 for side in mesh)
    ):
        raise SpecificationError(
            f"mesh must be (rows, cols) with positive sides, got {mesh!r}"
        )


def _parse_mesh(value) -> Optional[Tuple[int, int]]:
    if value is None:
        return None
    try:
        rows, cols = value
        return (int(rows), int(cols))
    except (TypeError, ValueError):
        raise SerializationError(
            f"mesh must be a [rows, cols] pair, got {value!r}"
        ) from None


# --------------------------------------------------------------------------- #
# the job kinds
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DesignFlowJob:
    """Run phases 1-4 of the methodology (``DesignFlow.run``) on one design."""

    KIND = "design_flow"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    #: the ``PUC`` input: sets of use-case names that may run in parallel
    parallel_modes: Tuple[CompoundModeSpec, ...] = ()
    #: the ``SUC`` input: pairs of use-case names that must switch smoothly
    smooth_switching: Tuple[Tuple[str, str], ...] = ()
    verify: bool = True

    def to_dict(self) -> Dict:
        return {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "parallel_modes": _modes_to_dicts(self.parallel_modes),
            "smooth_switching": [list(pair) for pair in self.smooth_switching],
            "verify": self.verify,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "DesignFlowJob":
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
            parallel_modes=_parse_modes(document.get("parallel_modes")),
            smooth_switching=tuple(
                (pair[0], pair[1]) for pair in document.get("smooth_switching", ())
            ),
            verify=bool(document.get("verify", True)),
        )


@dataclass(frozen=True)
class WorstCaseJob:
    """Map one design with the worst-case baseline method (ref. [25])."""

    KIND = "worst_case"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)

    def to_dict(self) -> Dict:
        return {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "WorstCaseJob":
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
        )


@dataclass(frozen=True)
class RefineJob:
    """Unified mapping followed by an annealing or tabu refinement pass."""

    KIND = "refine"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    method: str = "annealing"
    iterations: int = 200
    seed: int = 0
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None
    #: override the annealing schedule's starting temperature (``None`` =
    #: the refiner default); portfolio chains use this to diversify
    initial_temperature: Optional[float] = None
    #: force the initial mapping onto a ``(rows, cols)`` mesh instead of the
    #: smallest feasible topology — the big-mesh campaign regime
    mesh: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.method not in ("annealing", "tabu"):
            raise SpecificationError(
                f"unknown refinement method {self.method!r}; expected 'annealing' or 'tabu'"
            )
        if self.initial_temperature is not None:
            if self.method != "annealing":
                raise SpecificationError(
                    "initial_temperature only applies to the 'annealing' method"
                )
            if self.initial_temperature <= 0:
                raise SpecificationError("initial_temperature must be positive")
        _validate_mesh(self.mesh)

    def to_dict(self) -> Dict:
        document = {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "method": self.method,
            "iterations": self.iterations,
            "seed": self.seed,
            "groups": None if self.groups is None else [list(g) for g in self.groups],
        }
        # Omitted when unset so pre-existing refine documents (and their
        # content hashes — the persistent cache keys) are unchanged.
        if self.initial_temperature is not None:
            document["initial_temperature"] = self.initial_temperature
        if self.mesh is not None:
            document["mesh"] = list(self.mesh)
        return document

    @classmethod
    def from_dict(cls, document: Dict) -> "RefineJob":
        temperature = document.get("initial_temperature")
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
            method=document.get("method", "annealing"),
            iterations=int(document.get("iterations", 200)),
            seed=int(document.get("seed", 0)),
            groups=_parse_groups(document.get("groups")),
            initial_temperature=None if temperature is None else float(temperature),
            mesh=_parse_mesh(document.get("mesh")),
        )


@dataclass(frozen=True)
class PortfolioRefineJob:
    """Unified mapping + a portfolio of diversified refinement chains.

    Runs ``chains`` refinement chains over the same design — chain ``i``
    refines with ``seed + i`` and, for annealing, a starting temperature
    scaled by ``temperature_factor^i`` (chain 0 keeps the refiner
    defaults) — and keeps the deterministic best-of
    (:mod:`repro.optimize.portfolio`).  All chains share one engine-state
    store, so the initial mapping is computed once and candidate
    evaluations flow between chains.  ``workers >= 2`` fans the chains
    out over a process pool; the payload is identical either way, and a
    1-chain portfolio is bit-identical to the equivalent
    :class:`RefineJob`.
    """

    KIND = "portfolio_refine"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    method: str = "annealing"
    iterations: int = 200
    seed: int = 0
    chains: int = 4
    temperature_factor: float = 1.6
    #: process-pool workers for the chains (0/1 = run them serially)
    workers: int = 0
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None
    #: force the shared initial mapping onto a ``(rows, cols)`` mesh
    mesh: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.method not in ("annealing", "tabu"):
            raise SpecificationError(
                f"unknown refinement method {self.method!r}; expected 'annealing' or 'tabu'"
            )
        if self.chains < 1:
            raise SpecificationError("a portfolio needs at least one chain")
        if self.temperature_factor <= 0:
            raise SpecificationError("temperature_factor must be positive")
        if self.workers < 0:
            raise SpecificationError("workers must be non-negative")
        _validate_mesh(self.mesh)

    def to_dict(self) -> Dict:
        document = {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "method": self.method,
            "iterations": self.iterations,
            "seed": self.seed,
            "chains": self.chains,
            "temperature_factor": self.temperature_factor,
            "workers": self.workers,
            "groups": None if self.groups is None else [list(g) for g in self.groups],
        }
        # Omitted when unset so pre-existing portfolio documents (and their
        # content hashes — the persistent cache keys) are unchanged.
        if self.mesh is not None:
            document["mesh"] = list(self.mesh)
        return document

    @classmethod
    def from_dict(cls, document: Dict) -> "PortfolioRefineJob":
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
            method=document.get("method", "annealing"),
            iterations=int(document.get("iterations", 200)),
            seed=int(document.get("seed", 0)),
            chains=int(document.get("chains", 4)),
            temperature_factor=float(document.get("temperature_factor", 1.6)),
            workers=int(document.get("workers", 0)),
            groups=_parse_groups(document.get("groups")),
            mesh=_parse_mesh(document.get("mesh")),
        )


@dataclass(frozen=True)
class FrequencyJob:
    """Find the lowest NoC clock at which a design still maps (Figure 7c)."""

    KIND = "frequency"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    max_switches: Optional[int] = None
    #: candidate grid in MHz; ``None`` uses the default 100 MHz - 2 GHz grid
    frequencies_mhz: Optional[Tuple[float, ...]] = None
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None

    def to_dict(self) -> Dict:
        return {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "max_switches": self.max_switches,
            "frequencies_mhz": None
            if self.frequencies_mhz is None
            else list(self.frequencies_mhz),
            "groups": None if self.groups is None else [list(g) for g in self.groups],
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "FrequencyJob":
        grid = document.get("frequencies_mhz")
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
            max_switches=document.get("max_switches"),
            frequencies_mhz=None if grid is None else tuple(float(f) for f in grid),
            groups=_parse_groups(document.get("groups")),
        )


#: sweep studies that need a designer-supplied use-case set
_STUDIES_NEEDING_DESIGN = frozenset(
    {"ablation_flow_ordering", "ablation_routing_policy",
     "ablation_slot_table_size", "ablation_grouping"}
)
#: every study a SweepJob may name, mapped in the runner to
#: :mod:`repro.analysis.sweeps`
SWEEP_STUDIES = frozenset(
    {"normalized_switch_count", "use_case_count", "headline", "parallel_use_cases"}
) | _STUDIES_NEEDING_DESIGN


@dataclass(frozen=True)
class SweepJob:
    """One figure/ablation study from :mod:`repro.analysis.sweeps`.

    ``study`` selects the driver; the remaining knobs parameterise it (each
    study reads only the knobs it understands, mirroring the driver
    signatures).  The ablation studies additionally require ``use_cases``.
    """

    KIND = "sweep"

    study: str
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    use_cases: Optional[UseCaseSource] = None
    benchmark: str = "spread"
    use_case_counts: Tuple[int, ...] = (2, 5, 10, 15, 20)
    use_case_count: int = 10
    core_count: int = 20
    seed: int = 3
    parallelism_levels: Tuple[int, ...] = (1, 2, 3, 4)
    slot_table_sizes: Tuple[int, ...] = (8, 16, 32, 64)
    max_switches: Optional[int] = None

    def __post_init__(self) -> None:
        if self.study not in SWEEP_STUDIES:
            raise SpecificationError(
                f"unknown sweep study {self.study!r}; expected one of "
                f"{sorted(SWEEP_STUDIES)}"
            )
        if self.study in _STUDIES_NEEDING_DESIGN and self.use_cases is None:
            raise SpecificationError(
                f"sweep study {self.study!r} needs a 'use_cases' source"
            )

    def to_dict(self) -> Dict:
        return {
            "kind": self.KIND,
            "study": self.study,
            "use_cases": None if self.use_cases is None else self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "benchmark": self.benchmark,
            "use_case_counts": list(self.use_case_counts),
            "use_case_count": self.use_case_count,
            "core_count": self.core_count,
            "seed": self.seed,
            "parallelism_levels": list(self.parallelism_levels),
            "slot_table_sizes": list(self.slot_table_sizes),
            "max_switches": self.max_switches,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "SweepJob":
        try:
            study = document["study"]
        except KeyError:
            raise SerializationError("sweep job document is missing its 'study'") from None
        return cls(
            study=study,
            use_cases=_parse_source(document, required=False),
            params=_parse_params(document),
            config=_parse_config(document),
            benchmark=document.get("benchmark", "spread"),
            use_case_counts=tuple(int(c) for c in document.get("use_case_counts", (2, 5, 10, 15, 20))),
            use_case_count=int(document.get("use_case_count", 10)),
            core_count=int(document.get("core_count", 20)),
            seed=int(document.get("seed", 3)),
            parallelism_levels=tuple(int(l) for l in document.get("parallelism_levels", (1, 2, 3, 4))),
            slot_table_sizes=tuple(int(s) for s in document.get("slot_table_sizes", (8, 16, 32, 64))),
            max_switches=document.get("max_switches"),
        )


@dataclass(frozen=True)
class RepairJob:
    """Repair a baseline mapping after link/switch failures.

    ``failures`` is the :meth:`repro.noc.failures.FailureSet.to_dict` shape
    (``{"links": [[a, b], ...], "switches": [...]}``).  The baseline comes
    from one of three places, tried in order:

    * ``baseline`` — a mapping-result document, inline
      (``{"inline": {...}}``) or by file path (``{"path": "result.json"}``,
      resolved relative to the job file and pulled inline before hashing);
    * ``provision`` — ``[rows, cols]`` mesh dimensions to compute a
      spare-capacity baseline on (fault tolerance needs headroom — the
      minimal mesh has none, so every failure on it breaks schedulability);
    * neither — the engine's minimal-topology mapping of the design.

    ``traffic`` carries live bandwidth re-characterisations as
    ``(use_case, source, destination, bytes_per_s)`` rows: the baseline is
    still computed from the *design* bandwidths, then the overrides are
    applied (:func:`repro.ops.events.apply_traffic`) and the affected use
    cases join the splice set.  Serialized only when non-empty so
    traffic-free repair jobs keep their historical hashes.
    """

    KIND = "repair"

    use_cases: UseCaseSource
    failures: Dict = field(default_factory=dict)
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    baseline: Optional[Dict] = None
    provision: Optional[Tuple[int, int]] = None
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None
    traffic: Tuple[Tuple[str, str, str, float], ...] = ()
    compare_full_remap: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.failures, dict):
            raise SpecificationError(
                f"repair job 'failures' must be a mapping, got "
                f"{type(self.failures).__name__}"
            )
        if self.baseline is not None and not (
            isinstance(self.baseline, dict)
            and (set(self.baseline) & {"inline", "path"})
        ):
            raise SpecificationError(
                "repair job 'baseline' must be {'inline': {...}} or {'path': ...}"
            )
        for row in self.traffic:
            if len(row) != 4 or row[3] is None or float(row[3]) <= 0:
                raise SpecificationError(
                    "repair job 'traffic' rows must be "
                    f"[use_case, source, destination, bytes_per_s>0], got {row!r}"
                )

    def to_dict(self) -> Dict:
        document = {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "failures": self.failures,
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "baseline": self.baseline,
            "provision": None if self.provision is None else list(self.provision),
            "groups": None if self.groups is None else [list(g) for g in self.groups],
            "compare_full_remap": self.compare_full_remap,
        }
        if self.traffic:
            document["traffic"] = [list(row) for row in self.traffic]
        return document

    @classmethod
    def from_dict(cls, document: Dict) -> "RepairJob":
        provision = document.get("provision")
        return cls(
            use_cases=_parse_source(document),
            failures=document.get("failures", {}),
            params=_parse_params(document),
            config=_parse_config(document),
            baseline=document.get("baseline"),
            provision=None if provision is None else (int(provision[0]), int(provision[1])),
            groups=_parse_groups(document.get("groups")),
            traffic=tuple(
                (str(row[0]), str(row[1]), str(row[2]), float(row[3]))
                for row in document.get("traffic") or ()
            ),
            compare_full_remap=bool(document.get("compare_full_remap", False)),
        )


@dataclass(frozen=True)
class GapJob:
    """Measure the heuristic-vs-optimal cost gap on one design.

    Runs the exact backend (:func:`repro.optimize.ilp.exact_mapping`) and
    the engine's ordinary mapping of the same design, and reduces them to
    optimality-gap metrics; ``refine_iterations > 0`` additionally runs an
    annealing refinement of the heuristic result so the payload ranks all
    three.  ``solver`` is ``"auto"`` (pulp when importable, else the
    dependency-free native branch-and-bound), ``"pulp"`` or ``"native"``;
    ``node_limit`` bounds the exact search (``None`` = unlimited).
    """

    KIND = "gap"

    use_cases: UseCaseSource
    params: NoCParameters = field(default_factory=NoCParameters)
    config: MapperConfig = field(default_factory=MapperConfig)
    solver: str = "auto"
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None
    refine_iterations: int = 0
    seed: int = 0
    node_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.solver not in ("auto", "pulp", "native"):
            raise SpecificationError(
                f"unknown exact solver {self.solver!r}; expected 'auto', "
                "'pulp' or 'native'"
            )
        if self.refine_iterations < 0:
            raise SpecificationError("refine_iterations must be non-negative")
        if self.node_limit is not None and self.node_limit <= 0:
            raise SpecificationError("node_limit must be positive or None")

    def to_dict(self) -> Dict:
        return {
            "kind": self.KIND,
            "use_cases": self.use_cases.to_dict(),
            "params": self.params.to_dict(),
            "config": self.config.to_dict(),
            "solver": self.solver,
            "groups": None if self.groups is None else [list(g) for g in self.groups],
            "refine_iterations": self.refine_iterations,
            "seed": self.seed,
            "node_limit": self.node_limit,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "GapJob":
        node_limit = document.get("node_limit")
        return cls(
            use_cases=_parse_source(document),
            params=_parse_params(document),
            config=_parse_config(document),
            solver=document.get("solver", "auto"),
            groups=_parse_groups(document.get("groups")),
            refine_iterations=int(document.get("refine_iterations", 0)),
            seed=int(document.get("seed", 0)),
            node_limit=None if node_limit is None else int(node_limit),
        )


JobSpec = Union[
    DesignFlowJob, WorstCaseJob, RefineJob, PortfolioRefineJob,
    FrequencyJob, SweepJob, RepairJob, GapJob,
]

#: kind string -> job class (the registry :func:`job_from_dict` dispatches on)
JOB_KINDS: Dict[str, type] = {
    cls.KIND: cls
    for cls in (
        DesignFlowJob, WorstCaseJob, RefineJob, PortfolioRefineJob,
        FrequencyJob, SweepJob, RepairJob, GapJob,
    )
}


# --------------------------------------------------------------------------- #
# registry-level helpers
# --------------------------------------------------------------------------- #
def job_to_dict(job: JobSpec) -> Dict:
    """Convert any job spec to its JSON-ready dictionary form."""
    return job.to_dict()


def job_from_dict(document: Dict) -> JobSpec:
    """Reconstruct a job spec of any kind from its dictionary form."""
    if not isinstance(document, dict):
        raise SerializationError(
            f"job document must be a mapping, got {type(document).__name__}"
        )
    kind = document.get("kind")
    try:
        cls = JOB_KINDS[kind]
    except (KeyError, TypeError):  # TypeError: unhashable junk as the kind
        raise SerializationError(
            f"unknown job kind {kind!r}; expected one of {sorted(JOB_KINDS)}"
        ) from None
    try:
        return cls.from_dict(document)
    except (KeyError, TypeError, ValueError) as exc:
        # Malformed hand-written documents surface as clean serialization
        # errors (the CLI's error contract), not raw builtin tracebacks.
        raise SerializationError(
            f"malformed {kind!r} job document: {exc!r}"
        ) from exc


def _resolve_baseline(baseline: Optional[Dict], base_dir) -> Optional[Dict]:
    """Pull a ``{"path": ...}`` repair baseline inline (content-hash it)."""
    if baseline is None or baseline.get("path") is None:
        return baseline
    target = Path(baseline["path"])
    if base_dir is not None and not target.is_absolute():
        target = Path(base_dir) / target
    try:
        document = json.loads(target.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(
            f"cannot read repair baseline from {target}: {exc}"
        ) from exc
    return {"inline": document}


def resolve_job(job: JobSpec, base_dir: Union[str, Path, None] = None) -> JobSpec:
    """A copy of the job with path references pulled inline.

    Covers the ``use_cases`` source of every kind and the ``baseline``
    mapping-result reference of repair jobs; a missing or unreadable
    baseline file surfaces as a :class:`SerializationError` (the CLI's
    one-line diagnostic contract), not a traceback.
    """
    replacements: Dict[str, object] = {}
    source = getattr(job, "use_cases", None)
    if source is not None and source.path is not None:
        replacements["use_cases"] = source.resolve(base_dir)
    baseline = getattr(job, "baseline", None)
    if baseline is not None:
        resolved = _resolve_baseline(baseline, base_dir)
        if resolved is not baseline:
            replacements["baseline"] = resolved
    if not replacements:
        return job
    return dataclasses.replace(job, **replacements)


def job_hash(job: JobSpec, base_dir: Union[str, Path, None] = None) -> str:
    """Content hash of a job: the persistent cache key.

    Stable SHA-256 over the canonical JSON of the *resolved* job (path
    sources replaced by the referenced file's contents), so two jobs that
    describe the same computation hash identically regardless of how the
    design was supplied, and editing a referenced design file changes the
    key.
    """
    document = job_to_dict(resolve_job(job, base_dir))
    blob = json.dumps(document, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def save_job(job: JobSpec, path: Union[str, Path]) -> Path:
    """Write one job spec to a JSON file; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(job_to_dict(job), indent=2))
    return target


def load_jobs(path: Union[str, Path]) -> List[JobSpec]:
    """Load job specs from a JSON file.

    The file may contain a single job object, a list of job objects, or a
    ``{"jobs": [...]}`` wrapper; relative ``path`` use-case sources are
    resolved against the job file's directory immediately, so the loaded
    jobs are location-independent.
    """
    source = Path(path)
    try:
        document = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read jobs from {source}: {exc}") from exc
    if isinstance(document, dict) and "jobs" in document:
        entries = document["jobs"]
    elif isinstance(document, list):
        entries = document
    else:
        entries = [document]
    return [resolve_job(job_from_dict(entry), source.parent) for entry in entries]
