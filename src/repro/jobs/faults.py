"""Deterministic fault injection for the job-directory service.

A :class:`FaultInjector` decides — purely from a seed and a per-attempt
token — whether a job execution should be killed, hung, or have its results
file corrupted.  The draw is ``sha256(f"{seed}:{token}")`` mapped to
``[0, 1)`` and partitioned into action bands, so

* a given (seed, file, attempt) always injects the same fault — test
  failures reproduce exactly;
* retries of the same file draw fresh tokens (the attempt number is part of
  the token), so a fault can be transient, which is what retry-with-backoff
  exists to absorb; and
* no global random state is consumed or mutated.

:meth:`FaultInjector.from_env` builds one from ``REPRO_FAULT_*`` environment
variables, which is how the CI smoke step injects crashes into a real
``python -m repro serve --once`` process without touching its code.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["InjectedFault", "FaultInjector"]


class InjectedFault(Exception):
    """Raised by an injected ``kill`` when the execution runs in-process."""


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic kill/hang/corrupt decisions for job executions.

    Rates are fractions of executions in ``[0, 1]`` and partition the draw:
    ``[0, kill)`` kills, ``[kill, kill+hang)`` hangs, ``[kill+hang,
    kill+hang+corrupt)`` corrupts, the rest run clean.
    """

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0
    #: how long an injected hang sleeps (the service's timeout must be
    #: smaller for the hang to surface as a timeout rather than a slow job)
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        total = self.kill_rate + self.hang_rate + self.corrupt_rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates must sum to at most 1.0, got {total}"
            )

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultInjector"]:
        """An injector configured from ``REPRO_FAULT_*``, or ``None``.

        ``REPRO_FAULT_KILL_RATE`` / ``REPRO_FAULT_HANG_RATE`` /
        ``REPRO_FAULT_CORRUPT_RATE`` set the rates, ``REPRO_FAULT_SEED``
        the seed and ``REPRO_FAULT_HANG_S`` the hang duration.  All rates
        absent or zero means no injection (returns ``None``).
        """
        environ = os.environ if environ is None else environ
        kill = float(environ.get("REPRO_FAULT_KILL_RATE", 0) or 0)
        hang = float(environ.get("REPRO_FAULT_HANG_RATE", 0) or 0)
        corrupt = float(environ.get("REPRO_FAULT_CORRUPT_RATE", 0) or 0)
        if not (kill or hang or corrupt):
            return None
        return cls(
            kill_rate=kill,
            hang_rate=hang,
            corrupt_rate=corrupt,
            seed=int(environ.get("REPRO_FAULT_SEED", 0) or 0),
            hang_s=float(environ.get("REPRO_FAULT_HANG_S", 30.0) or 30.0),
        )

    def draw(self, token: str) -> float:
        """The deterministic uniform draw in ``[0, 1)`` for one token."""
        digest = hashlib.sha256(f"{self.seed}:{token}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def action(self, token: str) -> Optional[str]:
        """``"kill"`` | ``"hang"`` | ``"corrupt"`` | ``None`` for one token."""
        value = self.draw(token)
        if value < self.kill_rate:
            return "kill"
        if value < self.kill_rate + self.hang_rate:
            return "hang"
        if value < self.kill_rate + self.hang_rate + self.corrupt_rate:
            return "corrupt"
        return None
