"""Job execution: uniform result envelopes, a process pool, and caching.

:class:`JobRunner` is the execution half of the jobs API.  It owns three
responsibilities and nothing else:

* **dispatch** — every job kind maps to one executor function that drives
  the engine-backed consumer which already existed (``DesignFlow``, the
  worst-case baseline, the refiners, the frequency search, the analysis
  sweeps).  Executors are module-level functions of the job spec alone, so
  the same code runs in-process and inside pool workers, and a job's payload
  is a pure function of its spec — which is what makes parallel execution
  bit-identical to serial and results safe to cache.
* **parallelism** — :meth:`JobRunner.run_many` farms jobs out over a
  ``ProcessPoolExecutor`` (``workers >= 2``); results come back in
  submission order and duplicate specs are computed once.
* **persistence** — with a ``cache_dir``, results are stored on disk keyed
  by :func:`repro.jobs.spec.job_hash` (design content + params + config +
  kind + knobs) and later runs — in this process or any other — skip
  execution entirely.  With ``seed_engines=True`` the cache's
  :class:`~repro.jobs.store.EngineStateStore` additionally warm-starts the
  *inside* of executions: fresh engines read previously computed mappings
  and fixed-placement evaluations straight from disk, so even a job whose
  hash was never cached skips the work a sibling already did.

Every execution returns a :class:`JobResult` envelope: the job kind, the
spec hash, the params/config the job ran under, the deterministic
``payload`` dictionary, and diagnostics (wall time, engine cache sizes)
that are deliberately *outside* the payload so payloads can be compared
across serial, parallel and cached runs.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.design_flow import DesignFlow
from repro.core.engine import MappingEngine
from repro.exceptions import MappingError, SpecificationError
from repro.io.serialization import mapping_fingerprint, mapping_result_to_dict
from repro.jobs.cache import JobCache
from repro.jobs.spec import (
    DesignFlowJob,
    FrequencyJob,
    GapJob,
    JobSpec,
    PortfolioRefineJob,
    RefineJob,
    RepairJob,
    SweepJob,
    WorstCaseJob,
    job_hash,
    job_to_dict,
    resolve_job,
)

__all__ = ["JobResult", "JobRunner", "execute_job"]


@dataclass
class JobResult:
    """Uniform envelope every job execution returns.

    ``payload`` is the deterministic outcome (bit-identical across serial,
    parallel and cached execution); ``elapsed_s``, ``stats`` and ``cached``
    are diagnostics and vary run to run.
    """

    kind: str
    spec_hash: str
    params: Dict
    config: Dict
    payload: Dict
    elapsed_s: float = 0.0
    cached: bool = False
    stats: Dict = field(default_factory=dict)
    #: the executing engine's exported full-mapping results (the seed corpus
    #: of :meth:`~repro.core.engine.MappingEngine.import_results`); carried
    #: outside the payload, like the other diagnostics
    engine_results: List = field(default_factory=list)

    def to_dict(self) -> Dict:
        """JSON-ready dictionary form (what the cache stores)."""
        return {
            "kind": self.kind,
            "spec_hash": self.spec_hash,
            "params": self.params,
            "config": self.config,
            "payload": self.payload,
            "elapsed_s": self.elapsed_s,
            "cached": self.cached,
            "stats": self.stats,
            "engine_results": self.engine_results,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "JobResult":
        return cls(
            kind=document["kind"],
            spec_hash=document["spec_hash"],
            params=document.get("params", {}),
            config=document.get("config", {}),
            payload=document.get("payload", {}),
            elapsed_s=float(document.get("elapsed_s", 0.0)),
            cached=bool(document.get("cached", False)),
            stats=document.get("stats", {}),
            engine_results=document.get("engine_results", []),
        )


# --------------------------------------------------------------------------- #
# per-kind executors
# --------------------------------------------------------------------------- #
def _mapping_payload(result) -> Dict:
    """The common payload of one mapping: summary, full dict, fingerprint."""
    return {
        "mapped": True,
        "summary": result.summary(),
        "mapping": mapping_result_to_dict(result),
        "fingerprint": mapping_fingerprint(result),
    }


def _failure_payload(error: MappingError) -> Dict:
    """Payload of an expected mapping failure (the paper reports these too)."""
    payload = {"mapped": False, "error": str(error)}
    largest = getattr(error, "largest_topology", None)
    if largest is not None:
        payload["largest_topology"] = largest
    return payload


def _execute_design_flow(job: DesignFlowJob, engine: MappingEngine) -> Dict:
    flow = DesignFlow(engine=engine, verify=job.verify)
    try:
        outcome = flow.run(
            job.use_cases.build(),
            parallel_modes=job.parallel_modes,
            smooth_switching=job.smooth_switching,
        )
    except MappingError as exc:
        return _failure_payload(exc)
    payload = _mapping_payload(outcome.mapping)
    payload["flow"] = outcome.summary()
    payload["verification_passed"] = (
        None if outcome.verification is None else outcome.verification.passed
    )
    return payload


def _execute_worst_case(job: WorstCaseJob, engine: MappingEngine) -> Dict:
    try:
        result = engine.worst_case(job.use_cases.build())
    except MappingError as exc:
        return _failure_payload(exc)
    return _mapping_payload(result)


def _initial_mapping(job, use_cases, groups, engine: MappingEngine):
    """The mapping a refinement starts from: minimal or a forced mesh.

    With ``mesh`` set the design is placed onto that exact mesh (the
    big-mesh campaign regime — the unified flow would otherwise select the
    smallest feasible topology, which for the paper-scale designs is a
    2x2); without it, the engine's cached minimal-topology mapping.
    """
    mesh = getattr(job, "mesh", None)
    if mesh is None:
        return engine.map(use_cases, groups=groups)
    from repro.noc.topology import Topology

    rows, cols = mesh
    return engine.mapper.map_with_placement(
        use_cases, Topology.mesh(rows, cols), {}, groups=groups, validate=False
    )


def _execute_refine(job: RefineJob, engine: MappingEngine) -> Dict:
    from repro.optimize import AnnealingRefiner, TabuRefiner

    use_cases = job.use_cases.build()
    groups = None if job.groups is None else [list(group) for group in job.groups]
    try:
        initial = _initial_mapping(job, use_cases, groups, engine)
    except MappingError as exc:
        return _failure_payload(exc)
    if job.method == "tabu":
        refiner = TabuRefiner(iterations=job.iterations, seed=job.seed)
    elif job.initial_temperature is not None:
        refiner = AnnealingRefiner(
            iterations=job.iterations, seed=job.seed,
            initial_temperature=job.initial_temperature,
        )
    else:
        refiner = AnnealingRefiner(iterations=job.iterations, seed=job.seed)
    refinement = refiner.refine(initial, use_cases, groups=groups, engine=engine)
    payload = _mapping_payload(refinement.refined)
    payload.update(
        {
            "initial_fingerprint": mapping_fingerprint(refinement.initial),
            "initial_cost": refinement.initial_cost,
            "refined_cost": refinement.refined_cost,
            "improvement": refinement.improvement,
            "iterations": refinement.iterations,
            "accepted_moves": refinement.accepted_moves,
        }
    )
    return payload


def _execute_portfolio(job: "PortfolioRefineJob", engine: MappingEngine) -> Dict:
    """Run a portfolio of refinement chains and reduce to the best.

    The initial mapping is computed once on the enveloping engine and
    ingested into the shared engine-state store (the runner-attached store
    when there is one, a throwaway directory otherwise); every chain —
    expressed as a plain :class:`RefineJob` and executed through
    :func:`execute_job`, serially or over a process pool — reads it (and
    each other's candidate evaluations) from there instead of recomputing.
    Chain payloads are pure functions of their derived specs, so the
    best-of reduction is reproducible for a fixed (seed, chains) pair no
    matter how the chains were scheduled.  The chains' engine counters are
    folded into the enveloping engine's, so the envelope's
    ``stats["engine"]`` accounts for the whole portfolio's traffic.
    """
    import tempfile

    from repro.optimize.portfolio import chain_refine_jobs, chain_summary, reduce_best

    use_cases = job.use_cases.build()
    groups = None if job.groups is None else [list(group) for group in job.groups]
    try:
        _initial_mapping(job, use_cases, groups, engine)
    except MappingError as exc:
        return _failure_payload(exc)
    chains = chain_refine_jobs(job)
    scratch = None
    if engine._store is not None:
        store = engine._store
    else:
        from repro.jobs.store import EngineStateStore

        scratch = tempfile.TemporaryDirectory(prefix="repro-portfolio-")
        store = EngineStateStore(scratch.name)
    try:
        # Seed the shared store with the initial mapping (and anything else
        # this engine already computed) before any chain starts.
        store.ingest(engine.export_results(), engine.export_evaluations())
        store_path = str(store.directory)
        work = [(chain, job_hash(chain)) for chain in chains]
        if job.workers and job.workers >= 2:
            documents = [(job_to_dict(chain), spec_hash) for chain, spec_hash in work]
            with ProcessPoolExecutor(
                max_workers=min(job.workers, len(documents)),
                initializer=_init_worker,
                initargs=(False, store_path),
            ) as pool:
                futures = [
                    pool.submit(_execute_document, document, spec_hash)
                    for document, spec_hash in documents
                ]
                chain_results = [
                    JobResult.from_dict(future.result()) for future in futures
                ]
        else:
            chain_results = [
                execute_job(chain, spec_hash,
                            export_engine=False, store_path=store_path)
                for chain, spec_hash in work
            ]
    finally:
        if scratch is not None:
            scratch.cleanup()
    for result in chain_results:
        chain_counters = result.stats.get("engine", {})
        for counter in engine._counters:
            engine._counters[counter] += int(chain_counters.get(counter, 0))
    payloads = [result.payload for result in chain_results]
    best_index = reduce_best(payloads)
    payload = dict(payloads[best_index])
    payload["portfolio"] = {
        "chains": job.chains,
        "method": job.method,
        "best_chain": best_index,
        "chain_results": [
            chain_summary(chain, chain_payload)
            for chain, chain_payload in zip(chains, payloads)
        ],
    }
    return payload


def _execute_frequency(job: FrequencyJob, engine: MappingEngine) -> Dict:
    from repro.analysis.frequency import minimum_design_frequency
    from repro.units import mhz

    grid = (
        None
        if job.frequencies_mhz is None
        else [mhz(value) for value in job.frequencies_mhz]
    )
    groups = None if job.groups is None else [list(group) for group in job.groups]
    frequency = minimum_design_frequency(
        job.use_cases.build(),
        frequencies=grid,
        groups=groups,
        max_switches=job.max_switches,
        engine=engine,
    )
    return {
        "mapped": frequency is not None,
        "required_frequency_mhz": None if frequency is None else frequency / 1e6,
    }


def _execute_sweep(job: SweepJob, engine: MappingEngine) -> Dict:
    from repro.analysis import sweeps

    if job.study == "normalized_switch_count":
        rows = sweeps.normalized_switch_count_study(engine=engine)
    elif job.study == "use_case_count":
        rows = sweeps.use_case_count_sweep(
            job.benchmark,
            use_case_counts=job.use_case_counts,
            core_count=job.core_count,
            seed=job.seed,
            engine=engine,
        )
    elif job.study == "headline":
        return {"headline": sweeps.headline_summary(engine=engine)}
    elif job.study == "parallel_use_cases":
        rows = sweeps.parallel_use_case_study(
            parallelism_levels=job.parallelism_levels,
            use_case_count=job.use_case_count,
            core_count=job.core_count,
            seed=job.seed,
            max_switches=job.max_switches,
            engine=engine,
        )
    else:
        use_cases = job.use_cases.build()
        if job.study == "ablation_flow_ordering":
            rows = sweeps.ablation_flow_ordering(use_cases, engine=engine)
        elif job.study == "ablation_routing_policy":
            rows = sweeps.ablation_routing_policy(use_cases, engine=engine)
        elif job.study == "ablation_slot_table_size":
            rows = sweeps.ablation_slot_table_size(
                use_cases, sizes=job.slot_table_sizes, engine=engine
            )
        else:  # ablation_grouping — SweepJob validated the study name already
            rows = sweeps.ablation_grouping(use_cases, engine=engine)
    return {"rows": [row.as_dict() for row in rows]}


def _repair_baseline(job: RepairJob, use_cases, engine: MappingEngine):
    """Materialise the baseline mapping a repair job starts from."""
    groups = None if job.groups is None else [list(group) for group in job.groups]
    if job.baseline is not None:
        from repro.io.serialization import load_mapping_result, mapping_result_from_dict

        if job.baseline.get("inline") is not None:
            return mapping_result_from_dict(job.baseline["inline"])
        return load_mapping_result(job.baseline["path"])
    if job.provision is not None:
        from repro.noc.topology import Topology

        rows, cols = job.provision
        return engine.mapper.map_with_placement(
            use_cases, Topology.mesh(rows, cols), {}, groups=groups, validate=False
        )
    return engine.map(use_cases, groups=groups)


def _execute_repair(job: RepairJob, engine: MappingEngine) -> Dict:
    from repro.core.repair import repair_mapping
    from repro.noc.failures import FailureSet

    use_cases = job.use_cases.build()
    failures = FailureSet.from_dict(job.failures)
    groups = None if job.groups is None else [list(group) for group in job.groups]
    try:
        # The baseline is always the design-bandwidth mapping: live traffic
        # re-characterisations splice *against* it, they don't move it.
        baseline = _repair_baseline(job, use_cases, engine)
    except MappingError as exc:
        return _failure_payload(exc)
    changed_use_cases: Tuple[str, ...] = ()
    if job.traffic:
        from repro.ops.events import apply_traffic

        overrides = {
            (name, source, destination): bandwidth
            for name, source, destination, bandwidth in job.traffic
        }
        use_cases, changed_use_cases = apply_traffic(use_cases, overrides)
    outcome = repair_mapping(
        engine, use_cases, baseline, failures,
        groups=groups, compare_full_remap=job.compare_full_remap,
        changed_use_cases=changed_use_cases,
    )
    if outcome.repaired is None:
        payload: Dict = {"mapped": False, "unrepairable": list(outcome.unrepairable)}
    else:
        payload = _mapping_payload(outcome.repaired)
    payload["baseline_fingerprint"] = mapping_fingerprint(baseline)
    metrics = outcome.metrics()
    # Wall times and cache-counter deltas vary run to run (warm vs cold);
    # payloads must stay bit-identical across serial/parallel/cached
    # execution, so those live in the envelope's stats, not here.
    for volatile in ("elapsed_s", "full_remap_elapsed_s", "evaluations"):
        metrics.pop(volatile, None)
    payload["repair"] = metrics
    if job.compare_full_remap and outcome.full_remap is not None:
        payload["full_remap_fingerprint"] = mapping_fingerprint(outcome.full_remap)
    return payload


def _result_cost(result) -> float:
    """Communication cost (Σ bandwidth × hops) of any mapping result."""
    cost = result.cached_communication_cost
    if cost is None:
        cost = sum(
            configuration.total_bandwidth_hops()
            for configuration in result.configurations.values()
        )
    return cost


def _gap_entry(result) -> Dict:
    """One method's row in a gap payload: cost, size and identity."""
    return {
        "cost": round(_result_cost(result), 6),
        "switch_count": result.switch_count,
        "topology": result.topology.name,
        "fingerprint": mapping_fingerprint(result),
    }


def _gap_metrics(cost: float, exact_cost: float) -> Dict:
    absolute = round(cost - exact_cost, 6)
    relative = 0.0 if exact_cost == 0 else round((cost - exact_cost) / exact_cost, 6)
    return {"gap_absolute": absolute, "gap_relative": relative}


def _execute_gap(job: GapJob, engine: MappingEngine) -> Dict:
    """Exact + heuristic (+ optionally refined) mapping, reduced to gaps.

    The exact result is the payload's primary mapping; every method row
    carries its cost, topology and fingerprint plus its gap against the
    optimum.  ``validate_mapping`` — the referee shared with the heuristics
    and the test suite — re-judges the exact result, and its verdict rides
    in the payload.  Solver wall time lives in the envelope stats like all
    volatile diagnostics, so the payload is byte-deterministic.
    """
    from repro.core.validate import validate_mapping
    from repro.optimize.ilp import exact_mapping

    use_cases = job.use_cases.build()
    groups = None if job.groups is None else [list(group) for group in job.groups]
    try:
        exact = exact_mapping(
            use_cases, groups=groups, engine=engine,
            solver=job.solver, node_limit=job.node_limit,
        )
    except MappingError as exc:
        return _failure_payload(exc)
    validation = validate_mapping(exact, use_cases)
    exact_entry = _gap_entry(exact)
    gap: Dict = {
        "solver": job.solver,
        "exact": exact_entry,
        "validated": validation.ok,
    }
    if not validation.ok:  # pragma: no cover - the exact backend is validated
        gap["validation_issues"] = [str(issue) for issue in validation.issues]
    try:
        heuristic = engine.map(use_cases, groups=groups)
    except MappingError as exc:
        gap["heuristic"] = {"mapped": False, "error": str(exc)}
    else:
        entry = _gap_entry(heuristic)
        entry.update(_gap_metrics(entry["cost"], exact_entry["cost"]))
        gap["heuristic"] = entry
        if job.refine_iterations:
            from repro.optimize import AnnealingRefiner

            refinement = AnnealingRefiner(
                iterations=job.refine_iterations, seed=job.seed
            ).refine(heuristic, use_cases, groups=groups, engine=engine)
            entry = _gap_entry(refinement.refined)
            entry.update(_gap_metrics(entry["cost"], exact_entry["cost"]))
            gap["refined"] = entry
    payload = _mapping_payload(exact)
    payload["gap"] = gap
    return payload


_EXECUTORS: Dict[str, Callable[[JobSpec, MappingEngine], Dict]] = {
    DesignFlowJob.KIND: _execute_design_flow,
    WorstCaseJob.KIND: _execute_worst_case,
    RefineJob.KIND: _execute_refine,
    PortfolioRefineJob.KIND: _execute_portfolio,
    FrequencyJob.KIND: _execute_frequency,
    SweepJob.KIND: _execute_sweep,
    RepairJob.KIND: _execute_repair,
    GapJob.KIND: _execute_gap,
}


def execute_job(
    job: JobSpec,
    spec_hash: Optional[str] = None,
    engine_seed: Optional[List[Dict]] = None,
    export_engine: bool = True,
    store_path: Union[str, Path, None] = None,
) -> JobResult:
    """Execute one (resolved) job in this process and envelope the outcome.

    Every execution gets a fresh :class:`MappingEngine`, so the payload
    depends on the job spec alone — never on what ran before it in the same
    process — which is the invariant behind serial/parallel/cached parity.

    ``store_path`` names an on-disk
    :class:`~repro.jobs.store.EngineStateStore`: the fresh engine reads
    previously exported mapping results and fixed-placement evaluations
    directly from it on cache misses (only the keys it needs — nothing is
    shipped up front), and what the execution newly computed is ingested
    back afterwards.  ``engine_seed`` is the in-memory alternative: a list
    of previously exported result entries fed through
    :meth:`MappingEngine.import_results`.  Both preserve the purity
    invariant because seeding only short-circuits deterministic
    recomputation — a seeded payload is bit-identical to a cold one.
    ``export_engine=False`` skips attaching the engine's exported mappings
    to the envelope — the runner passes it when no cache will store them,
    sparing ``--out`` files and memory the corpus nothing consumes.
    """
    try:
        executor = _EXECUTORS[job.KIND]
    except (KeyError, AttributeError):
        raise SpecificationError(f"no executor for job {job!r}") from None
    engine = MappingEngine(params=job.params, config=job.config)
    store = None
    if store_path is not None:
        from repro.jobs.store import EngineStateStore

        store = EngineStateStore(store_path)
        engine.attach_store(store)
    if engine_seed:
        engine.import_results(engine_seed)
    started = time.perf_counter()
    payload = executor(job, engine)
    elapsed = time.perf_counter() - started
    if store is not None:
        # Persist what this execution newly computed (exports exclude
        # imported state, and the store skips keys it already holds, so
        # the corpus stays proportional to distinct computations).
        store.ingest(engine.export_results(), engine.export_evaluations())
    # Canonicalise through JSON so in-process results are indistinguishable
    # from pool-transported or cache-loaded ones (tuples become lists etc.).
    canonical = json.loads(
        json.dumps({
            "payload": payload,
            "engine_results": engine.export_results() if export_engine else [],
        })
    )
    return JobResult(
        kind=job.KIND,
        spec_hash=spec_hash or job_hash(job),
        params=job.params.to_dict(),
        config=job.config.to_dict(),
        payload=canonical["payload"],
        elapsed_s=elapsed,
        stats={"engine": engine.cache_info()},
        engine_results=canonical["engine_results"],
    )


#: per-pool-worker execution context, installed once by the pool initializer;
#: the store *path* is the whole seed transport — each worker reads only the
#: keys it misses straight from disk (ROADMAP follow-up (n): no pickled
#: corpus travels to the pool)
_WORKER_EXPORT = True
_WORKER_STORE_PATH: Optional[str] = None


def _init_worker(export_engine: bool, store_path: Optional[str]) -> None:
    global _WORKER_EXPORT, _WORKER_STORE_PATH
    _WORKER_EXPORT = export_engine
    _WORKER_STORE_PATH = store_path


def _execute_document(document: Dict, spec_hash: str) -> Dict:
    """Pool-worker entry point: job dict in, result dict out (both picklable)."""
    from repro.jobs.spec import job_from_dict

    return execute_job(
        job_from_dict(document), spec_hash,
        export_engine=_WORKER_EXPORT, store_path=_WORKER_STORE_PATH,
    ).to_dict()


# --------------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------------- #
class JobRunner:
    """Executes job specs — serially, over a process pool, and via the cache.

    Parameters
    ----------
    workers:
        Default worker count for :meth:`run_many`; ``None``/``0``/``1`` run
        serially in-process.
    cache_dir:
        Optional directory of the persistent result cache.  When set,
        results are stored after execution and later runs (any process)
        return them without re-computing; :attr:`executed_jobs` counts the
        executions that actually happened.
    base_dir:
        Directory that relative ``path`` use-case sources resolve against
        (the CLI passes the job file's directory).
    seed_engines:
        When true (and a cache is configured), every execution's fresh
        engine is attached to the cache's on-disk
        :class:`~repro.jobs.store.EngineStateStore`, so a job that merely
        *contains* already-computed engine state — a refine job whose
        initial mapping a cached design-flow job produced, a warm
        refinement whose candidate evaluations a sibling run performed —
        reads it from the store instead of recomputing.  Workers receive
        the store *path* (never a pickled corpus) and fetch only the keys
        they miss.  Payloads are unaffected: seeding only short-circuits
        deterministic recomputation.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        base_dir: Union[str, Path, None] = None,
        seed_engines: bool = False,
    ) -> None:
        self.workers = workers
        self.cache = None if cache_dir is None else JobCache(cache_dir)
        self.base_dir = base_dir
        self.seed_engines = seed_engines
        #: number of jobs this runner actually executed (cache misses)
        self.executed_jobs = 0
        #: envelope files whose engine exports were already folded into the
        #: store; later drains (the service calls run_many per file) only
        #: sync what appeared since
        self._seed_files: set = set()

    def run(self, job: JobSpec) -> JobResult:
        """Execute one job in-process (honouring the cache)."""
        return self.run_many([job], workers=1)[0]

    def run_many(
        self,
        jobs: Sequence[JobSpec],
        workers: Optional[int] = None,
    ) -> List[JobResult]:
        """Execute many jobs, returning results in the order given.

        Payloads are bit-identical to running each job serially: every
        execution is a pure function of its (resolved) spec.  Duplicate
        specs are executed once; cached specs are not executed at all.
        """
        workers = self.workers if workers is None else workers
        resolved = [resolve_job(job, self.base_dir) for job in jobs]
        hashes = [job_hash(job) for job in resolved]

        results: List[Optional[JobResult]] = [None] * len(jobs)
        pending: Dict[str, int] = {}  # spec hash -> first index needing it
        loaded: Dict[str, JobResult] = {}  # cache hits, read from disk once
        for index, spec_hash in enumerate(hashes):
            if spec_hash in pending:
                continue
            if spec_hash in loaded:
                results[index] = loaded[spec_hash]
                continue
            if self.cache is not None:
                stored = self.cache.get(spec_hash)
                if stored is not None:
                    hit = JobResult.from_dict(stored)
                    hit.cached = True
                    loaded[spec_hash] = hit
                    results[index] = hit
                    continue
            pending[spec_hash] = index

        if pending:
            store_path = None
            if self.seed_engines and self.cache is not None:
                # Fold engine exports carried by envelopes the store has not
                # seen yet (legacy caches, foreign writers) into the store,
                # then hand executions the store *path* — workers read only
                # the keys they miss; nothing is pickled to the pool.
                self.cache.sync_store(seen=self._seed_files)
                store_path = str(self.cache.store.directory)
            fresh = self._execute_pending(
                [(resolved[index], hashes[index]) for index in pending.values()],
                workers,
                store_path,
                export_engine=self.cache is not None,
            )
            self.executed_jobs += len(fresh)
            for result in fresh:
                results[pending[result.spec_hash]] = result
                if self.cache is not None:
                    self.cache.put(result.spec_hash, result.to_dict())

        # Fan results out to duplicate and cache-hit positions.
        by_hash = {
            result.spec_hash: result for result in results if result is not None
        }
        for index, spec_hash in enumerate(hashes):
            if results[index] is None:
                results[index] = by_hash[spec_hash]
        return list(results)  # type: ignore[arg-type]

    @staticmethod
    def _execute_pending(
        work: List,
        workers: Optional[int],
        store_path: Optional[str] = None,
        export_engine: bool = True,
    ) -> List[JobResult]:
        """Run (job, hash) pairs serially or over a process pool.

        ``workers >= 2`` always goes through the pool — even for a single
        job — so the transport path (pickling, worker imports) is exercised
        whenever the caller asked for it.  Seeding travels as the store
        *path* via the pool initializer; each worker opens the store itself
        and reads only the keys its jobs miss.
        """
        if not workers or workers <= 1:
            return [
                execute_job(job, spec_hash,
                            export_engine=export_engine, store_path=store_path)
                for job, spec_hash in work
            ]
        documents = [(job_to_dict(job), spec_hash) for job, spec_hash in work]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(work)),
            initializer=_init_worker,
            initargs=(export_engine, store_path),
        ) as pool:
            futures = [
                pool.submit(_execute_document, document, spec_hash)
                for document, spec_hash in documents
            ]
            return [JobResult.from_dict(future.result()) for future in futures]
