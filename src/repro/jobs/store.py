"""Keyed on-disk engine-state store: results and fixed-placement evaluations.

Closes ROADMAP follow-ups (k) and (n).  PR 4's seeding stopped at full
mapping results and shipped the raw seed corpus to every pool worker per
drain; :class:`EngineStateStore` replaces that transport with a
content-keyed, append-only directory that workers read *directly* — each
engine fetches only the keys (or evaluation contexts) it actually misses,
so the cost of a large corpus is paid by the jobs that use it, not by every
process start.

Two kinds of engine state live in the store, with different shapes because
their access patterns differ:

* **full mapping results** — one JSON file per key under
  ``results/<kk>/<key>.json`` (sharded by the first two hex digits of the
  key).  A result is looked up individually on a
  :meth:`~repro.core.engine.MappingEngine.map` miss, so one-file-per-key
  with an atomic write (temporary file + ``os.replace``) is the right
  granularity — exactly the :class:`~repro.jobs.cache.JobCache` recipe, one
  level deeper.
* **fixed-placement evaluations** — the refinement hot path asks for
  *hundreds* of tiny entries that share one (spec, grouping, topology,
  operating point) context, so entries are grouped into one append-only
  JSONL file per context under ``evaluations/<cc>/<context>.jsonl``.  An
  engine loads a context once, on its first miss against it, and answers
  every later candidate from memory.

The durability contract, shared by both halves:

* **content keys** — every key is a SHA-256 over the canonical JSON of
  everything the stored payload depends on (spec hash, grouping, method or
  topology, operating point, mapper configuration), so a hit is valid by
  construction and can never be stale;
* **append-only** — existing result files are never overwritten and
  evaluation lines are only ever appended (first occurrence of a key wins);
  the sole exception is :meth:`compact`, which rewrites atomically;
* **atomic writes** — result files go through ``os.replace``; evaluation
  batches are appended with a single ``os.write`` on an ``O_APPEND``
  descriptor, so concurrent writers (pool workers, service instances
  sharing a cache directory) never interleave within a line;
* **corruption tolerance** — unreadable result files and undecodable
  JSONL lines (e.g. the torn tail of a crashed writer) are skipped with a
  :class:`StoreCorruptionWarning`; a corrupt entry degrades to a miss and
  is recomputed, never propagated.

The store is a *cache*, not a system of record: every payload is a pure
function of its key, so entries can be deleted (or the whole directory
``rm -rf``-ed) at any time and :meth:`compact` may evict old evaluation
entries to keep the store bounded.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.io.serialization import document_fingerprint

__all__ = ["EngineStateStore", "StoreCorruptionWarning"]


class StoreCorruptionWarning(UserWarning):
    """A store shard (result file or evaluation line) could not be decoded.

    Raised as a *warning*, never an error: corruption degrades to a cache
    miss and the entry is recomputed.  The message names the offending file
    so an operator can prune it.
    """


#: SHA-256 over canonical JSON — the shared content-key primitive (one
#: definition, so independent writers and readers always agree on keys)
_content_key = document_fingerprint


def _entry_key(entry: Dict) -> Optional[Tuple[int, Tuple[int, ...]]]:
    """The in-context identity of one evaluation entry, or ``None`` if malformed."""
    try:
        return int(entry["group_id"]), tuple(int(v) for v in entry["projection"])
    except (KeyError, TypeError, ValueError):
        return None


class EngineStateStore:
    """Content-keyed, append-only on-disk store of exported engine state.

    Parameters
    ----------
    directory:
        Root of the store (created if missing); ``results/`` and
        ``evaluations/`` shard subtrees live underneath it.
    max_context_entries:
        Bound on the number of evaluation entries kept per context.  When an
        append would push a context past the bound, the context is compacted
        instead: duplicates are dropped and only the newest
        ``max_context_entries`` distinct entries survive.  Matches the
        engine's in-memory evaluation-cache bound by default.

    The write API (:meth:`ingest`) consumes exactly what
    :meth:`~repro.core.engine.MappingEngine.export_results` and
    :meth:`~repro.core.engine.MappingEngine.export_evaluations` produce; the
    read API (:meth:`get_result` / :meth:`load_evaluations`) is what
    :meth:`~repro.core.engine.MappingEngine.attach_store` drives on cache
    misses.  Key derivation (:meth:`result_key` /
    :meth:`evaluation_context`) is part of the public contract: any process
    that can compute the key components can address the store directly.
    """

    #: default per-context evaluation-entry bound (mirrors the engine's
    #: in-memory evaluation LRU)
    DEFAULT_MAX_CONTEXT_ENTRIES = 8192

    def __init__(
        self,
        directory: Union[str, Path],
        max_context_entries: int = DEFAULT_MAX_CONTEXT_ENTRIES,
    ) -> None:
        self.directory = Path(directory)
        self.results_dir = self.directory / "results"
        self.evaluations_dir = self.directory / "evaluations"
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self.evaluations_dir.mkdir(parents=True, exist_ok=True)
        self.max_context_entries = max_context_entries

    # ------------------------------------------------------------------ #
    # key derivation
    # ------------------------------------------------------------------ #
    @staticmethod
    def result_key(
        spec_hash: str,
        groups: Iterable[Iterable[str]],
        method: str,
        params: Dict,
        config: Dict,
    ) -> str:
        """The store key of one full mapping result.

        Covers everything the result is a function of: the order-covering
        spec hash, the resolved smooth-switching grouping, the mapping
        method, and the operating point / mapper configuration documents.
        """
        return _content_key(
            {
                "state": "result",
                "spec_hash": spec_hash,
                "groups": [sorted(group) for group in groups],
                "method": method,
                "params": params,
                "config": config,
            }
        )

    @staticmethod
    def evaluation_context(
        spec_hash: str,
        groups: Iterable[Iterable[str]],
        topology: Dict,
        params: Dict,
        config: Dict,
    ) -> str:
        """The store key of one fixed-placement evaluation *context*.

        A context is everything a group evaluation depends on besides the
        endpoint-placement projection: the spec, the grouping, the concrete
        topology (its canonical document — see
        :func:`repro.io.serialization.topology_to_dict`) and the operating
        point.  All candidate evaluations of one refinement run share a
        single context, which is why they share a single shard file.
        """
        return _content_key(
            {
                "state": "evaluations",
                "spec_hash": spec_hash,
                "groups": [sorted(group) for group in groups],
                "topology": topology,
                "params": params,
                "config": config,
            }
        )

    # ------------------------------------------------------------------ #
    # results: one atomic JSON file per key
    # ------------------------------------------------------------------ #
    def result_path(self, key: str) -> Path:
        """The sharded file one result key lives in."""
        return self.results_dir / key[:2] / f"{key}.json"

    def get_result(self, key: str) -> Optional[Dict]:
        """The stored result entry for a key, or ``None`` on a miss.

        The entry is the :meth:`MappingEngine.export_results` shape
        (``spec_hash`` / ``groups`` / ``method`` / ``result``).  A corrupt
        file warns (:class:`StoreCorruptionWarning`) and counts as a miss.
        """
        target = self.result_path(key)
        try:
            raw = target.read_text()
        except OSError:
            return None
        try:
            document = json.loads(raw)
        except json.JSONDecodeError:
            warnings.warn(
                f"skipping corrupt engine-state result {target}",
                StoreCorruptionWarning,
                stacklevel=2,
            )
            return None
        return document if isinstance(document, dict) else None

    def put_result(self, key: str, entry: Dict) -> bool:
        """Store one exported result entry; returns whether it was written.

        Append-only: an existing key is never overwritten (payloads are pure
        functions of the key, so the incumbent is already correct).  Writes
        go through a per-process temporary file and ``os.replace``, so a
        concurrent reader never observes a torn entry.
        """
        target = self.result_path(key)
        if target.exists():
            return False
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.parent / f".{key}.tmp.{os.getpid()}"
        scratch.write_text(json.dumps(entry))
        os.replace(scratch, target)
        return True

    def result_keys(self) -> Iterator[str]:
        """All result keys currently stored (sorted for determinism)."""
        for entry in sorted(self.results_dir.glob("*/*.json")):
            yield entry.stem

    # ------------------------------------------------------------------ #
    # evaluations: one append-only JSONL shard per context
    # ------------------------------------------------------------------ #
    def evaluation_path(self, context: str) -> Path:
        """The sharded JSONL file one evaluation context lives in."""
        return self.evaluations_dir / context[:2] / f"{context}.jsonl"

    def load_evaluations(
        self, context: str
    ) -> Dict[Tuple[int, Tuple[int, ...]], Dict]:
        """Every stored evaluation entry of one context, keyed in memory.

        Returns ``{(group_id, projection): entry}`` where ``entry`` carries
        the serialised ``outcome`` (``None`` for a cached infeasibility).
        Each shard line holds one appended *batch* (a JSON array of
        entries), so loading a context is a few C-speed parses rather than
        one per entry.  The first occurrence of a key wins — the file is
        append-only, so the first batch is the one every earlier reader
        already observed.  Undecodable lines (a torn tail from a crashed
        writer, external corruption) and malformed entries are skipped with
        a :class:`StoreCorruptionWarning`.
        """
        target = self.evaluation_path(context)
        try:
            raw = target.read_text()
        except OSError:
            return {}
        entries: Dict[Tuple[int, Tuple[int, ...]], Dict] = {}
        corrupt = 0
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                batch = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if not isinstance(batch, list):
                corrupt += 1
                continue
            for entry in batch:
                key = _entry_key(entry) if isinstance(entry, dict) else None
                if key is None:
                    corrupt += 1
                    continue
                entries.setdefault(key, entry)
        if corrupt:
            warnings.warn(
                f"skipped {corrupt} corrupt line(s)/entrie(s) in engine-state "
                f"shard {target}",
                StoreCorruptionWarning,
                stacklevel=2,
            )
        return entries

    def append_evaluations(self, context: str, entries: Iterable[Dict]) -> int:
        """Append new evaluation entries to a context; returns how many.

        Entries whose ``(group_id, projection)`` key the shard already holds
        are skipped — combined with the engines' never-re-export discipline
        this keeps the shard proportional to *distinct* evaluations, not to
        the number of runs that performed them.  The batch goes out as one
        JSON-array line written with a single ``write`` on an ``O_APPEND``
        descriptor, so concurrent writers never interleave mid-line.  When
        the shard would exceed ``max_context_entries`` the append degrades
        to a compacting rewrite that folds the new entries in and evicts the
        oldest.
        """
        known = self.load_evaluations(context)
        fresh: List[Dict] = []
        seen = set(known)
        for entry in entries:
            key = _entry_key(entry)
            if key is None or key in seen:
                continue
            seen.add(key)
            fresh.append(entry)
        if not fresh:
            return 0
        if len(known) + len(fresh) > self.max_context_entries:
            self._rewrite(context, list(known.values()) + fresh)
            return len(fresh)
        target = self.evaluation_path(context)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(fresh) + "\n"
        descriptor = os.open(
            target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, payload.encode())
        finally:
            os.close(descriptor)
        return len(fresh)

    def _rewrite(self, context: str, entries: List[Dict]) -> None:
        """Atomically replace a context shard with the newest bounded entries."""
        kept = entries[-self.max_context_entries:]
        target = self.evaluation_path(context)
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.parent / f".{context}.tmp.{os.getpid()}"
        scratch.write_text(json.dumps(kept) + "\n" if kept else "")
        os.replace(scratch, target)

    def evaluation_contexts(self) -> Iterator[str]:
        """All evaluation contexts currently stored (sorted)."""
        for entry in sorted(self.evaluations_dir.glob("*/*.jsonl")):
            yield entry.stem

    def compact(self) -> Dict[str, int]:
        """Deduplicate and bound every evaluation context; returns stats.

        Rewrites each context shard with duplicates dropped and at most
        ``max_context_entries`` (the newest) retained.  The rewrite is
        atomic per shard; an entry appended by a concurrent writer during
        the rewrite window may be lost, which is acceptable for a cache —
        it would merely be recomputed.  Returns ``{"contexts": ...,
        "entries": ..., "evicted": ...}``.
        """
        contexts = entries_kept = evicted = 0
        for context in list(self.evaluation_contexts()):
            known = list(self.load_evaluations(context).values())
            kept = known[-self.max_context_entries:]
            self._rewrite(context, kept)
            contexts += 1
            entries_kept += len(kept)
            evicted += len(known) - len(kept)
        return {"contexts": contexts, "entries": entries_kept, "evicted": evicted}

    # ------------------------------------------------------------------ #
    # the ingest front door (what executions call after running)
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        results: Iterable[Dict] = (),
        evaluations: Iterable[Dict] = (),
    ) -> Dict[str, int]:
        """Store freshly exported engine state; returns what was written.

        ``results`` is :meth:`MappingEngine.export_results` output;
        ``evaluations`` is :meth:`MappingEngine.export_evaluations` output.
        Both exports already exclude imported entries, and the store skips
        keys it holds, so ingesting is idempotent and the corpus stays
        proportional to distinct computations.  Malformed entries are
        ignored.  Returns ``{"results": ..., "evaluations": ...}`` counts of
        entries actually written.
        """
        stored_results = 0
        for entry in results:
            try:
                result = entry["result"]
                key = self.result_key(
                    entry["spec_hash"],
                    entry["groups"],
                    entry["method"],
                    result["params"],
                    result["config"],
                )
            except (KeyError, TypeError):
                continue
            if self.put_result(key, entry):
                stored_results += 1
        stored_evaluations = 0
        for document in evaluations:
            try:
                context = self.evaluation_context(
                    document["spec_hash"],
                    document["groups"],
                    document["topology"],
                    document["params"],
                    document["config"],
                )
                entries = document["entries"]
            except (KeyError, TypeError):
                continue
            if isinstance(entries, list):
                stored_evaluations += self.append_evaluations(context, entries)
        return {"results": stored_results, "evaluations": stored_evaluations}

    def stats(self) -> Dict[str, int]:
        """Entry counts and on-disk footprint, for telemetry and tests."""
        result_count = sum(1 for _ in self.result_keys())
        contexts = list(self.evaluation_contexts())
        evaluation_count = sum(
            len(self.load_evaluations(context)) for context in contexts
        )
        size = sum(
            path.stat().st_size
            for pattern in ("results/*/*.json", "evaluations/*/*.jsonl")
            for path in self.directory.glob(pattern)
        )
        return {
            "results": result_count,
            "evaluation_contexts": len(contexts),
            "evaluations": evaluation_count,
            "bytes": size,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineStateStore({str(self.directory)!r})"
