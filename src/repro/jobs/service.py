"""Job-directory service loop: the backend of ``python -m repro serve``.

The serve story of the ROADMAP in its simplest robust form: a directory is
the queue.  Producers submit work by dropping job-spec JSON files (any shape
:func:`repro.jobs.spec.load_jobs` accepts) into an *inbox*; a
:class:`JobDirectoryService` tails the inbox and drives every submitted file
through the :class:`~repro.jobs.runner.JobRunner` — with its process pool,
its persistent :class:`~repro.jobs.cache.JobCache` and cache-seeded engines.

Everything lives inside the inbox directory::

    INBOX/*.json           pending spec files (drop one to submit it)
    INBOX/running/         claimed by a service instance, execution in flight
    INBOX/done/            spec files whose results were written
    INBOX/failed/          spec files that could not be loaded or executed
    INBOX/results/         one JSON file of JobResult envelopes per spec file
    INBOX/manifest.jsonl   rolling log: one JSON line per processed file

The lifecycle contract:

* **claiming is atomic** — a pending file is claimed with one ``os.rename``
  into ``running/``.  Renames within a directory tree are atomic on POSIX,
  so two service instances sharing an inbox never execute the same file
  (the loser's rename raises ``FileNotFoundError`` and it moves on).
* **results before completion** — a spec file is renamed into ``done/``
  only *after* its result envelopes were written to ``results/``; observers
  can treat the appearance of a file in ``done/`` as "results are on disk".
* **crash-safe resume** — a service that dies mid-execution leaves its
  claimed files in ``running/``.  The first drain of the *next* instance
  renames those back into the inbox and re-executes them; with a
  persistent cache the redone work is answered from disk, so a crash costs
  at most the files that were actually in flight.  Recovery runs once per
  instance, at startup — never mid-operation — so it cannot steal a live
  peer's in-flight files; the one residual race (an instance *starting*
  while a peer is mid-execution) degrades to a duplicate execution with
  identical results, never to lost work or a crashed peer.
* **poison tolerance** — a file that cannot be loaded or executed is moved
  to ``failed/`` with the error recorded in the manifest, and the service
  keeps draining the rest of the inbox.
* **bounded retries** — *deterministic* errors (an unloadable document, a
  :class:`~repro.exceptions.ReproError` from execution) fail immediately:
  retrying a pure function of the spec cannot change the outcome.
  *Unexpected* errors — a crashed or timed-out execution, a corrupt results
  file, an injected fault — are retried with exponential backoff up to
  ``max_attempts``; a file that keeps failing is **quarantined** into
  ``failed/`` with every attempt's error in its manifest record
  (``quarantined: true``), so one poison job can never wedge the loop.
* **timeout isolation** — with ``job_timeout_s`` set, each attempt runs in
  a forked child process; a hung execution is terminated at the deadline
  and handled like any transient failure.  Results are written to a
  temporary file and validated (parsed) by the parent before the atomic
  rename that publishes them, so a crash mid-write can never publish a
  torn results file.

Every processed file appends one record to ``manifest.jsonl`` (append-only,
one JSON object per line) so external tooling can tail service history
without scanning the result files.  The manifest **rotates**: when the live
file exceeds ``manifest_max_bytes`` it is renamed to ``manifest-<n>.jsonl``
(monotonically numbered) and a fresh ``manifest.jsonl`` starts — an inbox
that sees millions of files never grows one unbounded log.
:func:`inbox_status` (the backend of ``python -m repro serve INBOX
--status``) reads the whole rotated history plus the state directories
without touching — or creating — anything.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.jobs.faults import FaultInjector, InjectedFault
from repro.jobs.runner import JobRunner
from repro.jobs.spec import load_jobs
from repro.ops.clock import Clock, SystemClock

__all__ = ["JobDirectoryService", "inbox_status", "fleet_status"]


def _unique_path(directory: Path, name: str) -> Path:
    """A path in ``directory`` for ``name`` that does not exist yet.

    Resubmitting a file name that already completed must not clobber the
    earlier record, so collisions get a ``-2``, ``-3``, ... suffix.
    """
    target = directory / name
    if not target.exists():
        return target
    stem, suffix = os.path.splitext(name)
    for counter in itertools.count(2):
        target = directory / f"{stem}-{counter}{suffix}"
        if not target.exists():
            return target
    raise AssertionError("unreachable")  # pragma: no cover


class JobDirectoryService:
    """Watches an inbox directory and executes submitted job-spec files.

    Parameters
    ----------
    inbox:
        The watched directory (created, along with its state subdirectories,
        if missing).
    workers:
        Process-pool width handed to the :class:`JobRunner`.
    cache_dir:
        Directory of the persistent result cache.  Strongly recommended for
        a service: resubmitted and resumed files are answered from disk, and
        fresh engines are seeded from the cached engine exports.
    seed_engines:
        Seed every execution's engine from the cache's exported mapping
        results (only meaningful with ``cache_dir``; default on).
    runner:
        Inject a pre-configured :class:`JobRunner` instead (overrides the
        three knobs above).
    manifest_max_bytes:
        Rotation threshold for ``manifest.jsonl``: once the live file
        reaches this size, the next record rotates it to
        ``manifest-<n>.jsonl`` and starts fresh.  Readers
        (:func:`inbox_status`, :meth:`manifest_records`) always see the
        whole rotated history.
    max_attempts:
        Executions per file before a transiently failing job is quarantined
        into ``failed/``.  Deterministic errors never retry.
    retry_backoff_s:
        Base sleep between attempts; attempt ``n`` waits
        ``retry_backoff_s * 2**(n-1)``.
    job_timeout_s:
        Per-attempt wall-clock budget.  When set, attempts run in a forked
        child process that is terminated at the deadline (a timeout counts
        as a transient failure); when ``None`` attempts run in-process and
        are never preempted.
    fault_injector:
        A :class:`~repro.jobs.faults.FaultInjector` that deterministically
        kills/hangs/corrupts a fraction of attempts (tests, chaos drills).
        Defaults to :meth:`FaultInjector.from_env`, so ``REPRO_FAULT_*``
        environment variables inject faults into a real service process.
    """

    #: default manifest rotation threshold (~4 MB ≈ tens of thousands of
    #: records per segment)
    DEFAULT_MANIFEST_MAX_BYTES = 4_000_000

    def __init__(
        self,
        inbox: Union[str, Path],
        workers: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        seed_engines: bool = True,
        runner: Optional[JobRunner] = None,
        manifest_max_bytes: int = DEFAULT_MANIFEST_MAX_BYTES,
        max_attempts: int = 3,
        retry_backoff_s: float = 0.05,
        job_timeout_s: Optional[float] = None,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional["Clock"] = None,
    ) -> None:
        self.inbox = Path(inbox)
        self.running_dir = self.inbox / "running"
        self.done_dir = self.inbox / "done"
        self.failed_dir = self.inbox / "failed"
        self.results_dir = self.inbox / "results"
        for directory in (self.inbox, self.running_dir, self.done_dir,
                          self.failed_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.inbox / "manifest.jsonl"
        self.manifest_max_bytes = manifest_max_bytes
        self.runner = runner or JobRunner(
            workers=workers,
            cache_dir=cache_dir,
            seed_engines=seed_engines and cache_dir is not None,
        )
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff_s = retry_backoff_s
        self.clock = clock or SystemClock()
        self.job_timeout_s = job_timeout_s
        self.fault_injector = (
            FaultInjector.from_env() if fault_injector is None else fault_injector
        )
        #: files processed (done + failed) over this service's lifetime
        self.processed_files = 0
        self._stop = False
        self._recovered = False

    # ------------------------------------------------------------------ #
    # directory protocol
    # ------------------------------------------------------------------ #
    def pending(self) -> List[Path]:
        """Spec files currently waiting in the inbox, in submission-name order.

        Sorting by name makes one drain deterministic; producers that care
        about ordering can prefix names with a sequence number.
        """
        return sorted(
            entry for entry in self.inbox.glob("*.json") if entry.is_file()
        )

    def recover(self) -> List[Path]:
        """Return files a crashed instance left in ``running/`` to the inbox.

        The crash-safe-resume half of the contract: anything in ``running/``
        at *startup* was claimed but not completed, so it is made pending
        again and will be re-executed (cheaply, when the cache already
        holds its results).  :meth:`run_once` calls this exactly once per
        instance — recovering on every drain would steal the in-flight
        files of a live peer sharing the inbox.  Returns the inbox paths
        the stale files were moved to.
        """
        self._recovered = True
        recovered: List[Path] = []
        for stale in sorted(self.running_dir.glob("*.json")):
            target = _unique_path(self.inbox, stale.name)
            try:
                os.replace(stale, target)
            except FileNotFoundError:
                continue  # a concurrently starting peer recovered it first
            recovered.append(target)
        return recovered

    def _claim(self, path: Path) -> Optional[Path]:
        """Atomically move a pending file into ``running/``; None if lost."""
        target = _unique_path(self.running_dir, path.name)
        try:
            os.rename(path, target)
        except FileNotFoundError:
            return None  # another instance claimed it first
        return target

    def _append_manifest(self, record: Dict) -> None:
        self._rotate_manifest_if_needed()
        with self.manifest_path.open("a") as manifest:
            manifest.write(json.dumps(record) + "\n")

    def _rotate_manifest_if_needed(self) -> Optional[Path]:
        """Rotate the live manifest once it reaches the size threshold.

        The live file is renamed to the next free ``manifest-<n>.jsonl``
        (monotonic, so chronological order is recoverable by number) and
        appending continues into a fresh ``manifest.jsonl``.  Returns the
        rotated path, or ``None`` when no rotation happened.
        """
        try:
            size = self.manifest_path.stat().st_size
        except OSError:
            return None
        if size < self.manifest_max_bytes:
            return None
        rotated = _rotated_manifests(self.inbox)
        next_index = rotated[-1][0] + 1 if rotated else 1
        target = self.inbox / f"manifest-{next_index}.jsonl"
        try:
            os.replace(self.manifest_path, target)
        except FileNotFoundError:  # pragma: no cover - racing peer rotated it
            return None
        return target

    def manifest_records(self) -> Iterator[Dict]:
        """Every manifest record, oldest first, across all rotated segments."""
        return _iter_manifest_records(self.inbox)

    def status(self) -> Dict:
        """Aggregate inbox state (see :func:`inbox_status`)."""
        return inbox_status(self.inbox)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def process_file(self, claimed: Path) -> Optional[Dict]:
        """Execute one claimed spec file and settle it into done/ or failed/.

        Returns the manifest record that was appended.  Never raises for a
        bad file: load and execution errors mark the file failed and the
        service moves on.  Deterministic errors (an unloadable document, a
        :class:`ReproError` from execution) fail on the first attempt;
        transient ones (crash, timeout, corrupt results, injected fault)
        retry with backoff up to ``max_attempts`` before the file is
        quarantined.  Returns ``None`` when the claim was lost before any
        work happened — a freshly started peer recovered the file while it
        sat in ``running/`` — in which case the peer owns it now and
        nothing is recorded.
        """
        started = time.perf_counter()
        try:
            jobs = load_jobs(claimed)
        except Exception as exc:  # noqa: BLE001 — poison files must not kill the loop
            # A document that does not load is deterministically broken:
            # no retry can fix it.
            if not claimed.exists():
                return None  # claim lost to a recovering peer before loading
            return self._settle_failed(claimed, f"{type(exc).__name__}: {exc}",
                                       attempts=1, attempt_errors=[],
                                       started=started)

        attempt_errors: List[str] = []
        for attempt in range(1, self.max_attempts + 1):
            token = f"{claimed.name}:{attempt}"
            try:
                text, envelopes, executed = self._attempt(claimed, jobs, token)
            except ReproError as exc:
                # Executions are pure functions of the spec: a domain error
                # is deterministic, so retrying cannot change it.
                if not claimed.exists():
                    return None
                return self._settle_failed(claimed, f"{type(exc).__name__}: {exc}",
                                           attempts=attempt,
                                           attempt_errors=attempt_errors,
                                           started=started)
            except Exception as exc:  # noqa: BLE001 — transient: crash/timeout/corruption
                attempt_errors.append(f"{type(exc).__name__}: {exc}")
                if attempt < self.max_attempts:
                    if self.retry_backoff_s:
                        self.clock.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
                    continue
                if not claimed.exists():
                    return None
                return self._settle_failed(claimed, attempt_errors[-1],
                                           attempts=attempt,
                                           attempt_errors=attempt_errors,
                                           started=started)
            else:
                break

        target = _unique_path(self.done_dir, claimed.name)
        results_path = self.results_dir / f"{target.stem}.json"
        results_path.write_text(text)
        # Results are on disk — only now does the spec count as done.
        try:
            os.replace(claimed, target)
        except FileNotFoundError:
            # A freshly started peer recovered our claimed file while we
            # were executing.  The work is done and the (deterministic)
            # results are written, so record it; whoever re-claimed the
            # spec will settle the file itself with identical results.
            pass
        record = {
            "file": target.name,
            "status": "done",
            "jobs": len(envelopes),
            "cached": sum(1 for envelope in envelopes if envelope.get("cached")),
            "executed": executed,
            "spec_hashes": [envelope["spec_hash"] for envelope in envelopes],
            "results": str(results_path.relative_to(self.inbox)),
            "attempts": len(attempt_errors) + 1,
        }
        if attempt_errors:
            record["attempt_errors"] = attempt_errors
        record["elapsed_s"] = round(time.perf_counter() - started, 6)
        record["unix_time"] = round(time.time(), 3)
        self._append_manifest(record)
        self.processed_files += 1
        return record

    def _settle_failed(
        self,
        claimed: Path,
        error: str,
        attempts: int,
        attempt_errors: List[str],
        started: float,
    ) -> Optional[Dict]:
        """Move a claimed file into ``failed/`` and append its record.

        A file whose every allowed attempt failed transiently is marked
        ``quarantined`` — it exhausted its retry budget rather than failing
        deterministically.
        """
        target = _unique_path(self.failed_dir, claimed.name)
        try:
            os.replace(claimed, target)
        except FileNotFoundError:
            return None
        record: Dict = {
            "file": target.name,
            "status": "failed",
            "error": error,
            "attempts": attempts,
        }
        if attempt_errors:
            record["attempt_errors"] = list(attempt_errors)
        if attempts >= self.max_attempts and len(attempt_errors) == attempts:
            record["quarantined"] = True
        record["elapsed_s"] = round(time.perf_counter() - started, 6)
        record["unix_time"] = round(time.time(), 3)
        self._append_manifest(record)
        self.processed_files += 1
        return record

    # ------------------------------------------------------------------ #
    # one execution attempt (in-process or isolated)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _corrupt(text: str) -> str:
        """Injected corruption: truncate mid-document and append garbage."""
        return text[: max(1, len(text) // 2)] + "\x00<injected-corruption>"

    @staticmethod
    def _validated(text: str) -> List[Dict]:
        """Parse a results payload, raising on anything torn or corrupt."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"results payload is corrupt: {exc}") from None
        if not isinstance(document, list):
            raise ValueError("results payload is not a list of envelopes")
        return document

    def _attempt(
        self, claimed: Path, jobs: List, token: str
    ) -> Tuple[str, List[Dict], int]:
        """Run one execution attempt; returns (payload text, envelopes, executed).

        The payload text is validated (parsed) before being returned, so a
        corrupted write surfaces here — as a retryable error — never as a
        published torn results file.
        """
        injector = self.fault_injector
        action = injector.action(token) if injector is not None else None
        if self.job_timeout_s is not None:
            return self._attempt_isolated(claimed, jobs, token, action)
        if action == "kill":
            raise InjectedFault(f"injected kill ({token})")
        if action == "hang":
            # In-process there is nothing to preempt the stall; model the
            # watchdog giving up after the hang.
            self.clock.sleep(injector.hang_s)
            raise InjectedFault(f"injected hang ({token})")
        executed_before = self.runner.executed_jobs
        results = self.runner.run_many(jobs)
        executed = self.runner.executed_jobs - executed_before
        text = json.dumps([result.to_dict() for result in results], indent=2)
        if action == "corrupt":
            text = self._corrupt(text)
        return text, self._validated(text), executed

    def _attempt_isolated(
        self, claimed: Path, jobs: List, token: str, action: Optional[str]
    ) -> Tuple[str, List[Dict], int]:
        """Run one attempt in a forked child under the wall-clock budget.

        The child writes the serialised envelopes to a temporary file; the
        parent validates them after a clean exit.  Kill faults crash the
        child, hang faults stall it into the timeout, corrupt faults garble
        the temporary file — all surface as retryable errors here, and the
        real results file is only ever written from validated content.
        """
        tmp_path = self.results_dir / f".{claimed.name}.{token.rsplit(':', 1)[-1]}.tmp"
        injector = self.fault_injector

        def _child() -> None:
            try:
                if action == "kill":
                    os._exit(23)
                if action == "hang":
                    time.sleep(injector.hang_s if injector is not None else 3600)
                results = self.runner.run_many(jobs)
                text = json.dumps([result.to_dict() for result in results], indent=2)
                if action == "corrupt":
                    text = self._corrupt(text)
                tmp_path.write_text(text)
            except ReproError as exc:
                tmp_path.write_text(json.dumps(
                    {"__error__": f"{type(exc).__name__}: {exc}"}
                ))
                os._exit(17)
            except BaseException:  # noqa: BLE001 - child reports via exit code
                os._exit(29)
            os._exit(0)

        process = multiprocessing.get_context("fork").Process(target=_child)
        try:
            process.start()
            process.join(self.job_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join()
                raise TimeoutError(
                    f"execution exceeded {self.job_timeout_s}s ({token})"
                )
            if process.exitcode == 17:
                message = "execution failed"
                try:
                    message = json.loads(tmp_path.read_text())["__error__"]
                except Exception:  # noqa: BLE001 - marker file may be torn
                    pass
                raise ReproError(message)
            if process.exitcode != 0:
                raise ChildProcessError(
                    f"execution crashed with exit code {process.exitcode} ({token})"
                )
            text = tmp_path.read_text()
            envelopes = self._validated(text)
            executed = sum(
                1 for envelope in envelopes if not envelope.get("cached")
            )
            return text, envelopes, executed
        finally:
            try:
                tmp_path.unlink()
            except OSError:
                pass

    def run_once(self) -> List[Dict]:
        """Recover (first drain only), then drain the inbox.

        Polls again after each batch so files submitted while a batch was
        executing are picked up in the same drain; returns the manifest
        records once the inbox is observed empty (or :meth:`stop` was
        called).
        """
        if not self._recovered:
            self.recover()
        records: List[Dict] = []
        while not self._stop:
            batch = self.pending()
            if not batch:
                break
            for path in batch:
                if self._stop:
                    break
                claimed = self._claim(path)
                if claimed is None:
                    continue
                record = self.process_file(claimed)
                if record is not None:
                    records.append(record)
        return records

    def serve_forever(
        self,
        poll_interval: float = 1.0,
        max_polls: Optional[int] = None,
    ) -> int:
        """Drain the inbox repeatedly, sleeping ``poll_interval`` in between.

        Runs until :meth:`stop` is called (from a signal handler or another
        thread) or ``max_polls`` drains have happened (handy for tests);
        returns the number of files processed during the call.
        """
        processed_before = self.processed_files
        polls = 0
        while not self._stop:
            self.run_once()
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
            if not self._stop:
                self.clock.sleep(poll_interval)
        return self.processed_files - processed_before

    def stop(self) -> None:
        """Ask the service loop to exit after the file currently in flight."""
        self._stop = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobDirectoryService({str(self.inbox)!r}, "
            f"processed={self.processed_files})"
        )


# --------------------------------------------------------------------------- #
# read-only inbox inspection (the backend of ``repro serve --status``)
# --------------------------------------------------------------------------- #
def _rotated_manifests(inbox: Path) -> List:
    """(index, path) pairs of rotated manifest segments, oldest first."""
    rotated = []
    for path in inbox.glob("manifest-*.jsonl"):
        suffix = path.stem[len("manifest-"):]
        if suffix.isdigit():
            rotated.append((int(suffix), path))
    return sorted(rotated)


def _iter_manifest_records(inbox: Path) -> Iterator[Dict]:
    """All manifest records of an inbox in chronological order.

    Walks the rotated segments by number, then the live file.  Unreadable
    files and undecodable lines (a torn tail from a crashed writer) are
    skipped — status must work on the inbox of a service that just died.
    """
    paths = [path for _, path in _rotated_manifests(inbox)]
    paths.append(inbox / "manifest.jsonl")
    for path in paths:
        try:
            raw = path.read_text()
        except OSError:
            continue
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def inbox_status(inbox: Union[str, Path]) -> Dict:
    """Aggregate the observable state of a service inbox, read-only.

    Counts the pending/running/done/failed spec files, folds the whole
    rotated manifest history into done/failed/job/cache totals and surfaces
    the most recent record.  Unlike constructing a
    :class:`JobDirectoryService`, this creates nothing on disk — pointing
    it at a directory that is not an inbox raises
    :class:`~repro.exceptions.ReproError` instead of scaffolding one.
    """
    root = Path(inbox)
    if not root.is_dir():
        raise ReproError(f"inbox directory {root} does not exist")
    counts = {
        "pending": sum(1 for entry in root.glob("*.json") if entry.is_file()),
        "running": len(list((root / "running").glob("*.json"))),
        "done": len(list((root / "done").glob("*.json"))),
        "failed": len(list((root / "failed").glob("*.json"))),
    }
    records = done = failed = jobs = cached = executed = 0
    files_retried = extra_attempts = 0
    quarantined: List[Dict] = []
    last: Optional[Dict] = None
    for record in _iter_manifest_records(root):
        records += 1
        last = record
        attempts = int(record.get("attempts", 1))
        if attempts > 1:
            files_retried += 1
            extra_attempts += attempts - 1
        if record.get("status") == "failed":
            failed += 1
            if record.get("quarantined"):
                quarantined.append({
                    "file": record.get("file"),
                    "attempts": attempts,
                    "error": record.get("error"),
                })
            continue
        done += 1
        jobs += int(record.get("jobs", 0))
        cached += int(record.get("cached", 0))
        executed += int(record.get("executed", 0))
    status = {
        "inbox": str(root),
        "files": counts,
        "manifest": {
            "segments": len(_rotated_manifests(root))
            + (1 if (root / "manifest.jsonl").exists() else 0),
            "records": records,
            "done": done,
            "failed": failed,
            "jobs": jobs,
            "cached": cached,
            "executed": executed,
        },
        "retries": {
            "files_retried": files_retried,
            "extra_attempts": extra_attempts,
        },
        "quarantined": quarantined,
        "last_record": last,
    }
    events_path = root / "monitor" / "events.jsonl"
    if events_path.exists():
        from repro.ops.events import replay_events

        try:
            state = replay_events(events_path)
        except ReproError as exc:
            status["monitor"] = {"error": str(exc)}
        else:
            status["monitor"] = {
                "events": state.seq,
                "time": state.time,
                "failures": state.failures.describe(),
                "traffic_overrides": len(state.traffic),
                "enqueued": len(state.enqueued),
                "last_enqueued": state.enqueued[-1] if state.enqueued else None,
            }
    return status


def fleet_status(
    inboxes: Sequence[Union[str, Path]],
    cache_dir: Union[str, Path, None] = None,
) -> Dict:
    """One summary over many inboxes: the fleet view of ``serve --status``.

    Runs :func:`inbox_status` on every inbox (same read-only contract — an
    inbox that does not exist raises rather than being scaffolded) and sums
    the file and manifest counters into a ``totals`` block.  With
    ``cache_dir``, the cache's engine-state store footprint is reported
    too — guarded by an existence check first, because the store's
    constructor creates its directory tree and a *status* query must not.
    """
    statuses = [inbox_status(inbox) for inbox in inboxes]
    totals = {
        "inboxes": len(statuses),
        "files": {key: 0 for key in ("pending", "running", "done", "failed")},
        "manifest": {
            key: 0
            for key in ("segments", "records", "done", "failed",
                        "jobs", "cached", "executed")
        },
        "quarantined": sum(len(status["quarantined"]) for status in statuses),
    }
    for status in statuses:
        for key in totals["files"]:
            totals["files"][key] += status["files"][key]
        for key in totals["manifest"]:
            totals["manifest"][key] += status["manifest"][key]
    store_stats: Optional[Dict] = None
    if cache_dir is not None:
        store_dir = Path(cache_dir) / "engine-state"
        if store_dir.is_dir():
            from repro.jobs.store import EngineStateStore

            store_stats = dict(EngineStateStore(store_dir).stats())
            store_stats["directory"] = str(store_dir)
    return {"inboxes": statuses, "totals": totals, "store": store_stats}
