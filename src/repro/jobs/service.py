"""Job-directory service loop: the backend of ``python -m repro serve``.

The serve story of the ROADMAP in its simplest robust form: a directory is
the queue.  Producers submit work by dropping job-spec JSON files (any shape
:func:`repro.jobs.spec.load_jobs` accepts) into an *inbox*; a
:class:`JobDirectoryService` tails the inbox and drives every submitted file
through the :class:`~repro.jobs.runner.JobRunner` — with its process pool,
its persistent :class:`~repro.jobs.cache.JobCache` and cache-seeded engines.

Everything lives inside the inbox directory::

    INBOX/*.json           pending spec files (drop one to submit it)
    INBOX/running/         claimed by a service instance, execution in flight
    INBOX/done/            spec files whose results were written
    INBOX/failed/          spec files that could not be loaded or executed
    INBOX/results/         one JSON file of JobResult envelopes per spec file
    INBOX/manifest.jsonl   rolling log: one JSON line per processed file

The lifecycle contract:

* **claiming is atomic** — a pending file is claimed with one ``os.rename``
  into ``running/``.  Renames within a directory tree are atomic on POSIX,
  so two service instances sharing an inbox never execute the same file
  (the loser's rename raises ``FileNotFoundError`` and it moves on).
* **results before completion** — a spec file is renamed into ``done/``
  only *after* its result envelopes were written to ``results/``; observers
  can treat the appearance of a file in ``done/`` as "results are on disk".
* **crash-safe resume** — a service that dies mid-execution leaves its
  claimed files in ``running/``.  The first drain of the *next* instance
  renames those back into the inbox and re-executes them; with a
  persistent cache the redone work is answered from disk, so a crash costs
  at most the files that were actually in flight.  Recovery runs once per
  instance, at startup — never mid-operation — so it cannot steal a live
  peer's in-flight files; the one residual race (an instance *starting*
  while a peer is mid-execution) degrades to a duplicate execution with
  identical results, never to lost work or a crashed peer.
* **poison tolerance** — a file that cannot be loaded or executed is moved
  to ``failed/`` with the error recorded in the manifest, and the service
  keeps draining the rest of the inbox.

Every processed file appends one record to ``manifest.jsonl`` (append-only,
one JSON object per line) so external tooling can tail service history
without scanning the result files.  The manifest **rotates**: when the live
file exceeds ``manifest_max_bytes`` it is renamed to ``manifest-<n>.jsonl``
(monotonically numbered) and a fresh ``manifest.jsonl`` starts — an inbox
that sees millions of files never grows one unbounded log.
:func:`inbox_status` (the backend of ``python -m repro serve INBOX
--status``) reads the whole rotated history plus the state directories
without touching — or creating — anything.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.exceptions import ReproError
from repro.jobs.runner import JobRunner
from repro.jobs.spec import load_jobs

__all__ = ["JobDirectoryService", "inbox_status"]


def _unique_path(directory: Path, name: str) -> Path:
    """A path in ``directory`` for ``name`` that does not exist yet.

    Resubmitting a file name that already completed must not clobber the
    earlier record, so collisions get a ``-2``, ``-3``, ... suffix.
    """
    target = directory / name
    if not target.exists():
        return target
    stem, suffix = os.path.splitext(name)
    for counter in itertools.count(2):
        target = directory / f"{stem}-{counter}{suffix}"
        if not target.exists():
            return target
    raise AssertionError("unreachable")  # pragma: no cover


class JobDirectoryService:
    """Watches an inbox directory and executes submitted job-spec files.

    Parameters
    ----------
    inbox:
        The watched directory (created, along with its state subdirectories,
        if missing).
    workers:
        Process-pool width handed to the :class:`JobRunner`.
    cache_dir:
        Directory of the persistent result cache.  Strongly recommended for
        a service: resubmitted and resumed files are answered from disk, and
        fresh engines are seeded from the cached engine exports.
    seed_engines:
        Seed every execution's engine from the cache's exported mapping
        results (only meaningful with ``cache_dir``; default on).
    runner:
        Inject a pre-configured :class:`JobRunner` instead (overrides the
        three knobs above).
    manifest_max_bytes:
        Rotation threshold for ``manifest.jsonl``: once the live file
        reaches this size, the next record rotates it to
        ``manifest-<n>.jsonl`` and starts fresh.  Readers
        (:func:`inbox_status`, :meth:`manifest_records`) always see the
        whole rotated history.
    """

    #: default manifest rotation threshold (~4 MB ≈ tens of thousands of
    #: records per segment)
    DEFAULT_MANIFEST_MAX_BYTES = 4_000_000

    def __init__(
        self,
        inbox: Union[str, Path],
        workers: Optional[int] = None,
        cache_dir: Union[str, Path, None] = None,
        seed_engines: bool = True,
        runner: Optional[JobRunner] = None,
        manifest_max_bytes: int = DEFAULT_MANIFEST_MAX_BYTES,
    ) -> None:
        self.inbox = Path(inbox)
        self.running_dir = self.inbox / "running"
        self.done_dir = self.inbox / "done"
        self.failed_dir = self.inbox / "failed"
        self.results_dir = self.inbox / "results"
        for directory in (self.inbox, self.running_dir, self.done_dir,
                          self.failed_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.inbox / "manifest.jsonl"
        self.manifest_max_bytes = manifest_max_bytes
        self.runner = runner or JobRunner(
            workers=workers,
            cache_dir=cache_dir,
            seed_engines=seed_engines and cache_dir is not None,
        )
        #: files processed (done + failed) over this service's lifetime
        self.processed_files = 0
        self._stop = False
        self._recovered = False

    # ------------------------------------------------------------------ #
    # directory protocol
    # ------------------------------------------------------------------ #
    def pending(self) -> List[Path]:
        """Spec files currently waiting in the inbox, in submission-name order.

        Sorting by name makes one drain deterministic; producers that care
        about ordering can prefix names with a sequence number.
        """
        return sorted(
            entry for entry in self.inbox.glob("*.json") if entry.is_file()
        )

    def recover(self) -> List[Path]:
        """Return files a crashed instance left in ``running/`` to the inbox.

        The crash-safe-resume half of the contract: anything in ``running/``
        at *startup* was claimed but not completed, so it is made pending
        again and will be re-executed (cheaply, when the cache already
        holds its results).  :meth:`run_once` calls this exactly once per
        instance — recovering on every drain would steal the in-flight
        files of a live peer sharing the inbox.  Returns the inbox paths
        the stale files were moved to.
        """
        self._recovered = True
        recovered: List[Path] = []
        for stale in sorted(self.running_dir.glob("*.json")):
            target = _unique_path(self.inbox, stale.name)
            try:
                os.replace(stale, target)
            except FileNotFoundError:
                continue  # a concurrently starting peer recovered it first
            recovered.append(target)
        return recovered

    def _claim(self, path: Path) -> Optional[Path]:
        """Atomically move a pending file into ``running/``; None if lost."""
        target = _unique_path(self.running_dir, path.name)
        try:
            os.rename(path, target)
        except FileNotFoundError:
            return None  # another instance claimed it first
        return target

    def _append_manifest(self, record: Dict) -> None:
        self._rotate_manifest_if_needed()
        with self.manifest_path.open("a") as manifest:
            manifest.write(json.dumps(record) + "\n")

    def _rotate_manifest_if_needed(self) -> Optional[Path]:
        """Rotate the live manifest once it reaches the size threshold.

        The live file is renamed to the next free ``manifest-<n>.jsonl``
        (monotonic, so chronological order is recoverable by number) and
        appending continues into a fresh ``manifest.jsonl``.  Returns the
        rotated path, or ``None`` when no rotation happened.
        """
        try:
            size = self.manifest_path.stat().st_size
        except OSError:
            return None
        if size < self.manifest_max_bytes:
            return None
        rotated = _rotated_manifests(self.inbox)
        next_index = rotated[-1][0] + 1 if rotated else 1
        target = self.inbox / f"manifest-{next_index}.jsonl"
        try:
            os.replace(self.manifest_path, target)
        except FileNotFoundError:  # pragma: no cover - racing peer rotated it
            return None
        return target

    def manifest_records(self) -> Iterator[Dict]:
        """Every manifest record, oldest first, across all rotated segments."""
        return _iter_manifest_records(self.inbox)

    def status(self) -> Dict:
        """Aggregate inbox state (see :func:`inbox_status`)."""
        return inbox_status(self.inbox)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def process_file(self, claimed: Path) -> Optional[Dict]:
        """Execute one claimed spec file and settle it into done/ or failed/.

        Returns the manifest record that was appended.  Never raises for a
        bad file: load and execution errors mark the file failed and the
        service moves on.  Returns ``None`` when the claim was lost before
        any work happened — a freshly started peer recovered the file while
        it sat in ``running/`` — in which case the peer owns it now and
        nothing is recorded.
        """
        started = time.perf_counter()
        executed_before = self.runner.executed_jobs
        try:
            jobs = load_jobs(claimed)
            results = self.runner.run_many(jobs)
        except Exception as exc:  # noqa: BLE001 — poison files must not kill the loop
            if not claimed.exists():
                return None  # claim lost to a recovering peer before loading
            target = _unique_path(self.failed_dir, claimed.name)
            try:
                os.replace(claimed, target)
            except FileNotFoundError:
                return None
            record = {
                "file": target.name,
                "status": "failed",
                "error": f"{type(exc).__name__}: {exc}",
            }
        else:
            target = _unique_path(self.done_dir, claimed.name)
            results_path = self.results_dir / f"{target.stem}.json"
            results_path.write_text(
                json.dumps([result.to_dict() for result in results], indent=2)
            )
            # Results are on disk — only now does the spec count as done.
            try:
                os.replace(claimed, target)
            except FileNotFoundError:
                # A freshly started peer recovered our claimed file while we
                # were executing.  The work is done and the (deterministic)
                # results are written, so record it; whoever re-claimed the
                # spec will settle the file itself with identical results.
                pass
            record = {
                "file": target.name,
                "status": "done",
                "jobs": len(results),
                "cached": sum(1 for result in results if result.cached),
                "executed": self.runner.executed_jobs - executed_before,
                "spec_hashes": [result.spec_hash for result in results],
                "results": str(results_path.relative_to(self.inbox)),
            }
        record["elapsed_s"] = round(time.perf_counter() - started, 6)
        record["unix_time"] = round(time.time(), 3)
        self._append_manifest(record)
        self.processed_files += 1
        return record

    def run_once(self) -> List[Dict]:
        """Recover (first drain only), then drain the inbox.

        Polls again after each batch so files submitted while a batch was
        executing are picked up in the same drain; returns the manifest
        records once the inbox is observed empty (or :meth:`stop` was
        called).
        """
        if not self._recovered:
            self.recover()
        records: List[Dict] = []
        while not self._stop:
            batch = self.pending()
            if not batch:
                break
            for path in batch:
                if self._stop:
                    break
                claimed = self._claim(path)
                if claimed is None:
                    continue
                record = self.process_file(claimed)
                if record is not None:
                    records.append(record)
        return records

    def serve_forever(
        self,
        poll_interval: float = 1.0,
        max_polls: Optional[int] = None,
    ) -> int:
        """Drain the inbox repeatedly, sleeping ``poll_interval`` in between.

        Runs until :meth:`stop` is called (from a signal handler or another
        thread) or ``max_polls`` drains have happened (handy for tests);
        returns the number of files processed during the call.
        """
        processed_before = self.processed_files
        polls = 0
        while not self._stop:
            self.run_once()
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
            if not self._stop:
                time.sleep(poll_interval)
        return self.processed_files - processed_before

    def stop(self) -> None:
        """Ask the service loop to exit after the file currently in flight."""
        self._stop = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobDirectoryService({str(self.inbox)!r}, "
            f"processed={self.processed_files})"
        )


# --------------------------------------------------------------------------- #
# read-only inbox inspection (the backend of ``repro serve --status``)
# --------------------------------------------------------------------------- #
def _rotated_manifests(inbox: Path) -> List:
    """(index, path) pairs of rotated manifest segments, oldest first."""
    rotated = []
    for path in inbox.glob("manifest-*.jsonl"):
        suffix = path.stem[len("manifest-"):]
        if suffix.isdigit():
            rotated.append((int(suffix), path))
    return sorted(rotated)


def _iter_manifest_records(inbox: Path) -> Iterator[Dict]:
    """All manifest records of an inbox in chronological order.

    Walks the rotated segments by number, then the live file.  Unreadable
    files and undecodable lines (a torn tail from a crashed writer) are
    skipped — status must work on the inbox of a service that just died.
    """
    paths = [path for _, path in _rotated_manifests(inbox)]
    paths.append(inbox / "manifest.jsonl")
    for path in paths:
        try:
            raw = path.read_text()
        except OSError:
            continue
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def inbox_status(inbox: Union[str, Path]) -> Dict:
    """Aggregate the observable state of a service inbox, read-only.

    Counts the pending/running/done/failed spec files, folds the whole
    rotated manifest history into done/failed/job/cache totals and surfaces
    the most recent record.  Unlike constructing a
    :class:`JobDirectoryService`, this creates nothing on disk — pointing
    it at a directory that is not an inbox raises
    :class:`~repro.exceptions.ReproError` instead of scaffolding one.
    """
    root = Path(inbox)
    if not root.is_dir():
        raise ReproError(f"inbox directory {root} does not exist")
    counts = {
        "pending": sum(1 for entry in root.glob("*.json") if entry.is_file()),
        "running": len(list((root / "running").glob("*.json"))),
        "done": len(list((root / "done").glob("*.json"))),
        "failed": len(list((root / "failed").glob("*.json"))),
    }
    records = done = failed = jobs = cached = executed = 0
    last: Optional[Dict] = None
    for record in _iter_manifest_records(root):
        records += 1
        last = record
        if record.get("status") == "failed":
            failed += 1
            continue
        done += 1
        jobs += int(record.get("jobs", 0))
        cached += int(record.get("cached", 0))
        executed += int(record.get("executed", 0))
    return {
        "inbox": str(root),
        "files": counts,
        "manifest": {
            "segments": len(_rotated_manifests(root))
            + (1 if (root / "manifest.jsonl").exists() else 0),
            "records": records,
            "done": done,
            "failed": failed,
            "jobs": jobs,
            "cached": cached,
            "executed": executed,
        },
        "last_record": last,
    }
