"""The declarative jobs API — the canonical front door of the library.

One describable, serializable unit of work (:mod:`repro.jobs.spec`), one
executor with a worker story (:mod:`repro.jobs.runner`), one persistent
result store (:mod:`repro.jobs.cache`), one directory-watching service loop
(:mod:`repro.jobs.service`) and one CLI (:mod:`repro.jobs.cli`):

>>> from repro.jobs import DesignFlowJob, JobRunner, UseCaseSource
>>> job = DesignFlowJob(use_cases=UseCaseSource.from_value(my_design))
>>> result = JobRunner().run(job)                      # doctest: +SKIP
>>> result.payload["summary"]["switch_count"]          # doctest: +SKIP

The same job serialised with :func:`save_job` runs unchanged from the shell
(``python -m repro run job.json --workers 4 --cache-dir .cache``), which is
what lets interactive sessions, sweep farms and CI share one vocabulary.
"""

from repro.jobs.cache import JobCache
from repro.jobs.runner import JobResult, JobRunner, execute_job
from repro.jobs.service import JobDirectoryService
from repro.jobs.spec import (
    JOB_KINDS,
    SWEEP_STUDIES,
    DesignFlowJob,
    FrequencyJob,
    JobSpec,
    RefineJob,
    SweepJob,
    UseCaseSource,
    WorstCaseJob,
    job_from_dict,
    job_hash,
    job_to_dict,
    load_jobs,
    save_job,
)

__all__ = [
    "UseCaseSource",
    "DesignFlowJob",
    "WorstCaseJob",
    "RefineJob",
    "FrequencyJob",
    "SweepJob",
    "JobSpec",
    "JOB_KINDS",
    "SWEEP_STUDIES",
    "job_to_dict",
    "job_from_dict",
    "job_hash",
    "save_job",
    "load_jobs",
    "JobRunner",
    "JobResult",
    "JobCache",
    "JobDirectoryService",
    "execute_job",
]
