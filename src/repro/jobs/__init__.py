"""The declarative jobs API — the canonical front door of the library.

One describable, serializable unit of work (:mod:`repro.jobs.spec`), one
executor with a worker story (:mod:`repro.jobs.runner`), one persistent
result store (:mod:`repro.jobs.cache`), one keyed on-disk engine-state
store that warm-starts executions (:mod:`repro.jobs.store`), one
directory-watching service loop (:mod:`repro.jobs.service`) and one CLI
(:mod:`repro.jobs.cli`):

>>> from repro.jobs import DesignFlowJob, JobRunner, UseCaseSource
>>> job = DesignFlowJob(use_cases=UseCaseSource.from_value(my_design))
>>> result = JobRunner().run(job)                      # doctest: +SKIP
>>> result.payload["summary"]["switch_count"]          # doctest: +SKIP

The same job serialised with :func:`save_job` runs unchanged from the shell
(``python -m repro run job.json --workers 4 --cache-dir .cache``), which is
what lets interactive sessions, sweep farms and CI share one vocabulary.

A quick orientation to the moving parts:

* **Specs** (:mod:`repro.jobs.spec`) — eight frozen job kinds
  (:class:`DesignFlowJob`, :class:`WorstCaseJob`, :class:`RefineJob`,
  :class:`PortfolioRefineJob`, :class:`FrequencyJob`, :class:`SweepJob`,
  :class:`RepairJob`, :class:`GapJob`), each JSON-round-tripping and
  content-hashed (:func:`job_hash`).
* **Runner** (:mod:`repro.jobs.runner`) — :class:`JobRunner` executes specs
  serially or over a process pool, bit-identically, and returns
  :class:`JobResult` envelopes.
* **Caches** (:mod:`repro.jobs.cache` / :mod:`repro.jobs.store`) —
  :class:`JobCache` persists whole job results keyed by ``job_hash``;
  its :class:`EngineStateStore` persists the *engine state inside*
  executions (full mappings and fixed-placement evaluations), so even
  never-before-seen jobs skip work a sibling already did.
* **Service** (:mod:`repro.jobs.service`) — :class:`JobDirectoryService`
  turns a directory into a crash-safe job queue (``python -m repro
  serve``); :func:`inbox_status` reads its state without touching it.
"""

from repro.jobs.cache import JobCache
from repro.jobs.faults import FaultInjector, InjectedFault
from repro.jobs.runner import JobResult, JobRunner, execute_job
from repro.jobs.service import JobDirectoryService, fleet_status, inbox_status
from repro.jobs.store import EngineStateStore, StoreCorruptionWarning
from repro.jobs.spec import (
    JOB_KINDS,
    SWEEP_STUDIES,
    DesignFlowJob,
    FrequencyJob,
    GapJob,
    JobSpec,
    PortfolioRefineJob,
    RefineJob,
    RepairJob,
    SweepJob,
    UseCaseSource,
    WorstCaseJob,
    job_from_dict,
    job_hash,
    job_to_dict,
    load_jobs,
    save_job,
)

__all__ = [
    "UseCaseSource",
    "DesignFlowJob",
    "WorstCaseJob",
    "RefineJob",
    "PortfolioRefineJob",
    "FrequencyJob",
    "SweepJob",
    "RepairJob",
    "GapJob",
    "JobSpec",
    "JOB_KINDS",
    "SWEEP_STUDIES",
    "job_to_dict",
    "job_from_dict",
    "job_hash",
    "save_job",
    "load_jobs",
    "JobRunner",
    "JobResult",
    "JobCache",
    "EngineStateStore",
    "StoreCorruptionWarning",
    "JobDirectoryService",
    "inbox_status",
    "fleet_status",
    "FaultInjector",
    "InjectedFault",
    "execute_job",
]
